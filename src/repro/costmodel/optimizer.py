"""Workload-ratio optimisation driven by the cost model (Sections 3.2 and 4).

The paper picks the suitable workload ratios by evaluating the cost model on a
grid of candidate ratios with step ``delta = 0.02``.  For DD (one ratio per
step series) and OL (each ratio 0 or 1) the search space is tiny; for PL the
per-step ratios are optimised with an exhaustive grid for short series and
with coordinate descent (initialised from the DD optimum and the per-step OL
preferences) for longer ones, which converges to the same solutions on the
series sizes used in the paper while keeping optimisation time bounded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Sequence

import numpy as np

from .abstract import SeriesEstimate, StepCost, estimate_series

#: Ratio granularity used by the paper.
DEFAULT_DELTA = 0.02


class OptimizerError(ValueError):
    """Raised for invalid optimiser configurations."""


def ratio_grid(delta: float = DEFAULT_DELTA) -> np.ndarray:
    """All candidate ratios 0, delta, 2*delta, ..., 1."""
    if not 0.0 < delta <= 1.0:
        raise OptimizerError("delta must be in (0, 1]")
    n = int(round(1.0 / delta))
    return np.round(np.linspace(0.0, 1.0, n + 1), 10)


@dataclass
class OptimizationResult:
    """Chosen ratios plus the cost model's estimate for them."""

    ratios: list[float]
    estimate: SeriesEstimate
    evaluations: int = 0
    scheme: str = "PL"

    @property
    def total_s(self) -> float:
        return self.estimate.total_s


# ---------------------------------------------------------------------------
# DD: one ratio shared by every step of the series
# ---------------------------------------------------------------------------
def optimize_dd(
    steps: Sequence[StepCost],
    delta: float = DEFAULT_DELTA,
) -> OptimizationResult:
    """Best single workload ratio for the whole step series."""
    best: OptimizationResult | None = None
    evaluations = 0
    for ratio in ratio_grid(delta):
        ratios = [float(ratio)] * len(steps)
        estimate = estimate_series(steps, ratios)
        evaluations += 1
        if best is None or estimate.total_s < best.total_s:
            best = OptimizationResult(ratios=ratios, estimate=estimate, scheme="DD")
    assert best is not None
    best.evaluations = evaluations
    return best


def dd_sweep(
    steps: Sequence[StepCost],
    delta: float = DEFAULT_DELTA,
) -> list[tuple[float, float]]:
    """(ratio, estimated seconds) pairs for the DD ratio sweep (Figure 7)."""
    return [
        (float(r), estimate_series(steps, [float(r)] * len(steps)).total_s)
        for r in ratio_grid(delta)
    ]


# ---------------------------------------------------------------------------
# OL: every step runs entirely on one device
# ---------------------------------------------------------------------------
def optimize_ol(steps: Sequence[StepCost]) -> OptimizationResult:
    """Best 0/1 assignment per step.

    On the coupled architecture the offloading decision per step depends only
    on which device runs the step faster (no PCI-e term), so the optimum is
    found per step; the full 2^n enumeration is used for short series to keep
    the implementation obviously faithful to the paper's description.
    """
    n = len(steps)
    if n <= 12:
        best: OptimizationResult | None = None
        evaluations = 0
        for assignment in product((0.0, 1.0), repeat=n):
            estimate = estimate_series(steps, list(assignment))
            evaluations += 1
            if best is None or estimate.total_s < best.total_s:
                best = OptimizationResult(
                    ratios=list(assignment), estimate=estimate, scheme="OL"
                )
        assert best is not None
        best.evaluations = evaluations
        return best

    ratios = [0.0 if s.gpu_unit_s <= s.cpu_unit_s else 1.0 for s in steps]
    return OptimizationResult(
        ratios=ratios, estimate=estimate_series(steps, ratios), evaluations=n, scheme="OL"
    )


# ---------------------------------------------------------------------------
# PL: an independent ratio per step
# ---------------------------------------------------------------------------
def optimize_pl(
    steps: Sequence[StepCost],
    delta: float = DEFAULT_DELTA,
    max_rounds: int = 6,
    exhaustive_limit: int = 3,
    exhaustive_delta: float = 0.1,
) -> OptimizationResult:
    """Per-step ratios minimising the estimated series time.

    Short series (``len(steps) <= exhaustive_limit``) are solved with an
    exhaustive coarse grid followed by a fine refinement; longer series use
    coordinate descent over the delta grid from several starting points.
    """
    n = len(steps)
    if n == 0:
        raise OptimizerError("cannot optimise an empty step series")

    evaluations = 0
    grid = ratio_grid(delta)

    def evaluate(ratios: list[float]) -> SeriesEstimate:
        nonlocal evaluations
        evaluations += 1
        return estimate_series(steps, ratios)

    candidates: list[list[float]] = []
    # Start 1: the DD optimum.
    dd = optimize_dd(steps, delta)
    evaluations += dd.evaluations
    candidates.append(list(dd.ratios))
    # Start 2: per-step device preference (OL-like).
    candidates.append([0.0 if s.gpu_unit_s <= s.cpu_unit_s else 1.0 for s in steps])
    # Start 3: per-step balanced ratio r = gpu/(cpu+gpu) (equal finish times).
    balanced = []
    for s in steps:
        denom = s.cpu_unit_s + s.gpu_unit_s
        balanced.append(float(s.gpu_unit_s / denom) if denom > 0 else 0.5)
    candidates.append(balanced)

    if n <= exhaustive_limit:
        coarse = ratio_grid(exhaustive_delta)
        best_coarse = None
        for assignment in product(coarse, repeat=n):
            ratios = [float(r) for r in assignment]
            estimate = evaluate(ratios)
            if best_coarse is None or estimate.total_s < best_coarse.total_s:
                best_coarse = OptimizationResult(ratios=ratios, estimate=estimate)
        assert best_coarse is not None
        candidates.append(list(best_coarse.ratios))

    best: OptimizationResult | None = None
    for start in candidates:
        ratios = [float(np.clip(r, 0.0, 1.0)) for r in start]
        current = evaluate(ratios)
        improved = True
        rounds = 0
        while improved and rounds < max_rounds:
            improved = False
            rounds += 1
            for i in range(n):
                best_ratio = ratios[i]
                best_time = current.total_s
                for candidate in grid:
                    if candidate == ratios[i]:
                        continue
                    trial = list(ratios)
                    trial[i] = float(candidate)
                    estimate = evaluate(trial)
                    if estimate.total_s < best_time - 1e-15:
                        best_time = estimate.total_s
                        best_ratio = float(candidate)
                if best_ratio != ratios[i]:
                    ratios[i] = best_ratio
                    current = evaluate(ratios)
                    improved = True
        if best is None or current.total_s < best.total_s:
            best = OptimizationResult(ratios=list(ratios), estimate=current, scheme="PL")

    assert best is not None
    best.evaluations = evaluations
    return best


def optimize_scheme(
    scheme: str,
    steps: Sequence[StepCost],
    delta: float = DEFAULT_DELTA,
) -> OptimizationResult:
    """Dispatch to the optimiser of a named co-processing scheme."""
    scheme = scheme.upper()
    if scheme == "DD":
        return optimize_dd(steps, delta)
    if scheme == "OL":
        return optimize_ol(steps)
    if scheme == "PL":
        return optimize_pl(steps, delta)
    if scheme in ("CPU", "CPU-ONLY"):
        ratios = [1.0] * len(steps)
        return OptimizationResult(ratios, estimate_series(steps, ratios), scheme="CPU")
    if scheme in ("GPU", "GPU-ONLY"):
        ratios = [0.0] * len(steps)
        return OptimizationResult(ratios, estimate_series(steps, ratios), scheme="GPU")
    raise OptimizerError(f"unknown co-processing scheme {scheme!r}")
