"""Workload-ratio optimisation driven by the cost model (Sections 3.2 and 4).

The paper picks the suitable workload ratios by evaluating the cost model on a
grid of candidate ratios with step ``delta = 0.02``.  For DD (one ratio per
step series) and OL (each ratio 0 or 1) the search space is tiny; for PL the
per-step ratios are optimised with an exhaustive grid for short series and
with coordinate descent (initialised from the DD optimum and the per-step OL
preferences) for longer ones, which converges to the same solutions on the
series sizes used in the paper while keeping optimisation time bounded.

All optimisers evaluate their candidates through the vectorized batch engine
(:mod:`repro.costmodel.batch`): the DD grid, the full 2^n OL enumeration, each
PL coordinate's candidate column and the PL exhaustive grid are single
``estimate_series_batch`` calls instead of per-candidate Python evaluations.
The candidate-acceptance logic replays the batched totals in the scalar
reference order, so the chosen ratios (and their estimates) are identical to
the scalar path; ``use_batch=False`` keeps the scalar evaluation loop
available as the reference/benchmark baseline.  Passing an
:class:`~repro.costmodel.batch.EstimateCache` additionally reuses evaluations
across optimiser calls with the same calibrated steps (e.g. PL's internal DD
start after a DD optimisation of the same series).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Any, Callable, Generator, Sequence

import numpy as np
from numpy.typing import ArrayLike

from .abstract import SeriesEstimate, StepCost, estimate_series
from .batch import EstimateCache, as_ratio_matrix, batch_totals, steps_fingerprint

#: Ratio granularity used by the paper.
DEFAULT_DELTA = 0.02


class OptimizerError(ValueError):
    """Raised for invalid optimiser configurations."""


def ratio_grid(delta: float = DEFAULT_DELTA) -> np.ndarray:
    """All candidate ratios 0, delta, 2*delta, ... plus the endpoint 1.

    The grid honours the requested spacing even when ``delta`` does not
    divide 1 (e.g. 0.03 yields 0, 0.03, ..., 0.99, 1.0); the endpoint 1.0 is
    always included so the single-device assignments stay reachable.
    """
    if not 0.0 < delta <= 1.0:
        raise OptimizerError("delta must be in (0, 1]")
    grid = np.round(np.arange(0.0, 1.0 + 0.5 * delta, delta), 10)
    if grid[-1] > 1.0:
        grid = grid[:-1]
    if grid[-1] != 1.0:
        grid = np.append(grid, 1.0)
    return grid


#: ``optimize_ol`` enumerates all 2^n assignments up to this series length;
#: longer series fall back to the per-step device preference.
OL_ENUMERATION_LIMIT = 12

#: Valid PL descent speculation modes (see :func:`pl_descent_plan`).
SPECULATION_MODES = ("full", "adaptive")


def validate_speculation(speculation: str) -> None:
    """Raise :class:`OptimizerError` for an unknown PL speculation mode."""
    if speculation not in SPECULATION_MODES:
        raise OptimizerError(
            f"unknown speculation mode {speculation!r}; "
            f"expected one of {SPECULATION_MODES}"
        )


def dd_candidate_matrix(n_steps: int, delta: float = DEFAULT_DELTA) -> np.ndarray:
    """The exact ``(len(grid), n_steps)`` candidate matrix ``optimize_dd``
    scans: each delta-grid ratio repeated across every step.

    Exposed so batching layers (the plan service) can prefill precisely the
    rows the optimiser will evaluate, in the same order.
    """
    return np.repeat(ratio_grid(delta)[:, np.newaxis], n_steps, axis=1)


def ol_candidate_matrix(n_steps: int) -> np.ndarray:
    """The exact ``(2**n_steps, n_steps)`` enumeration ``optimize_ol`` scans
    for series up to :data:`OL_ENUMERATION_LIMIT` steps."""
    if n_steps == 0:
        # 2^0 = one empty assignment, matching optimize_dd's degenerate case.
        return np.zeros((1, 0), dtype=np.float64)
    matrix = np.array(list(product((0.0, 1.0), repeat=n_steps)), dtype=np.float64)
    return matrix.reshape(-1, n_steps)


class SeriesEvaluator:
    """Routes candidate evaluations through the batch engine (or scalar loop).

    Counts one evaluation per candidate row so the reported ``evaluations``
    match the historical scalar implementation exactly.  One evaluator can be
    injected into several ``optimize_*`` calls over the same calibrated steps
    (the multi-query plan service does this) so they share a cache and an
    evaluation counter.
    """

    def __init__(
        self,
        steps: Sequence[StepCost],
        cache: EstimateCache | None = None,
        use_batch: bool = True,
    ) -> None:
        self.steps = steps
        self.cache = cache
        self.use_batch = use_batch
        self.evaluations = 0
        #: How many engine invocations (``totals`` calls) were issued — the
        #: quantity the vectorized descent minimises; ``evaluations`` counts
        #: rows, this counts calls.
        self.engine_calls = 0

    def totals(self, ratio_matrix: ArrayLike) -> np.ndarray:
        """``total_s`` per candidate row of the matrix."""
        matrix = as_ratio_matrix(ratio_matrix, len(self.steps), validate=False)
        self.evaluations += matrix.shape[0]
        self.engine_calls += 1
        if not self.use_batch:
            return np.array(
                [estimate_series(self.steps, row.tolist()).total_s for row in matrix],
                dtype=np.float64,
            )
        if self.cache is not None:
            return self.cache.totals(self.steps, matrix)
        # The optimisers build their matrices from validated grids/ratios, so
        # the [0, 1] re-scan is skipped on this hot path.
        return batch_totals(self.steps, matrix, validate=False)

    def total(self, ratios: Sequence[float]) -> float:
        return float(self.totals([list(ratios)])[0])

    def estimate(self, ratios: Sequence[float]) -> SeriesEstimate:
        """Full scalar (reference) estimate for a chosen ratio vector."""
        if self.cache is not None:
            return self.cache.estimate(self.steps, list(ratios))
        return estimate_series(self.steps, list(ratios))


#: Backwards-compatible alias (the evaluator was private before the plan
#: service started injecting it).
_SeriesEvaluator = SeriesEvaluator


def _resolve_evaluator(
    steps: Sequence[StepCost],
    cache: EstimateCache | None,
    use_batch: bool,
    evaluator: SeriesEvaluator | None,
) -> SeriesEvaluator:
    """Use the injected evaluator, or build a private one for this call."""
    if evaluator is None:
        return SeriesEvaluator(steps, cache=cache, use_batch=use_batch)
    if steps_fingerprint(evaluator.steps) != steps_fingerprint(steps):
        raise OptimizerError(
            "injected evaluator was built for a different step series"
        )
    return evaluator


@dataclass
class OptimizationResult:
    """Chosen ratios plus the cost model's estimate for them."""

    ratios: list[float]
    estimate: SeriesEstimate
    evaluations: int = 0
    scheme: str = "PL"
    #: Optimiser-specific bookkeeping (the vectorized PL descent records its
    #: per-start rounds/accepted updates and the engine-call count here).
    stats: dict[str, Any] = field(default_factory=dict)

    @property
    def total_s(self) -> float:
        return self.estimate.total_s


# ---------------------------------------------------------------------------
# DD: one ratio shared by every step of the series
# ---------------------------------------------------------------------------
def optimize_dd(
    steps: Sequence[StepCost],
    delta: float = DEFAULT_DELTA,
    cache: EstimateCache | None = None,
    use_batch: bool = True,
    evaluator: SeriesEvaluator | None = None,
) -> OptimizationResult:
    """Best single workload ratio for the whole step series.

    The whole delta grid is evaluated as one batch; ties resolve to the
    smallest ratio, as in a first-strictly-better scan of the grid.
    """
    evaluator = _resolve_evaluator(steps, cache, use_batch, evaluator)
    start = evaluator.evaluations
    matrix = dd_candidate_matrix(len(steps), delta)
    totals = evaluator.totals(matrix)
    ratios = matrix[int(np.argmin(totals))].tolist()
    return OptimizationResult(
        ratios=ratios,
        estimate=evaluator.estimate(ratios),
        evaluations=evaluator.evaluations - start,
        scheme="DD",
    )


def dd_sweep(
    steps: Sequence[StepCost],
    delta: float = DEFAULT_DELTA,
    cache: EstimateCache | None = None,
    evaluator: SeriesEvaluator | None = None,
) -> list[tuple[float, float]]:
    """(ratio, estimated seconds) pairs for the DD ratio sweep (Figure 7)."""
    grid = ratio_grid(delta)
    evaluator = _resolve_evaluator(steps, cache, True, evaluator)
    totals = evaluator.totals(dd_candidate_matrix(len(steps), delta))
    return [(float(r), float(t)) for r, t in zip(grid, totals)]


# ---------------------------------------------------------------------------
# OL: every step runs entirely on one device
# ---------------------------------------------------------------------------
def optimize_ol(
    steps: Sequence[StepCost],
    cache: EstimateCache | None = None,
    use_batch: bool = True,
    evaluator: SeriesEvaluator | None = None,
) -> OptimizationResult:
    """Best 0/1 assignment per step.

    On the coupled architecture the offloading decision per step depends only
    on which device runs the step faster (no PCI-e term), so the optimum is
    found per step; the full 2^n enumeration — one batched evaluation — is
    used for short series to keep the implementation obviously faithful to
    the paper's description.
    """
    n = len(steps)
    evaluator = _resolve_evaluator(steps, cache, use_batch, evaluator)
    start = evaluator.evaluations
    if n <= OL_ENUMERATION_LIMIT:
        assignments = ol_candidate_matrix(n)
        totals = evaluator.totals(assignments)
        ratios = assignments[int(np.argmin(totals))].tolist()
        return OptimizationResult(
            ratios=ratios,
            estimate=evaluator.estimate(ratios),
            evaluations=evaluator.evaluations - start,
            scheme="OL",
        )

    ratios = [0.0 if s.gpu_unit_s <= s.cpu_unit_s else 1.0 for s in steps]
    return OptimizationResult(
        ratios=ratios, estimate=evaluator.estimate(ratios), evaluations=n, scheme="OL"
    )


# ---------------------------------------------------------------------------
# PL: an independent ratio per step
# ---------------------------------------------------------------------------
class _DescentState:
    """One start vector's coordinate descent, advanced segment by segment.

    The scalar reference walks coordinates 0..n-1 per round, re-basing the
    remaining coordinates' trial rows after every accepted update.  This
    state machine replays exactly that decision sequence, but evaluates
    speculatively: :meth:`build_segment` emits the candidate columns of
    *every* remaining coordinate of the round against the current base
    vector, and :meth:`apply` consumes the returned totals in coordinate
    order until the first accepted update — at which point the rest of the
    batch is stale (its rows were built from the pre-update base) and is
    discarded, and the next segment starts from the following coordinate.
    A round with no accepted updates therefore costs exactly one engine
    call, and a round with ``k`` accepts at most ``k + 1``.

    ``speculation="adaptive"`` speculates per-coordinate during round 1 and
    fully from round 2 on: first rounds are accept-heavy (each accept
    discards every speculative row after it), so emitting one coordinate's
    column at a time there trades one engine call per round for the 25-35%
    of rows the full-speculation first round throws away.  Later rounds are
    dominated by no-accept verification sweeps, where full speculation's
    one-call-per-round is optimal.  The decision sequence — and with it the
    chosen ratios — is identical either way.
    """

    __slots__ = (
        "ratios",
        "current_total",
        "rounds",
        "accepts",
        "done",
        "_grid",
        "_max_rounds",
        "_next_coord",
        "_improved",
        "_columns",
        "_segment_start",
        "_speculation",
    )

    def __init__(
        self,
        start: Sequence[float],
        grid: np.ndarray,
        max_rounds: int,
        speculation: str = "full",
    ) -> None:
        self.ratios = [float(np.clip(r, 0.0, 1.0)) for r in start]
        self.current_total: float | None = None
        self.rounds = 1 if max_rounds >= 1 else 0
        self.accepts = 0
        self.done = max_rounds < 1
        self._grid = grid
        self._max_rounds = max_rounds
        self._next_coord = 0
        self._improved = False
        self._columns: list[np.ndarray] = []
        self._segment_start = 0
        self._speculation = speculation

    def single_coordinate_segment(self) -> bool:
        """Whether the next segment emits only one coordinate's column."""
        return (
            self._speculation == "adaptive" and self.rounds == 1 and not self.done
        )

    def prepare_segment(self) -> None:
        """Fix the columns of the next segment against the current base."""
        n = len(self.ratios)
        self._segment_start = self._next_coord
        if self.done:
            # max_rounds < 1: only the start vector itself is evaluated.
            self._columns = []
        else:
            stop = self._next_coord + 1 if self.single_coordinate_segment() else n
            self._columns = [
                self._grid[self._grid != self.ratios[j]]
                for j in range(self._next_coord, stop)
            ]

    def build_segment(self) -> np.ndarray:
        """Trial rows for the remaining coordinates of this round.

        The first segment of a descent leads with the unmodified start
        vector so its ``current_total`` comes out of the same batch (the
        scalar path evaluates it separately before the first round).
        """
        n = len(self.ratios)
        lead = 1 if self.current_total is None else 0
        rows = lead + sum(column.size for column in self._columns)
        trials = np.empty((rows, n), dtype=np.float64)
        trials[:] = self.ratios
        offset = lead
        for k, column in enumerate(self._columns):
            trials[offset : offset + column.size, self._segment_start + k] = column
            offset += column.size
        return trials

    def apply(self, totals: np.ndarray) -> None:
        """Replay the scalar acceptance scan over this segment's totals."""
        n = len(self.ratios)
        offset = 0
        if self.current_total is None:
            self.current_total = float(totals[0])
            offset = 1
            if self.done:  # max_rounds < 1: only the start estimate was needed
                return
        # Per-column minima in one vectorized pass: a column whose minimum
        # cannot beat the strict-improvement threshold is skipped without
        # the per-candidate Python scan (the overwhelmingly common case once
        # the descent approaches convergence).  The scan itself — and with
        # it every tie-break — is unchanged for columns that can improve.
        if self._columns:
            starts = np.empty(len(self._columns), dtype=np.intp)
            position = offset
            for k, column in enumerate(self._columns):
                starts[k] = position
                position += column.size
            minima = np.minimum.reduceat(totals, starts)
        for k, column in enumerate(self._columns):
            j = self._segment_start + k
            block = totals[offset : offset + column.size]
            offset += column.size
            if minima[k] >= self.current_total - 1e-15:
                continue
            best_ratio = self.ratios[j]
            best_time = self.current_total
            for candidate, total in zip(column.tolist(), block.tolist()):
                if total < best_time - 1e-15:
                    best_time = total
                    best_ratio = candidate
            if best_ratio != self.ratios[j]:
                self.ratios[j] = best_ratio
                self.current_total = best_time
                self.accepts += 1
                self._improved = True
                self._next_coord = j + 1
                if self._next_coord >= n:
                    self._finish_round()
                return
        # No accept: advance past the evaluated columns (the whole rest of
        # the round under full speculation, one coordinate under adaptive
        # round-1 speculation).
        self._next_coord = self._segment_start + len(self._columns)
        if self._next_coord >= n:
            self._finish_round()

    def _finish_round(self) -> None:
        if self._improved and self.rounds < self._max_rounds:
            self.rounds += 1
            self._improved = False
            self._next_coord = 0
        else:
            self.done = True


def pl_descent_plan(
    steps: Sequence[StepCost],
    delta: float = DEFAULT_DELTA,
    max_rounds: int = 6,
    exhaustive_limit: int = 3,
    exhaustive_delta: float = 0.1,
    speculation: str = "full",
) -> Generator[np.ndarray, np.ndarray, tuple[list[float], dict[str, Any]]]:
    """The PL optimisation as a resumable evaluation plan (a generator).

    Yields ``(m, n)`` candidate ratio matrices and expects the matching
    length-``m`` ``total_s`` vector to be sent back; returns
    ``(best_ratios, stats)`` via ``StopIteration.value``.  Separating the
    *decision* sequence from the *evaluation* transport this way lets one
    driver answer each yield however it likes — ``optimize_pl`` feeds it
    from a per-series :class:`SeriesEvaluator`, while the multi-query plan
    service advances many plans in lockstep and answers one round of *all*
    of them with a single mixed-series engine call.

    The yields are: the DD start's delta grid, the exhaustive coarse grid
    for short series, then one matrix per descent segment with every live
    start's segment stacked (the per-start descents are independent, so
    they advance in parallel and a converged search costs
    ``max`` — not ``sum`` — of the starts' segment counts).

    ``speculation`` selects how much of a round each segment emits:
    ``"full"`` (the default) speculates every remaining coordinate's column,
    ``"adaptive"`` emits one coordinate at a time during the accept-heavy
    first round and speculates fully afterwards — more yields in round 1,
    but none of their rows are built from a stale base, so lockstep drivers
    evaluate measurably fewer rows.  The chosen ratios are identical.
    """
    n = len(steps)
    if n == 0:
        raise OptimizerError("cannot optimise an empty step series")
    validate_speculation(speculation)
    grid = ratio_grid(delta)
    yields = 0

    # Start 1: the DD optimum.
    dd_matrix = dd_candidate_matrix(n, delta)
    totals = yield dd_matrix
    yields += 1
    starts: list[list[float]] = [dd_matrix[int(np.argmin(totals))].tolist()]
    # Start 2: per-step device preference (OL-like).
    starts.append([0.0 if s.gpu_unit_s <= s.cpu_unit_s else 1.0 for s in steps])
    # Start 3: per-step balanced ratio r = gpu/(cpu+gpu) (equal finish times).
    balanced = []
    for s in steps:
        denom = s.cpu_unit_s + s.gpu_unit_s
        balanced.append(float(s.gpu_unit_s / denom) if denom > 0 else 0.5)
    starts.append(balanced)

    if n <= exhaustive_limit:
        coarse = ratio_grid(exhaustive_delta)
        assignments = np.array(list(product(coarse, repeat=n)), dtype=np.float64)
        totals = yield assignments
        yields += 1
        starts.append(assignments[int(np.argmin(totals))].tolist())

    states = [
        _DescentState(start, grid, max_rounds, speculation=speculation)
        for start in starts
    ]
    # Segment memo: the independent starts routinely converge to the same
    # vector, at which point their no-accept verification rounds would
    # re-evaluate identical trial matrices.  A segment is fully determined
    # by (base ratios, first coordinate, lead-row presence, column layout),
    # so replaying a previously seen segment's engine totals is exact —
    # pure row dedup.
    seen_segments: dict[tuple, np.ndarray] = {}

    def segment_key(state: _DescentState) -> tuple[object, ...]:
        return (
            tuple(state.ratios),
            state._next_coord,
            state.current_total is None,
            state.single_coordinate_segment(),
        )

    while True:
        pending: dict[tuple, list[_DescentState]] = {}
        for state in states:
            # Serve every memoised segment immediately; a state may chain
            # through several (e.g. re-verifying a vector another start
            # already verified) before needing fresh rows.
            while not state.done or state.current_total is None:
                key = segment_key(state)
                cached = seen_segments.get(key)
                if cached is None:
                    pending.setdefault(key, []).append(state)
                    break
                state.prepare_segment()
                state.apply(cached)
        if not pending:
            break
        matrices = []
        for group in pending.values():
            group[0].prepare_segment()
            matrices.append(group[0].build_segment())
        stacked = matrices[0] if len(matrices) == 1 else np.vstack(matrices)
        totals = yield stacked
        yields += 1
        offset = 0
        for (key, group), matrix in zip(pending.items(), matrices):
            block = totals[offset : offset + matrix.shape[0]]
            offset += matrix.shape[0]
            seen_segments[key] = block
            for i, state in enumerate(group):
                if i:  # group[0] prepared its columns when building
                    state.prepare_segment()
                state.apply(block)

    # Same first-strictly-better scan over the starts as the scalar path.
    best_ratios: list[float] | None = None
    best_total = float("inf")
    for state in states:
        if best_ratios is None or state.current_total < best_total:
            best_ratios = list(state.ratios)
            best_total = state.current_total
    assert best_ratios is not None
    stats = {
        "engine_yields": yields,
        "starts": len(states),
        "rounds": [state.rounds for state in states],
        "accepts": [state.accepts for state in states],
        "speculation": speculation,
    }
    return best_ratios, stats


def drive_plan(
    plan: Generator[np.ndarray, np.ndarray, tuple[list[float], dict[str, Any]]],
    totals_fn: Callable[[np.ndarray], np.ndarray],
) -> tuple[list[float], dict[str, Any]]:
    """Run an evaluation plan to completion against one totals callback."""
    try:
        matrix = next(plan)
        while True:
            matrix = plan.send(totals_fn(matrix))
    except StopIteration as stop:
        value: tuple[list[float], dict[str, Any]] = stop.value
        return value


def optimize_pl(
    steps: Sequence[StepCost],
    delta: float = DEFAULT_DELTA,
    max_rounds: int = 6,
    exhaustive_limit: int = 3,
    exhaustive_delta: float = 0.1,
    cache: EstimateCache | None = None,
    use_batch: bool = True,
    evaluator: SeriesEvaluator | None = None,
    vectorized: bool = True,
    speculation: str = "full",
) -> OptimizationResult:
    """Per-step ratios minimising the estimated series time.

    Short series (``len(steps) <= exhaustive_limit``) are solved with an
    exhaustive coarse grid followed by a fine refinement; longer series use
    coordinate descent over the delta grid from several starting points.

    The default vectorized path drives :func:`pl_descent_plan`: every
    descent round evaluates *all* remaining coordinates' candidate columns
    (for all live starts at once) in a single engine call, re-batching only
    after an accepted update invalidates the speculative rows — so a
    converged round costs one call instead of one per coordinate.
    Acceptance replays the batched totals in grid order with the
    per-coordinate loop's strict-improvement threshold, so the returned
    ratios match both reference paths exactly: ``vectorized=False`` keeps
    the historical per-coordinate descent (one engine call per coordinate
    per round — the baseline the speedup gates measure against) and
    ``use_batch=False`` additionally evaluates its rows through the scalar
    model.  The paths differ in how many *rows* they evaluate (the
    vectorized rounds count their speculative rows in ``evaluations``), not
    in any decision they make.  ``speculation="adaptive"`` additionally
    speculates per-coordinate in the accept-heavy first round (fewer wasted
    rows, more engine calls) and fully afterwards; the ratios stay
    identical.
    """
    n = len(steps)
    if n == 0:
        raise OptimizerError("cannot optimise an empty step series")
    validate_speculation(speculation)

    evaluator = _resolve_evaluator(steps, cache, use_batch, evaluator)
    start_evaluations = evaluator.evaluations

    if vectorized and evaluator.use_batch:
        plan = pl_descent_plan(
            steps, delta, max_rounds, exhaustive_limit, exhaustive_delta,
            speculation=speculation,
        )
        best_ratios, stats = drive_plan(plan, evaluator.totals)
        return OptimizationResult(
            ratios=best_ratios,
            estimate=evaluator.estimate(best_ratios),
            evaluations=evaluator.evaluations - start_evaluations,
            scheme="PL",
            stats=stats,
        )

    grid = ratio_grid(delta)
    candidates: list[list[float]] = []
    # Start 1: the DD optimum (counted through the shared evaluator).
    dd = optimize_dd(steps, delta, evaluator=evaluator)
    candidates.append(list(dd.ratios))
    # Start 2: per-step device preference (OL-like).
    candidates.append([0.0 if s.gpu_unit_s <= s.cpu_unit_s else 1.0 for s in steps])
    # Start 3: per-step balanced ratio r = gpu/(cpu+gpu) (equal finish times).
    balanced = []
    for s in steps:
        denom = s.cpu_unit_s + s.gpu_unit_s
        balanced.append(float(s.gpu_unit_s / denom) if denom > 0 else 0.5)
    candidates.append(balanced)

    if n <= exhaustive_limit:
        coarse = ratio_grid(exhaustive_delta)
        assignments = np.array(list(product(coarse, repeat=n)), dtype=np.float64)
        totals = evaluator.totals(assignments)
        candidates.append(assignments[int(np.argmin(totals))].tolist())

    best_ratios: list[float] | None = None
    best_total = float("inf")
    for start in candidates:
        ratios = [float(np.clip(r, 0.0, 1.0)) for r in start]
        current_total = evaluator.total(ratios)
        improved = True
        rounds = 0
        while improved and rounds < max_rounds:
            improved = False
            rounds += 1
            for i in range(n):
                column = grid[grid != ratios[i]]
                trials = np.empty((column.size, n), dtype=np.float64)
                trials[:] = ratios
                trials[:, i] = column
                totals = evaluator.totals(trials)
                best_ratio = ratios[i]
                best_time = current_total
                for candidate, total in zip(column.tolist(), totals.tolist()):
                    if total < best_time - 1e-15:
                        best_time = total
                        best_ratio = candidate
                if best_ratio != ratios[i]:
                    ratios[i] = best_ratio
                    current_total = evaluator.total(ratios)
                    improved = True
        if best_ratios is None or current_total < best_total:
            best_ratios = list(ratios)
            best_total = current_total

    assert best_ratios is not None
    return OptimizationResult(
        ratios=best_ratios,
        estimate=evaluator.estimate(best_ratios),
        evaluations=evaluator.evaluations - start_evaluations,
        scheme="PL",
    )


def optimize_scheme(
    scheme: str,
    steps: Sequence[StepCost],
    delta: float = DEFAULT_DELTA,
    cache: EstimateCache | None = None,
    evaluator: SeriesEvaluator | None = None,
) -> OptimizationResult:
    """Dispatch to the optimiser of a named co-processing scheme."""
    scheme = scheme.upper()
    if scheme == "DD":
        return optimize_dd(steps, delta, cache=cache, evaluator=evaluator)
    if scheme == "OL":
        return optimize_ol(steps, cache=cache, evaluator=evaluator)
    if scheme == "PL":
        return optimize_pl(steps, delta, cache=cache, evaluator=evaluator)
    if scheme in ("CPU", "CPU-ONLY", "GPU", "GPU-ONLY"):
        ratios = [1.0 if scheme.startswith("CPU") else 0.0] * len(steps)
        evaluator = _resolve_evaluator(steps, cache, True, evaluator)
        return OptimizationResult(
            ratios, evaluator.estimate(ratios), scheme=scheme[:3]
        )
    raise OptimizerError(f"unknown co-processing scheme {scheme!r}")
