"""Persistent SQLite backing store for the estimate cache (ISSUE 7 tentpole).

The in-memory :class:`~repro.costmodel.batch.EstimateCache` dies with its
process, and a pre-fork serving tier multiplies that problem by N: every
worker would warm a private cache and share nothing.  This module gives the
cache a durable, multi-process story:

* :class:`EstimateCacheStore` — one SQLite database in WAL mode with
  ``synchronous=NORMAL`` and a generous ``busy_timeout`` (the Paper-Scanner
  idiom from SNIPPETS.md: WAL lets any number of reader processes proceed
  while one writer commits).  Rows are keyed by ``(fingerprint, quantised
  row bytes)`` and every row carries the *exact* (unquantised) ratio bytes,
  so the byte-exact verification the in-memory cache performs on every hit
  survives the round trip — a stored neighbour that collides at the
  quantisation decimal is recomputed, never served.
* **Write-behind batching** — the planning hot path never touches SQLite on
  a write: freshly computed rows are appended to an in-memory queue under a
  queue lock held for microseconds, and a background flusher thread commits
  them in batched ``executemany`` transactions.  Reads happen only on the
  *miss* path (which was about to pay a vectorized engine call anyway).
* :class:`PersistentEstimateCache` — a
  :class:`~repro.costmodel.batch.SharedEstimateCache` whose miss path
  consults the store before the engine and feeds the store after it, so
  forked workers share hits through the filesystem and a restarted process
  starts warm.
* **Fleet-wide admission state** — the ``admission`` table holds per-client
  token buckets updated in single ``BEGIN IMMEDIATE`` transactions, letting
  every worker of a pre-fork pool debit the same bucket (admission control
  holds fleet-wide, not per worker).

A corrupted or unreadable database must degrade, not crash, a serving
process: :func:`open_persistent_cache` falls back to a cold in-memory
:class:`SharedEstimateCache`, and any ``sqlite3`` error after open marks the
store dead — subsequent fetches miss and enqueues drop, which is always
correct (the cache recomputes) just slower.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
import weakref
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from .. import faults
from .abstract import SeriesEstimate
from .batch import (
    SHARED_CACHE_MAX_ENTRIES,
    Fingerprint,
    SharedEstimateCache,
)
from ..locking import make_lock

__all__ = [
    "CacheStoreError",
    "EstimateCacheStore",
    "PersistentEstimateCache",
    "SCHEMA_VERSION",
    "decode_estimate",
    "encode_estimate",
    "encode_fingerprint",
    "open_persistent_cache",
]

#: Bump on incompatible schema changes; a store written by a different
#: schema version is refused at open (callers fall back to in-memory).
SCHEMA_VERSION = 1

#: SQLite limits host parameters per statement (999 in older builds);
#: key-lookup IN-lists are chunked well below that.
_SELECT_CHUNK = 400

_SYNCHRONOUS_MODES = ("OFF", "NORMAL", "FULL")

_SCHEMA = (
    """
    CREATE TABLE IF NOT EXISTS totals (
        fingerprint BLOB NOT NULL,
        qkey        BLOB NOT NULL,
        exact       BLOB NOT NULL,
        total       REAL NOT NULL,
        PRIMARY KEY (fingerprint, qkey)
    ) WITHOUT ROWID
    """,
    """
    CREATE TABLE IF NOT EXISTS estimates (
        fingerprint BLOB NOT NULL,
        qkey        BLOB NOT NULL,
        exact       BLOB NOT NULL,
        estimate    TEXT NOT NULL,
        PRIMARY KEY (fingerprint, qkey)
    ) WITHOUT ROWID
    """,
    """
    CREATE TABLE IF NOT EXISTS admission (
        client      TEXT PRIMARY KEY,
        tokens      REAL NOT NULL,
        refilled_at REAL NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS meta (
        key   TEXT PRIMARY KEY,
        value TEXT NOT NULL
    )
    """,
)


class CacheStoreError(RuntimeError):
    """The persistent store cannot be opened (missing, corrupt, wrong schema)."""


# ---------------------------------------------------------------------------
# Fork safety.  SQLite forbids using a connection carried across ``fork()``;
# the pre-fork serving pool and the pair-join pool both fork with live
# stores.  Every store registers itself here and is re-initialised in the
# child: fresh locks (a parent thread may hold the inherited ones), fresh
# wake event, cleared write-behind queues (the parent owns those rows and
# will flush them), and a freshly opened connection.
# ---------------------------------------------------------------------------
_LIVE_STORES: "weakref.WeakSet[EstimateCacheStore]" = weakref.WeakSet()

#: Connections inherited from the parent are parked here in the child and
#: never closed: deallocating one would run sqlite3_close, whose automatic
#: rollback of any in-flight parent transaction writes through the shared
#: WAL.  Abandoning the handle is the only fork-safe disposition.
_ABANDONED_CONNS: list[sqlite3.Connection] = []


def _reopen_stores_after_fork() -> None:
    for store in list(_LIVE_STORES):
        store._reopen_after_fork()


os.register_at_fork(after_in_child=_reopen_stores_after_fork)


# ---------------------------------------------------------------------------
# Codecs.  JSON round-trips Python floats exactly (serialised via ``repr``,
# parsed back to the identical IEEE-754 value), so both codecs are bit-exact
# — the property the serving tier's parity gate depends on.
# ---------------------------------------------------------------------------
def encode_fingerprint(fingerprint: Fingerprint) -> bytes:
    """A step-series fingerprint as canonical store-key bytes."""
    return json.dumps(
        [list(step) for step in fingerprint], separators=(",", ":")
    ).encode("utf-8")


def encode_estimate(estimate: SeriesEstimate) -> str:
    """A scalar estimate as its JSON store row (bit-exact round trip)."""
    return json.dumps(
        {
            "ratios": [float(x) for x in estimate.ratios],
            "cpu_step_s": [float(x) for x in estimate.cpu_step_s],
            "gpu_step_s": [float(x) for x in estimate.gpu_step_s],
            "cpu_delay_s": [float(x) for x in estimate.cpu_delay_s],
            "gpu_delay_s": [float(x) for x in estimate.gpu_delay_s],
            "intermediate_bytes": float(estimate.intermediate_bytes),
        },
        separators=(",", ":"),
    )


def decode_estimate(text: str) -> SeriesEstimate:
    """Rebuild a scalar estimate from :func:`encode_estimate` output.

    Raises ``ValueError`` on malformed rows (a half-written or hand-edited
    store row must read as a cache miss, not crash the server).
    """
    payload = json.loads(text)
    if not isinstance(payload, dict):
        raise ValueError("estimate row is not a JSON object")
    vectors: dict[str, list[float]] = {}
    for name in ("ratios", "cpu_step_s", "gpu_step_s", "cpu_delay_s", "gpu_delay_s"):
        values = payload.get(name)
        if not isinstance(values, list):
            raise ValueError(f"estimate row field {name!r} is not a list")
        vectors[name] = [float(v) for v in values]
    return SeriesEstimate(
        ratios=vectors["ratios"],
        cpu_step_s=vectors["cpu_step_s"],
        gpu_step_s=vectors["gpu_step_s"],
        cpu_delay_s=vectors["cpu_delay_s"],
        gpu_delay_s=vectors["gpu_delay_s"],
        intermediate_bytes=float(payload.get("intermediate_bytes", 0.0)),
    )


# ---------------------------------------------------------------------------
# The store.
# ---------------------------------------------------------------------------
class EstimateCacheStore:
    """One SQLite WAL database shared by every worker of a serving fleet.

    Two locks split the hot path from the durable path: ``_queue_lock``
    guards the write-behind queues (held for an append), ``_db_lock`` guards
    the connection (held across a read or one batched commit).  The flusher
    thread wakes every ``flush_interval_s`` — or immediately once
    ``flush_batch`` rows are queued — and writes everything pending in one
    transaction, so a crash loses at most one flush interval of rows, never
    corrupts committed ones (WAL + ``synchronous=NORMAL``).
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        *,
        flush_interval_s: float = 0.05,
        flush_batch: int = 512,
        synchronous: str = "NORMAL",
        timeout_s: float = 30.0,
        write_retry_attempts: int = 3,
        write_retry_backoff_s: float = 0.01,
        write_retry_backoff_cap_s: float = 0.1,
    ) -> None:
        if flush_interval_s <= 0.0:
            raise ValueError("flush_interval_s must be positive")
        if flush_batch < 1:
            raise ValueError("flush_batch must be at least 1")
        if write_retry_attempts < 0:
            raise ValueError("write_retry_attempts must be non-negative")
        if write_retry_backoff_s < 0.0 or write_retry_backoff_cap_s < 0.0:
            raise ValueError("write retry backoffs must be non-negative")
        synchronous = synchronous.upper()
        if synchronous not in _SYNCHRONOUS_MODES:
            raise ValueError(
                f"synchronous must be one of {_SYNCHRONOUS_MODES}, got {synchronous!r}"
            )
        self.path = os.fspath(path)
        self.flush_interval_s = flush_interval_s
        self.flush_batch = flush_batch
        self.synchronous = synchronous
        self.timeout_s = timeout_s
        self.write_retry_attempts = write_retry_attempts
        self.write_retry_backoff_s = write_retry_backoff_s
        self.write_retry_backoff_cap_s = write_retry_backoff_cap_s
        self._queue_lock = make_lock("cachestore-queue")
        self._db_lock = make_lock("cachestore-db")
        self._pending_totals: list[tuple[bytes, bytes, bytes, float]] = []
        self._pending_estimates: list[tuple[bytes, bytes, bytes, str]] = []
        self._wake = threading.Event()
        self._closed = False
        self._dead = False
        self.rows_flushed = 0
        self.flushes = 0
        self.reads = 0
        self.read_rows = 0
        #: Transient write failures that were retried (and may have healed).
        self.retried_writes = 0
        #: Commits abandoned after the retry budget — each one killed the store.
        self.failed_writes = 0
        try:
            self._conn = self._open_connection()
            for statement in _SCHEMA:
                self._conn.execute(statement)
            self._check_schema_version()
        except sqlite3.Error as exc:
            raise CacheStoreError(
                f"cannot open estimate cache store at {self.path!r}: {exc}"
            ) from exc
        self._start_flusher()
        _LIVE_STORES.add(self)

    def _open_connection(self) -> sqlite3.Connection:
        # isolation_level=None puts sqlite3 in autocommit mode; every
        # multi-statement section below brackets itself with explicit
        # BEGIN/COMMIT so transaction scope is visible, not implied.
        conn = sqlite3.connect(
            self.path, timeout=self.timeout_s, check_same_thread=False,
            isolation_level=None,
        )
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute(f"PRAGMA synchronous={self.synchronous}")
        conn.execute(f"PRAGMA busy_timeout={int(self.timeout_s * 1000)}")
        return conn

    def _start_flusher(self) -> None:
        self._flusher = threading.Thread(
            target=self._flush_loop, name="cachestore-flush", daemon=True
        )
        self._flusher.start()

    def _reopen_after_fork(self) -> None:
        """Re-initialise this store inside a freshly forked child.

        Runs from the module's ``os.register_at_fork`` hook.  The inherited
        locks may be held by parent threads that did not survive the fork,
        the flusher thread is gone, the pending queues belong to the parent
        (it will flush them), and the connection must never be used — or
        closed — from the child (see ``_ABANDONED_CONNS``).
        """
        _ABANDONED_CONNS.append(self._conn)
        self._queue_lock = make_lock("cachestore-queue")
        self._db_lock = make_lock("cachestore-db")
        self._wake = threading.Event()
        self._pending_totals = []
        self._pending_estimates = []
        if self._closed or self._dead:
            return  # every data path already early-returns; nothing to revive
        try:
            self._conn = self._open_connection()
        except sqlite3.Error:
            self._dead = True
            return
        self._start_flusher()

    def _check_schema_version(self) -> None:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        if row is None:
            self._conn.execute(
                "INSERT OR REPLACE INTO meta VALUES ('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )
        elif row[0] != str(SCHEMA_VERSION):
            raise CacheStoreError(
                f"store at {self.path!r} has schema version {row[0]}, "
                f"this build speaks {SCHEMA_VERSION}"
            )

    # ------------------------------------------------------------------
    # Read path (miss path of the cache: about to pay an engine call).
    # ------------------------------------------------------------------
    def fetch_totals(
        self, fingerprint: bytes, qkeys: Sequence[bytes]
    ) -> dict[bytes, tuple[bytes, float]]:
        """Stored ``qkey -> (exact bytes, total)`` rows for one fingerprint."""
        with self._db_lock:
            if self._dead or self._closed:
                return {}
            found: dict[bytes, tuple[bytes, float]] = {}
            try:
                for start in range(0, len(qkeys), _SELECT_CHUNK):
                    chunk = qkeys[start : start + _SELECT_CHUNK]
                    marks = ",".join("?" * len(chunk))
                    rows = self._conn.execute(
                        f"SELECT qkey, exact, total FROM totals "
                        f"WHERE fingerprint = ? AND qkey IN ({marks})",
                        (fingerprint, *chunk),
                    ).fetchall()
                    for qkey, exact, total in rows:
                        found[bytes(qkey)] = (bytes(exact), float(total))
            except sqlite3.Error:
                self._dead = True
                return {}
            self.reads += 1
            self.read_rows += len(found)
            return found

    def fetch_estimate(
        self, fingerprint: bytes, qkey: bytes
    ) -> tuple[bytes, str] | None:
        """The stored ``(exact bytes, estimate JSON)`` row, if present."""
        with self._db_lock:
            if self._dead or self._closed:
                return None
            try:
                row = self._conn.execute(
                    "SELECT exact, estimate FROM estimates "
                    "WHERE fingerprint = ? AND qkey = ?",
                    (fingerprint, qkey),
                ).fetchone()
            except sqlite3.Error:
                self._dead = True
                return None
            self.reads += 1
            if row is None:
                return None
            self.read_rows += 1
            return bytes(row[0]), str(row[1])

    # ------------------------------------------------------------------
    # Write-behind path (hot path: an append under a microsecond lock).
    # ------------------------------------------------------------------
    def enqueue_totals(
        self, fingerprint: bytes, rows: Iterable[tuple[bytes, bytes, float]]
    ) -> None:
        """Queue freshly computed ``(qkey, exact, total)`` rows for flushing."""
        with self._queue_lock:
            if self._dead or self._closed:
                return
            self._pending_totals.extend(
                (fingerprint, qkey, exact, total) for qkey, exact, total in rows
            )
            backlog = len(self._pending_totals) + len(self._pending_estimates)
        if backlog >= self.flush_batch:
            self._wake.set()

    def enqueue_estimate(
        self, fingerprint: bytes, qkey: bytes, exact: bytes, estimate: str
    ) -> None:
        """Queue one freshly computed scalar estimate row for flushing."""
        with self._queue_lock:
            if self._dead or self._closed:
                return
            self._pending_estimates.append((fingerprint, qkey, exact, estimate))
            backlog = len(self._pending_totals) + len(self._pending_estimates)
        if backlog >= self.flush_batch:
            self._wake.set()

    def flush(self) -> int:
        """Write everything pending in one transaction; returns rows written."""
        with self._queue_lock:
            totals, self._pending_totals = self._pending_totals, []
            estimates, self._pending_estimates = self._pending_estimates, []
        if not totals and not estimates:
            return 0
        with self._db_lock:
            if self._dead or self._closed:
                return 0
            return self._commit_rows(totals, estimates)

    def _commit_rows(
        self,
        totals: list[tuple[bytes, bytes, bytes, float]],
        estimates: list[tuple[bytes, bytes, bytes, str]],
    ) -> int:
        """Commit queued rows in one transaction; returns rows written.

        Runs under ``_db_lock``.  Transient write/flush I/O errors (a busy
        database, a brief ``EIO``/``ENOSPC`` blip — or the fault injector
        standing in for one) are retried with a capped doubling backoff
        before the store is declared dead: verified rows queued behind a
        hiccup must land, and only a *persistent* failure may disable
        persistence.  Catches ``OSError`` alongside ``sqlite3.Error`` so an
        injected or OS-level I/O error cannot escape and kill the
        write-behind flusher thread.
        """
        attempts = 0
        while True:
            try:
                faults.check("cachestore.write")
                self._conn.execute("BEGIN IMMEDIATE")
                if totals:
                    self._conn.executemany(
                        "INSERT OR REPLACE INTO totals VALUES (?, ?, ?, ?)", totals
                    )
                if estimates:
                    self._conn.executemany(
                        "INSERT OR REPLACE INTO estimates VALUES (?, ?, ?, ?)",
                        estimates,
                    )
                self._conn.execute("COMMIT")
            except (sqlite3.Error, OSError):
                try:
                    self._conn.execute("ROLLBACK")
                except (sqlite3.Error, OSError):
                    pass
                attempts += 1
                if attempts > self.write_retry_attempts:
                    self._dead = True
                    self.failed_writes += 1
                    return 0
                self.retried_writes += 1
                time.sleep(
                    min(
                        self.write_retry_backoff_cap_s,
                        self.write_retry_backoff_s * (2.0 ** (attempts - 1)),
                    )
                )
                continue
            written = len(totals) + len(estimates)
            self.rows_flushed += written
            self.flushes += 1
            return written

    def _flush_loop(self) -> None:
        while True:
            self._wake.wait(timeout=self.flush_interval_s)
            self._wake.clear()
            if self._closed:
                break
            self.flush()

    # ------------------------------------------------------------------
    # Fleet-wide admission state.
    # ------------------------------------------------------------------
    def admission_acquire(
        self,
        client: str,
        rate: float,
        burst: float,
        tokens: float = 1.0,
        now: float | None = None,
    ) -> bool:
        """Debit one client's *shared* token bucket; True when admitted.

        The refill-and-debit runs in a single ``BEGIN IMMEDIATE``
        transaction, so concurrent workers of a pre-fork pool serialise on
        the row and the fleet admits at ``rate`` requests/s overall — not
        ``rate`` per worker.  Uses ``time.monotonic()``, which shares its
        epoch across processes on Linux.  Fails *open* on store errors: a
        broken admission table must degrade to unlimited admission, not
        reject every request.
        """
        if now is None:
            now = time.monotonic()
        with self._db_lock:
            if self._dead or self._closed:
                return True
            try:
                self._conn.execute("BEGIN IMMEDIATE")
                row = self._conn.execute(
                    "SELECT tokens, refilled_at FROM admission WHERE client = ?",
                    (client,),
                ).fetchone()
                if row is None:
                    available = float(burst)
                else:
                    stored, refilled_at = float(row[0]), float(row[1])
                    available = min(
                        float(burst), stored + max(0.0, now - refilled_at) * rate
                    )
                admitted = available >= tokens
                if admitted:
                    available -= tokens
                self._conn.execute(
                    "INSERT OR REPLACE INTO admission VALUES (?, ?, ?)",
                    (client, available, now),
                )
                self._conn.execute("COMMIT")
            except sqlite3.Error:
                try:
                    self._conn.execute("ROLLBACK")
                except sqlite3.Error:
                    pass
                return True
            return admitted

    # ------------------------------------------------------------------
    def count_rows(self) -> tuple[int, int]:
        """(totals rows, estimate rows) currently committed to the store."""
        with self._db_lock:
            if self._dead or self._closed:
                return (0, 0)
            try:
                totals = self._conn.execute("SELECT COUNT(*) FROM totals").fetchone()
                estimates = self._conn.execute(
                    "SELECT COUNT(*) FROM estimates"
                ).fetchone()
            except sqlite3.Error:
                self._dead = True
                return (0, 0)
            return int(totals[0]), int(estimates[0])

    def pending_rows(self) -> int:
        """Rows queued but not yet flushed."""
        with self._queue_lock:
            return len(self._pending_totals) + len(self._pending_estimates)

    @property
    def dead(self) -> bool:
        """True once a store error has disabled persistence (cache still works)."""
        with self._db_lock:
            return self._dead

    def stats(self) -> dict[str, Any]:
        with self._queue_lock:
            pending = len(self._pending_totals) + len(self._pending_estimates)
        with self._db_lock:
            return {
                "path": self.path,
                "synchronous": self.synchronous,
                "dead": self._dead,
                "pending_rows": pending,
                "rows_flushed": self.rows_flushed,
                "flushes": self.flushes,
                "reads": self.reads,
                "read_rows": self.read_rows,
                "retried_writes": self.retried_writes,
                "failed_writes": self.failed_writes,
            }

    def close(self) -> None:
        """Flush everything pending and close the connection."""
        with self._queue_lock:
            already = self._closed
            self._closed = True
        self._wake.set()
        if not already:
            self._flusher.join(timeout=5.0)
        # The flusher exits without a final drain; write the tail ourselves.
        with self._queue_lock:
            totals, self._pending_totals = self._pending_totals, []
            estimates, self._pending_estimates = self._pending_estimates, []
        with self._db_lock:
            if not self._dead and (totals or estimates):
                self._commit_rows(totals, estimates)
            try:
                self._conn.close()
            except sqlite3.Error:
                pass

    def __enter__(self) -> "EstimateCacheStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


# ---------------------------------------------------------------------------
# The persistent cache: a shared in-memory LRU over the durable store.
# ---------------------------------------------------------------------------
class PersistentEstimateCache(SharedEstimateCache):
    """A :class:`SharedEstimateCache` backed by an :class:`EstimateCacheStore`.

    The in-memory LRU stays the first tier (a full memory hit never touches
    SQLite); the store is consulted only on the miss path, *before* the
    vectorized engine, and fed write-behind *after* it.  Rows restored from
    the store are re-verified byte-exactly against the lookup's unquantised
    ratio bytes — exactly like memory hits — and counted as hits (plus
    ``store_hits``), so ``hits + misses`` still equals rows requested.

    All hook overrides run under the inherited re-entrant lock (they are
    only reached from the locked public entry points), so the thread-safety
    contract of the shared cache is unchanged.
    """

    def __init__(
        self,
        store: EstimateCacheStore,
        max_entries: int = SHARED_CACHE_MAX_ENTRIES,
        decimals: int = 12,
    ) -> None:
        super().__init__(max_entries=max_entries, decimals=decimals)
        self.store = store
        self.store_hits = 0
        self._fp_bytes: dict[Fingerprint, bytes] = {}

    def _fingerprint_bytes(self, fingerprint: Fingerprint) -> bytes:
        encoded = self._fp_bytes.get(fingerprint)
        if encoded is None:
            encoded = self._fp_bytes[fingerprint] = encode_fingerprint(fingerprint)
        return encoded

    # -- hooks (called under the inherited lock) -----------------------
    def _restore_totals(
        self,
        fingerprint: Fingerprint,
        bucket: dict[bytes, tuple[bytes, float]],
        keys: list[tuple[bytes, bytes]],
        missing: list[int],
        out: np.ndarray,
        offset: int,
    ) -> tuple[list[int], int]:
        found = self.store.fetch_totals(
            self._fingerprint_bytes(fingerprint), [keys[i][0] for i in missing]
        )
        if not found:
            return missing, 0
        still_missing: list[int] = []
        added = 0
        for i in missing:
            key, exact = keys[i]
            row = found.get(key)
            if row is None or row[0] != exact:
                still_missing.append(i)
                continue
            out[offset + i] = row[1]
            if key not in bucket:
                added += 1
            bucket[key] = (exact, row[1])
            # _probe_totals already billed these rows as misses; they were
            # answered without the engine, so they are hits after all.
            self.hits += 1
            self.misses -= 1
            self.store_hits += 1
        return still_missing, added

    def _persist_totals(
        self,
        fingerprint: Fingerprint,
        keys: list[tuple[bytes, bytes]],
        rows: list[int],
        totals: list[float],
    ) -> None:
        self.store.enqueue_totals(
            self._fingerprint_bytes(fingerprint),
            [(keys[i][0], keys[i][1], total) for i, total in zip(rows, totals)],
        )

    def _restore_estimate(
        self, fingerprint: Fingerprint, key: bytes, exact: bytes
    ) -> SeriesEstimate | None:
        row = self.store.fetch_estimate(self._fingerprint_bytes(fingerprint), key)
        if row is None or row[0] != exact:
            return None
        try:
            estimate = decode_estimate(row[1])
        except (ValueError, TypeError):
            return None  # a malformed row reads as a miss, never crashes
        self.store_hits += 1
        return estimate

    def _persist_estimate(
        self, fingerprint: Fingerprint, key: bytes, exact: bytes,
        estimate: SeriesEstimate,
    ) -> None:
        self.store.enqueue_estimate(
            self._fingerprint_bytes(fingerprint), key, exact,
            encode_estimate(estimate),
        )

    # -- public surface ------------------------------------------------
    def flush(self) -> int:
        """Flush the store's write-behind queue now; returns rows written."""
        return self.store.flush()

    def close(self) -> None:
        """Flush pending rows and close the store (the cache stays usable)."""
        self.store.close()

    def stats(self) -> dict[str, Any]:
        with self._lock:
            combined: dict[str, Any] = dict(super().stats())
            combined["store_hits"] = self.store_hits
            combined["store"] = self.store.stats()
            return combined


def open_persistent_cache(
    path: str | os.PathLike[str],
    *,
    max_entries: int = SHARED_CACHE_MAX_ENTRIES,
    decimals: int = 12,
    on_error: Callable[[str], None] | None = None,
    **store_kwargs: Any,
) -> SharedEstimateCache:
    """A :class:`PersistentEstimateCache` on ``path``, or a cold fallback.

    A corrupted, unreadable or wrong-schema database must not take a serving
    process down with it: the error is reported through ``on_error`` (when
    given) and a plain in-memory :class:`SharedEstimateCache` is returned —
    cold but fully functional.
    """
    try:
        store = EstimateCacheStore(path, **store_kwargs)
    except CacheStoreError as exc:
        if on_error is not None:
            on_error(str(exc))
        return SharedEstimateCache(max_entries=max_entries, decimals=decimals)
    return PersistentEstimateCache(store, max_entries=max_entries, decimals=decimals)
