"""The abstract cost model for pipelined co-processing (paper Section 4.1).

A step series of ``n`` steps is executed with per-step CPU workload ratios
``r_1 .. r_n``.  The model estimates, per processor, the execution time of
each step as computation plus memory stalls (Eq. 2/3; the per-tuple unit
costs are supplied by :mod:`repro.costmodel.calibration`), adds the pipelined
delay caused by ratio changes between consecutive steps (Eqs. 4 and 5), and
takes the slower of the two processors as the series' elapsed time (Eq. 1).

DD is the special case of identical ratios on every step, and OL the special
case of every ratio being 0 or 1, so a single implementation covers all three
co-processing schemes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

CPU = "cpu"
GPU = "gpu"


class CostModelError(ValueError):
    """Raised for inconsistent cost-model inputs."""


@dataclass(frozen=True)
class StepCost:
    """Calibrated per-step inputs of the abstract model.

    ``cpu_unit_s`` / ``gpu_unit_s`` are the estimated seconds per input tuple
    on each device — the ``#I / IPC`` computation term of Eq. 3 plus the
    calibrated memory term of Eq. 2 — for this particular step.
    """

    name: str
    n_tuples: int
    cpu_unit_s: float
    gpu_unit_s: float
    #: Bytes of intermediate result per tuple exchanged when the ratio changes
    #: between this step and the next (used for discrete-architecture what-ifs).
    intermediate_bytes_per_tuple: float = 8.0

    def __post_init__(self) -> None:
        if self.n_tuples < 0:
            raise CostModelError("n_tuples must be non-negative")
        if self.cpu_unit_s < 0 or self.gpu_unit_s < 0:
            raise CostModelError("unit costs must be non-negative")

    def device_time(self, device: str, ratio: float) -> float:
        """Estimated time of this step's portion assigned to ``device``."""
        if not 0.0 <= ratio <= 1.0:
            raise CostModelError(f"ratio must be in [0, 1], got {ratio}")
        if device == CPU:
            return self.cpu_unit_s * self.n_tuples * ratio
        if device == GPU:
            return self.gpu_unit_s * self.n_tuples * (1.0 - ratio)
        raise CostModelError(f"unknown device {device!r}")


@dataclass
class SeriesEstimate:
    """Output of the abstract model for one step series and one ratio vector."""

    ratios: list[float]
    cpu_step_s: list[float]
    gpu_step_s: list[float]
    cpu_delay_s: list[float]
    gpu_delay_s: list[float]
    #: Intermediate-result volume (bytes) implied by consecutive ratio changes.
    intermediate_bytes: float = 0.0

    @property
    def cpu_total_s(self) -> float:
        return sum(self.cpu_step_s) + sum(self.cpu_delay_s)

    @property
    def gpu_total_s(self) -> float:
        return sum(self.gpu_step_s) + sum(self.gpu_delay_s)

    @property
    def total_s(self) -> float:
        """Eq. 1: the step series finishes when the slower processor does."""
        return max(self.cpu_total_s, self.gpu_total_s)

    def as_dict(self) -> dict[str, float]:
        return {
            "cpu_total_s": self.cpu_total_s,
            "gpu_total_s": self.gpu_total_s,
            "total_s": self.total_s,
            "intermediate_bytes": self.intermediate_bytes,
        }

    def copy(self) -> "SeriesEstimate":
        """Independent copy (the per-step vectors are mutable lists)."""
        return SeriesEstimate(
            ratios=list(self.ratios),
            cpu_step_s=list(self.cpu_step_s),
            gpu_step_s=list(self.gpu_step_s),
            cpu_delay_s=list(self.cpu_delay_s),
            gpu_delay_s=list(self.gpu_delay_s),
            intermediate_bytes=self.intermediate_bytes,
        )


def pipeline_delays(
    cpu_step_s: Sequence[float],
    gpu_step_s: Sequence[float],
    ratios: Sequence[float],
) -> tuple[list[float], list[float]]:
    """Pipelined execution delays of Eqs. 4 and 5.

    For step ``i`` with a larger CPU ratio than step ``i-1`` the CPU may stall
    waiting for the GPU to produce its input (Eq. 4); symmetrically for a
    smaller ratio the GPU may stall on the CPU (Eq. 5).  Negative values mean
    no stall and are clamped to zero.
    """
    n = len(ratios)
    if len(cpu_step_s) != n or len(gpu_step_s) != n:
        raise CostModelError("step time vectors and ratios must have equal length")
    cpu_delay = [0.0] * n
    gpu_delay = [0.0] * n
    for i in range(1, n):
        r_prev, r_cur = ratios[i - 1], ratios[i]
        if r_cur > r_prev:
            # Eq. 4: the CPU waits for GPU output of step i-1.
            not_pipelined = gpu_step_s[i - 1] * (1.0 - r_cur) / (1.0 - r_prev)
            delay = (sum(gpu_step_s[:i]) - not_pipelined) - sum(cpu_step_s[: i + 1])
            cpu_delay[i] = max(delay, 0.0)
        elif r_cur < r_prev:
            # Eq. 5: the GPU waits for CPU output of step i-1.
            pipelined_tail = gpu_step_s[i] * (1.0 - r_prev) / (1.0 - r_cur)
            delay = sum(cpu_step_s[:i]) - (sum(gpu_step_s[: i + 1]) - pipelined_tail)
            gpu_delay[i] = max(delay, 0.0)
    return cpu_delay, gpu_delay


def intermediate_result_bytes(steps: Sequence[StepCost], ratios: Sequence[float]) -> float:
    """Bytes of intermediate results implied by ratio changes (Section 4.1).

    For step ``i`` the number of intermediate data items is
    ``|r_i - r_{i-1}| * x_i`` under the uniform-distribution assumption; this
    is the volume that would have to cross the PCI-e bus on a discrete
    architecture (the grey areas of Figures 5 and 6).
    """
    total = 0.0
    for i in range(1, len(steps)):
        moved_tuples = abs(ratios[i] - ratios[i - 1]) * steps[i].n_tuples
        total += moved_tuples * steps[i].intermediate_bytes_per_tuple
    return total


def estimate_series(steps: Sequence[StepCost], ratios: Sequence[float]) -> SeriesEstimate:
    """Evaluate the abstract model (Eqs. 1-5) for one ratio assignment."""
    if len(steps) != len(ratios):
        raise CostModelError(
            f"got {len(ratios)} ratios for {len(steps)} steps"
        )
    for r in ratios:
        if not 0.0 <= r <= 1.0:
            raise CostModelError(f"ratio {r} outside [0, 1]")

    cpu_step_s = [s.device_time(CPU, r) for s, r in zip(steps, ratios)]
    gpu_step_s = [s.device_time(GPU, r) for s, r in zip(steps, ratios)]
    cpu_delay, gpu_delay = pipeline_delays(cpu_step_s, gpu_step_s, ratios)
    return SeriesEstimate(
        ratios=list(ratios),
        cpu_step_s=cpu_step_s,
        gpu_step_s=gpu_step_s,
        cpu_delay_s=cpu_delay,
        gpu_delay_s=gpu_delay,
        intermediate_bytes=intermediate_result_bytes(steps, ratios),
    )


def estimate_phases(
    phase_steps: dict[str, Sequence[StepCost]],
    phase_ratios: dict[str, Sequence[float]],
) -> dict[str, SeriesEstimate]:
    """Estimate several phases (step series separated by barriers) at once."""
    missing = set(phase_steps) - set(phase_ratios)
    if missing:
        raise CostModelError(f"missing ratios for phases: {sorted(missing)}")
    return {
        phase: estimate_series(steps, phase_ratios[phase])
        for phase, steps in phase_steps.items()
    }


def total_elapsed(estimates: dict[str, SeriesEstimate]) -> float:
    """Elapsed time of consecutive phases (barriers between them)."""
    return sum(e.total_s for e in estimates.values())
