"""Cost model for co-processed hash joins (paper Section 4)."""

from .abstract import (
    CostModelError,
    SeriesEstimate,
    StepCost,
    estimate_phases,
    estimate_series,
    intermediate_result_bytes,
    pipeline_delays,
    total_elapsed,
)
from .batch import (
    BatchEstimate,
    EstimateCache,
    estimate_series_batch,
    steps_fingerprint,
)
from .calibration import CalibrationTable, StepCalibration, calibrate_step
from .montecarlo import (
    MonteCarloSample,
    MonteCarloStudy,
    run_monte_carlo,
    sample_ratio_vectors,
)
from .optimizer import (
    DEFAULT_DELTA,
    OptimizationResult,
    OptimizerError,
    dd_sweep,
    optimize_dd,
    optimize_ol,
    optimize_pl,
    optimize_scheme,
    ratio_grid,
)

__all__ = [
    "BatchEstimate",
    "CalibrationTable",
    "CostModelError",
    "DEFAULT_DELTA",
    "EstimateCache",
    "MonteCarloSample",
    "MonteCarloStudy",
    "OptimizationResult",
    "OptimizerError",
    "SeriesEstimate",
    "StepCalibration",
    "StepCost",
    "calibrate_step",
    "dd_sweep",
    "estimate_phases",
    "estimate_series",
    "estimate_series_batch",
    "intermediate_result_bytes",
    "optimize_dd",
    "optimize_ol",
    "optimize_pl",
    "optimize_scheme",
    "pipeline_delays",
    "ratio_grid",
    "run_monte_carlo",
    "sample_ratio_vectors",
    "steps_fingerprint",
    "total_elapsed",
]
