"""Monte Carlo exploration of the PL ratio space (paper Figure 9).

The paper validates its cost-model-driven ratio choice by running one
thousand PL executions with randomly generated ratio settings and showing
that (a) the cost model's pick lands very close to the best simulated run and
(b) per-run prediction error stays below ~15% for most runs.  This module
reproduces that experiment: it samples random ratio vectors, evaluates each
with both the cost model (estimated) and a caller-supplied measurement
function (the co-processing executor), and summarises the outcome as a CDF.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from .abstract import StepCost, estimate_series
from .batch import EstimateCache, estimate_series_batch, shared_estimate_cache

#: Measurement callback: ratios -> measured (simulated) seconds.
MeasureFn = Callable[[Sequence[float]], float]

#: Optional batched measurement callback: all sample ratio vectors at once ->
#: one measured time per vector, in order.  Lets executors that can amortise
#: per-call setup (shared workload proxies, preallocated buffers) measure the
#: whole study in one pass.
MeasureBatchFn = Callable[[Sequence[Sequence[float]]], Sequence[float]]


@dataclass
class MonteCarloSample:
    """One random ratio setting with its estimated and measured times."""

    ratios: list[float]
    estimated_s: float
    measured_s: float

    @property
    def relative_error(self) -> float:
        """Relative prediction error; NaN when the measurement is degenerate.

        A non-positive measured time carries no information about prediction
        quality, so it must not be counted as a perfect prediction.
        """
        if self.measured_s <= 0:
            return float("nan")
        return abs(self.estimated_s - self.measured_s) / self.measured_s


@dataclass
class MonteCarloStudy:
    """All samples of one Monte Carlo run plus the cost model's own pick."""

    samples: list[MonteCarloSample]
    chosen_ratios: list[float]
    chosen_measured_s: float
    chosen_estimated_s: float

    @property
    def measured_times(self) -> np.ndarray:
        return np.asarray([s.measured_s for s in self.samples], dtype=np.float64)

    @property
    def best_measured_s(self) -> float:
        return float(self.measured_times.min())

    @property
    def worst_measured_s(self) -> float:
        return float(self.measured_times.max())

    def cdf(self, n_points: int = 50) -> list[tuple[float, float]]:
        """(elapsed seconds, fraction of runs at most that slow) pairs."""
        times = np.sort(self.measured_times)
        if times.shape[0] == 0:
            return []
        points = np.linspace(times[0], times[-1], n_points)
        fractions = np.searchsorted(times, points, side="right") / times.shape[0]
        return list(zip(points.tolist(), fractions.tolist()))

    def chosen_percentile(self) -> float:
        """Fraction of random runs that are no faster than the model's pick."""
        times = self.measured_times
        if times.shape[0] == 0:
            return 0.0
        return float(np.mean(times >= self.chosen_measured_s))

    def error_quantile(self, quantile: float = 0.9) -> float:
        """Prediction-error quantile across the random runs.

        Degenerate samples (``relative_error`` NaN) are excluded; if every
        sample is degenerate the quantile itself is NaN.
        """
        errors = np.asarray([s.relative_error for s in self.samples])
        if errors.shape[0] == 0:
            return 0.0
        finite = errors[~np.isnan(errors)]
        if finite.shape[0] == 0:
            return float("nan")
        return float(np.quantile(finite, quantile))


def sample_ratio_vectors(
    n_steps: int,
    n_samples: int,
    seed: int = 2013,
    delta: float = 0.02,
) -> list[list[float]]:
    """Random ratio vectors quantised to the optimiser's delta grid."""
    if n_steps <= 0 or n_samples <= 0:
        raise ValueError("n_steps and n_samples must be positive")
    rng = np.random.default_rng(seed)
    levels = int(round(1.0 / delta))
    draws = rng.integers(0, levels + 1, size=(n_samples, n_steps))
    return (draws / levels).tolist()


def run_monte_carlo(
    steps: Sequence[StepCost],
    measure: MeasureFn,
    chosen_ratios: Sequence[float],
    n_samples: int = 1000,
    seed: int = 2013,
    delta: float = 0.02,
    cache: EstimateCache | None = None,
    use_shared_cache: bool = True,
    measure_batch: MeasureBatchFn | None = None,
) -> MonteCarloStudy:
    """Run the Figure 9 experiment.

    ``measure`` maps a ratio vector to its measured (simulated) elapsed time;
    ``chosen_ratios`` is the cost model's own pick, measured the same way.
    All random ratio vectors are estimated in one vectorized batch, so the
    model-side cost of the study is a single ``estimate_series_batch`` call.
    The batch goes through ``cache`` when given — or, by default, through the
    process-wide :func:`shared_estimate_cache`, so repeated studies over the
    same calibrated steps reuse their rows; ``use_shared_cache=False``
    restores the uncached direct engine call.

    ``measure_batch``, when given, measures every sample vector in one call
    (the per-vector ``measure`` still times the chosen ratios); it must
    return exactly one time per vector, in order.
    """
    vectors = sample_ratio_vectors(len(steps), n_samples, seed=seed, delta=delta)
    if cache is None and use_shared_cache:
        cache = shared_estimate_cache()
    if cache is not None:
        estimated_totals = cache.totals(steps, vectors)
    else:
        estimated_totals = estimate_series_batch(steps, vectors).total_s
    if measure_batch is not None:
        measured_times = [float(t) for t in measure_batch(vectors)]
        if len(measured_times) != len(vectors):
            raise ValueError(
                f"measure_batch returned {len(measured_times)} times for "
                f"{len(vectors)} sample vectors"
            )
    else:
        measured_times = [measure(ratios) for ratios in vectors]
    samples = [
        MonteCarloSample(
            ratios=list(ratios), estimated_s=float(estimated), measured_s=measured
        )
        for ratios, estimated, measured in zip(
            vectors, estimated_totals.tolist(), measured_times
        )
    ]
    chosen = list(chosen_ratios)
    return MonteCarloStudy(
        samples=samples,
        chosen_ratios=chosen,
        chosen_measured_s=measure(chosen),
        chosen_estimated_s=estimate_series(steps, chosen).total_s,
    )
