"""Cost-model calibration (paper Section 4.2).

The paper instantiates its abstract model by (a) profiling the number of
instructions per tuple of every step with AMD CodeXL / APP Profiler and (b)
calibrating the memory unit cost per tuple with the method of [15, 26].  In
this reproduction the role of the profiler is played by the executed step
series themselves: each :class:`~repro.hashjoin.steps.StepExecution` carries
per-tuple work quantities, from which we derive an average
:class:`~repro.hardware.workstats.WorkProfile` and then the per-device unit
cost (computation + memory) under the machine's cache model.

The resulting :class:`CalibrationTable` also regenerates Figure 4 (average
processing time per tuple for each step on the CPU and the GPU).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hardware.machine import CPU, GPU, Machine
from ..hardware.workstats import WorkProfile
from ..hashjoin.steps import StepExecution, StepSeries
from .abstract import StepCost


@dataclass(frozen=True)
class StepCalibration:
    """Calibrated per-tuple costs of one step."""

    name: str
    phase: str
    n_tuples: int
    profile: WorkProfile
    miss_ratio: float
    cpu_unit_s: float
    gpu_unit_s: float
    intermediate_bytes_per_tuple: float

    @property
    def cpu_unit_ns(self) -> float:
        return self.cpu_unit_s * 1e9

    @property
    def gpu_unit_ns(self) -> float:
        return self.gpu_unit_s * 1e9

    @property
    def gpu_speedup(self) -> float:
        """How many times faster the GPU processes one tuple of this step."""
        if self.gpu_unit_s <= 0:
            return float("inf")
        return self.cpu_unit_s / self.gpu_unit_s

    def to_step_cost(self) -> StepCost:
        return StepCost(
            name=self.name,
            n_tuples=self.n_tuples,
            cpu_unit_s=self.cpu_unit_s,
            gpu_unit_s=self.gpu_unit_s,
            intermediate_bytes_per_tuple=self.intermediate_bytes_per_tuple,
        )


def calibrate_step(execution: StepExecution, machine: Machine) -> StepCalibration:
    """Profile one executed step and derive its per-device unit costs."""
    profile = execution.work.average_profile()
    env = machine.memory_environment(execution.working_set)
    cpu_unit = machine.cpu.estimated_time(profile, 1, env)
    gpu_unit = machine.gpu.estimated_time(profile, 1, env)
    return StepCalibration(
        name=execution.step.name,
        phase=execution.step.phase,
        n_tuples=execution.n_tuples,
        profile=profile,
        miss_ratio=env.miss_ratio,
        cpu_unit_s=cpu_unit,
        gpu_unit_s=gpu_unit,
        intermediate_bytes_per_tuple=execution.intermediate_bytes_per_tuple,
    )


@dataclass
class CalibrationTable:
    """Calibrated costs of every step of one or more step series."""

    steps: list[StepCalibration] = field(default_factory=list)

    @classmethod
    def from_series(cls, series_list: list[StepSeries], machine: Machine) -> "CalibrationTable":
        table = cls()
        for series in series_list:
            for execution in series:
                table.steps.append(calibrate_step(execution, machine))
        return table

    @classmethod
    def merged(cls, tables: list["CalibrationTable"]) -> "CalibrationTable":
        """Concatenate per-series tables into one whole-join table.

        ``merged([from_series([s], m) for s in series_list])`` carries the
        exact :class:`StepCalibration` objects ``from_series(series_list, m)``
        would compute, in the same order — so a driver that needs both the
        per-series step costs and the whole-join table (the join executor
        does) calibrates every step once instead of twice.
        """
        return cls(steps=[step for table in tables for step in table.steps])

    # ------------------------------------------------------------------
    def for_phase(self, phase: str) -> list[StepCalibration]:
        return [s for s in self.steps if s.phase == phase]

    def by_name(self, name: str) -> StepCalibration:
        for step in self.steps:
            if step.name == name:
                return step
        raise KeyError(f"no calibrated step named {name!r}")

    def step_costs(self, phase: str | None = None) -> list[StepCost]:
        chosen = self.steps if phase is None else self.for_phase(phase)
        return [s.to_step_cost() for s in chosen]

    # ------------------------------------------------------------------
    def unit_cost_rows(self) -> list[dict[str, float | str]]:
        """Figure 4 rows: per-step ns/tuple on the CPU and the GPU."""
        return [
            {
                "step": s.name,
                "phase": s.phase,
                "cpu_ns_per_tuple": round(s.cpu_unit_ns, 3),
                "gpu_ns_per_tuple": round(s.gpu_unit_ns, 3),
                "gpu_speedup": round(s.gpu_speedup, 2),
            }
            for s in self.steps
        ]

    def device_preference(self) -> dict[str, str]:
        """Which device each step prefers (the OL decision on the coupled machine)."""
        return {
            s.name: (GPU if s.gpu_unit_s <= s.cpu_unit_s else CPU) for s in self.steps
        }

    def __len__(self) -> int:
        return len(self.steps)
