"""Vectorized batch evaluation engine for the abstract cost model.

:func:`~repro.costmodel.abstract.estimate_series` evaluates Eqs. 1-5 for one
ratio vector in pure Python, which is fine for a single what-if question but
dominates the runtime of the ratio optimisers: ``optimize_pl`` coordinate
descent and the Figure 9 Monte Carlo study issue tens of thousands of
evaluations per join.  This module evaluates an ``(m, n)`` matrix of ratio
vectors — ``m`` candidate assignments for an ``n``-step series — in one pass
of NumPy array operations:

* per-step device times are two broadcasted multiplies (Eq. 2/3 with the
  calibrated unit costs),
* the Eq. 4/5 pipelined delays come from row-wise cumulative sums and
  sign masks on the consecutive ratio changes,
* intermediate-result volumes are the masked ``|r_i - r_{i-1}| * x_i``
  byte sums of Section 4.1.

The scalar :func:`estimate_series` remains the reference implementation; the
batch engine reproduces its floating-point operation order (sequential
cumulative sums, identical expression shapes), so per-row totals agree with
the scalar path to well below 1e-12 and the optimisers built on top return
identical ratio choices.

:class:`EstimateCache` memoises per-row totals and full scalar estimates,
keyed on a fingerprint of the calibrated steps plus the quantised ratio
vector, so the planner and the ``experiments/`` figures reuse identical
evaluations across schemes and figures instead of re-running the engine.
"""

from __future__ import annotations

# repro: kernel
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Sequence

from numpy.typing import ArrayLike

import numpy as np

from ..locking import make_lock
from .abstract import CostModelError, SeriesEstimate, StepCost, estimate_series

__all__ = [
    "BatchEstimate",
    "EstimateCache",
    "SharedEstimateCache",
    "batch_totals",
    "batch_totals_mixed",
    "estimate_series_batch",
    "mixed_matrices",
    "reset_shared_estimate_cache",
    "shared_estimate_cache",
    "steps_fingerprint",
]


def as_ratio_matrix(
    ratio_matrix: ArrayLike, n_steps: int, validate: bool = True
) -> np.ndarray:
    """Validate and normalise candidate ratios to an ``(m, n_steps)`` matrix.

    A single ratio vector is promoted to a one-row matrix.  Raises
    :class:`CostModelError` on shape mismatches or ratios outside [0, 1],
    mirroring the scalar path's validation; ``validate=False`` skips the
    range scan for hot paths whose matrices come from known-valid grids.
    """
    matrix = np.asarray(ratio_matrix, dtype=np.float64)
    if matrix.ndim == 1:
        matrix = matrix[np.newaxis, :]
    if not validate:
        return matrix
    if matrix.ndim != 2:
        raise CostModelError(
            f"ratio matrix must be 1- or 2-dimensional, got shape {matrix.shape}"
        )
    if matrix.shape[1] != n_steps:
        raise CostModelError(
            f"got {matrix.shape[1]} ratios per row for {n_steps} steps"
        )
    if matrix.size and (matrix.min() < 0.0 or matrix.max() > 1.0):
        raise CostModelError("ratios outside [0, 1] in ratio matrix")
    return matrix


@dataclass
class BatchEstimate:
    """Per-row outputs of the abstract model for a batch of ratio vectors.

    The ``*_step_s`` / ``*_delay_s`` members are ``(m, n)`` matrices; the
    totals are length-``m`` vectors.  :meth:`row` materialises one row as a
    scalar :class:`~repro.costmodel.abstract.SeriesEstimate`.
    """

    ratio_matrix: np.ndarray
    cpu_step_s: np.ndarray
    gpu_step_s: np.ndarray
    cpu_delay_s: np.ndarray
    gpu_delay_s: np.ndarray
    cpu_total_s: np.ndarray
    gpu_total_s: np.ndarray
    total_s: np.ndarray
    intermediate_bytes: np.ndarray

    def __len__(self) -> int:
        return int(self.ratio_matrix.shape[0])

    def argmin(self) -> int:
        """Index of the fastest row (first one on ties, like the scalar scans)."""
        if len(self) == 0:
            raise CostModelError("cannot take argmin of an empty batch")
        return int(np.argmin(self.total_s))

    def row(self, i: int) -> SeriesEstimate:
        """Materialise row ``i`` as a scalar :class:`SeriesEstimate`."""
        return SeriesEstimate(
            ratios=self.ratio_matrix[i].tolist(),
            cpu_step_s=self.cpu_step_s[i].tolist(),
            gpu_step_s=self.gpu_step_s[i].tolist(),
            cpu_delay_s=self.cpu_delay_s[i].tolist(),
            gpu_delay_s=self.gpu_delay_s[i].tolist(),
            intermediate_bytes=float(self.intermediate_bytes[i]),
        )


#: Memoised per-step coefficient arrays, keyed on the steps fingerprint.  The
#: optimisers evaluate the same calibrated series thousands of times; rebuilding
#: four small arrays per batch call is measurable at ~50-row batch sizes.
_COEFFICIENT_CACHE: dict[
    tuple, tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]
] = {}
_COEFFICIENT_CACHE_MAX = 256


def _step_coefficients(
    steps: Sequence[StepCost],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """(cpu_unit*n_tuples, gpu_unit*n_tuples, n_tuples, intermediate_bpt)."""
    key = steps_fingerprint(steps)
    cached = _COEFFICIENT_CACHE.get(key)
    if cached is not None:
        return cached
    n_tuples = np.array([s.n_tuples for s in steps], dtype=np.float64)
    cpu_coeff = np.array([s.cpu_unit_s for s in steps], dtype=np.float64) * n_tuples
    gpu_coeff = np.array([s.gpu_unit_s for s in steps], dtype=np.float64) * n_tuples
    inter_bpt = np.array(
        [s.intermediate_bytes_per_tuple for s in steps], dtype=np.float64
    )
    if len(_COEFFICIENT_CACHE) >= _COEFFICIENT_CACHE_MAX:
        _COEFFICIENT_CACHE.clear()
    coefficients = (cpu_coeff, gpu_coeff, n_tuples, inter_bpt)
    _COEFFICIENT_CACHE[key] = coefficients
    return coefficients


class _TotalsWorkspace:
    """Grow-only scratch buffers behind :func:`_stacked_totals`.

    The inner kernel used to allocate ~15 temporaries per call; at 64-request
    bursts the allocator traffic of those temporaries, not the call overhead,
    dominates the bill.  Every intermediate now lands in a preallocated
    ``out=`` buffer sliced from this workspace.  Buffers only ever grow (to
    the largest ``(m, n)`` seen), so alternating batch shapes — the descent
    rounds shrink every round — stop allocating after the first pass.
    """

    def __init__(self) -> None:
        self.rows = 0
        self.cols = 0
        self.full: list[np.ndarray] = []
        self.bools: list[np.ndarray] = []
        self.vecs: list[np.ndarray] = []

    def reserve(self, rows: int, cols: int) -> None:
        if rows > self.rows or cols > self.cols:
            self.rows = max(rows, self.rows)
            self.cols = max(cols, self.cols)
            shape = (self.rows, self.cols)
            self.full = [np.empty(shape, dtype=np.float64) for _ in range(6)]
            self.bools = [np.empty(shape, dtype=np.bool_) for _ in range(2)]
            self.vecs = [np.empty(self.rows, dtype=np.float64) for _ in range(2)]


#: Workspaces are per-thread: the raw engine is reachable outside the shared
#: cache's lock (the service's descent rounds call it directly), so two
#: planner threads must never scribble into the same scratch buffers.
_WORKSPACE = threading.local()


def _stacked_totals(
    R: np.ndarray, cpu_coeff: np.ndarray, gpu_coeff: np.ndarray
) -> np.ndarray:
    """Eq. 1 totals for a ratio matrix against per-step coefficient arrays.

    ``cpu_coeff``/``gpu_coeff`` are either length-``n`` vectors (every row
    belongs to the same step series, the :func:`batch_totals` case) or full
    ``(m, n)`` matrices carrying one coefficient vector per row (the mixed
    case); the broadcasted arithmetic — and its floating-point operation
    order — is identical either way.

    All intermediates go through per-thread preallocated ``out=`` buffers;
    only the returned totals vector is freshly allocated.  Every rewritten
    expression keeps the reference operation order (the same elementwise ops
    on the same inputs), so totals stay bit-identical to the temporary-heavy
    formulation the Hypothesis parity suite was written against.
    """
    m, n = R.shape
    ws: _TotalsWorkspace | None = getattr(_WORKSPACE, "totals", None)
    if ws is None:
        ws = _WORKSPACE.totals = _TotalsWorkspace()
    ws.reserve(m, n)

    cpu_cum = ws.full[0][:m, :n]
    gpu_step = ws.full[1][:m, :n]
    gpu_cum = ws.full[2][:m, :n]
    one_minus = ws.full[3][:m, :n]

    np.multiply(cpu_coeff, R, out=cpu_cum)  # Eq. 2 per-step CPU times ...
    np.cumsum(cpu_cum, axis=1, out=cpu_cum)  # ... accumulated in place
    np.subtract(1.0, R, out=one_minus)
    np.multiply(gpu_coeff, one_minus, out=gpu_step)  # Eq. 3 per-step GPU times
    np.cumsum(gpu_step, axis=1, out=gpu_cum)

    if n > 1:
        k = n - 1
        r_prev, r_cur = R[:, :k], R[:, 1:]
        om_prev, om_cur = one_minus[:, :k], one_minus[:, 1:]
        wait = ws.full[4][:m, :k]
        work = ws.full[5][:m, :k]
        mask = ws.bools[0][:m, :k]
        off = ws.bools[1][:m, :k]
        # The divisions are only meaningful inside their masks (where the
        # denominators are strictly positive); the masked-out lanes may
        # produce inf/nan and are zeroed below.
        with np.errstate(divide="ignore", invalid="ignore"):
            # Eq. 4: the CPU waits for GPU output of step i-1.
            np.multiply(gpu_step[:, :k], om_cur, out=work)
            np.divide(work, om_prev, out=work)  # not_pipelined
            np.subtract(gpu_cum[:, :k], work, out=wait)
            np.subtract(wait, cpu_cum[:, 1:], out=wait)  # cpu_wait
            # Eq. 5: the GPU waits for CPU output of step i-1.
            np.multiply(gpu_step[:, 1:], om_prev, out=work)
            np.divide(work, om_cur, out=work)  # pipelined_tail
            np.subtract(gpu_cum[:, 1:], work, out=work)
            np.subtract(cpu_cum[:, :k], work, out=work)  # gpu_wait
        # cpu_delay = where(r_cur > r_prev, max(cpu_wait, 0), 0): clamp in
        # place, then zero the masked-out lanes (nan comparisons are False,
        # so nan lanes are zeroed exactly like np.where's else branch).  The
        # scalar path's delay vectors lead with a structural 0.0 for step 0;
        # adding 0 first leaves the sequential accumulation identical.
        np.maximum(wait, 0.0, out=wait)
        np.greater(r_cur, r_prev, out=mask)
        np.logical_not(mask, out=off)
        wait[off] = 0.0
        np.cumsum(wait, axis=1, out=wait)
        cpu_total = np.add(cpu_cum[:, -1], wait[:, -1], out=ws.vecs[0][:m])
        np.maximum(work, 0.0, out=work)
        np.less(r_cur, r_prev, out=mask)
        np.logical_not(mask, out=off)
        work[off] = 0.0
        np.cumsum(work, axis=1, out=work)
        gpu_total = np.add(gpu_cum[:, -1], work[:, -1], out=ws.vecs[1][:m])
        return np.maximum(cpu_total, gpu_total)
    return np.maximum(cpu_cum[:, -1], gpu_cum[:, -1])


def batch_totals(
    steps: Sequence[StepCost], ratio_matrix: ArrayLike, validate: bool = True
) -> np.ndarray:
    """Per-row ``total_s`` (Eq. 1) without materialising a full BatchEstimate.

    This is the optimiser hot path: identical arithmetic (and floating-point
    operation order) to :func:`estimate_series_batch`, minus the per-step
    output matrices.  ``validate=False`` skips the [0, 1] range scan for
    callers that generate their candidate matrices from known-valid grids.
    """
    n = len(steps)
    R = as_ratio_matrix(ratio_matrix, n, validate=validate)
    if n == 0:
        return np.zeros(R.shape[0], dtype=np.float64)
    cpu_coeff, gpu_coeff, _, _ = _step_coefficients(steps)
    return _stacked_totals(R, cpu_coeff, gpu_coeff)


def mixed_matrices(
    segments: Sequence[tuple[Sequence[StepCost], np.ndarray]],
    validate: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Segmented coefficient matrices for a mixture of step series.

    ``segments`` is a sequence of ``(steps, ratio_matrix)`` pairs, each pair
    contributing its matrix's rows (in order) to one stacked batch.  Series
    of different lengths are right-padded to the widest series: the padded
    ratio columns repeat each row's last real ratio (so the Eq. 4/5 delay
    masks stay off — consecutive equal ratios never stall) and the padded
    coefficient columns are zero (so the padded lanes contribute exactly
    ``+0.0`` to every cumulative sum, which leaves the per-row floating-point
    accumulation bit-identical to the unpadded per-series evaluation).

    Returns ``(R, cpu_coeff, gpu_coeff)`` — the stacked ``(m, n_max)`` ratio
    matrix and the per-row coefficient matrices for :func:`_stacked_totals`.
    """
    prepared: list[tuple[Sequence[StepCost], np.ndarray]] = []
    m = 0
    n_max = 0
    for steps, ratio_matrix in segments:
        matrix = as_ratio_matrix(ratio_matrix, len(steps), validate=validate)
        prepared.append((steps, matrix))
        m += matrix.shape[0]
        n_max = max(n_max, len(steps))
    R = np.zeros((m, n_max), dtype=np.float64)
    cpu_coeff = np.zeros((m, n_max), dtype=np.float64)
    gpu_coeff = np.zeros((m, n_max), dtype=np.float64)
    offset = 0
    for steps, matrix in prepared:
        n = len(steps)
        rows = matrix.shape[0]
        if rows and n:
            block = slice(offset, offset + rows)
            R[block, :n] = matrix
            if n < n_max:
                R[block, n:] = matrix[:, n - 1 : n]
            series_cpu, series_gpu, _, _ = _step_coefficients(steps)
            cpu_coeff[block, :n] = series_cpu
            gpu_coeff[block, :n] = series_gpu
        offset += rows
    return R, cpu_coeff, gpu_coeff


def batch_totals_mixed(
    segments: Sequence[tuple[Sequence[StepCost], np.ndarray]],
    validate: bool = True,
) -> np.ndarray:
    """Per-row ``total_s`` for rows drawn from *different* step series.

    One vectorized pass serves an arbitrary mixture of series fingerprints:
    each ``(steps, ratio_matrix)`` segment is expanded to per-row coefficient
    vectors by :func:`mixed_matrices` and the whole stack is evaluated by the
    same Eq. 1-5 arithmetic as :func:`batch_totals`.  Row ``j`` of the
    returned vector is bit-identical to the corresponding row of
    ``batch_totals(steps_j, ...)`` for the segment it came from — padding
    adds only exact ``+0.0`` terms and masked-off delay lanes.

    Prefer this over per-series :func:`batch_totals` loops whenever one call
    site holds candidate rows for several series at once (the plan service's
    request batches, lockstep coordinate descents): the engine-call count
    drops from one per fingerprint to one total.
    """
    R, cpu_coeff, gpu_coeff = mixed_matrices(segments, validate=validate)
    if R.shape[1] == 0:
        return np.zeros(R.shape[0], dtype=np.float64)
    return _stacked_totals(R, cpu_coeff, gpu_coeff)


def estimate_series_batch(
    steps: Sequence[StepCost], ratio_matrix: ArrayLike
) -> BatchEstimate:
    """Evaluate the abstract model (Eqs. 1-5) for a batch of ratio vectors.

    ``ratio_matrix`` is an ``(m, n)`` array-like of candidate ratio vectors
    (one row per candidate) for the ``n`` calibrated ``steps``; a single
    vector is accepted as a one-row batch.  Row ``i`` of the result equals
    ``estimate_series(steps, ratio_matrix[i])``.
    """
    n = len(steps)
    R = as_ratio_matrix(ratio_matrix, n)
    m = R.shape[0]

    if n == 0:
        zeros_mat = np.zeros((m, 0), dtype=np.float64)
        zeros_vec = np.zeros(m, dtype=np.float64)
        return BatchEstimate(
            ratio_matrix=R,
            cpu_step_s=zeros_mat,
            gpu_step_s=zeros_mat,
            cpu_delay_s=zeros_mat,
            gpu_delay_s=zeros_mat,
            cpu_total_s=zeros_vec,
            gpu_total_s=zeros_vec.copy(),
            total_s=zeros_vec.copy(),
            intermediate_bytes=zeros_vec.copy(),
        )

    cpu_coeff, gpu_coeff, n_tuples, inter_bpt = _step_coefficients(steps)

    # Eq. 2/3 per-step times; (unit * n_tuples) * ratio matches the scalar
    # device_time() operation order exactly.
    cpu_step = cpu_coeff * R
    gpu_step = gpu_coeff * (1.0 - R)

    # Sequential cumulative sums reproduce the scalar code's left-to-right
    # prefix sums bit for bit (np.cumsum accumulates in order).
    cpu_cum = np.cumsum(cpu_step, axis=1)
    gpu_cum = np.cumsum(gpu_step, axis=1)

    cpu_delay = np.zeros_like(R)
    gpu_delay = np.zeros_like(R)
    intermediate = np.zeros(m, dtype=np.float64)
    if n > 1:
        r_prev = R[:, :-1]
        r_cur = R[:, 1:]
        # The divisions are only meaningful inside their masks (where the
        # denominators are strictly positive); the masked-out lanes may
        # produce inf/nan and are discarded by np.where below.
        with np.errstate(divide="ignore", invalid="ignore"):
            # Eq. 4: the CPU waits for GPU output of step i-1.
            not_pipelined = gpu_step[:, :-1] * (1.0 - r_cur) / (1.0 - r_prev)
            cpu_wait = (gpu_cum[:, :-1] - not_pipelined) - cpu_cum[:, 1:]
            # Eq. 5: the GPU waits for CPU output of step i-1.
            pipelined_tail = gpu_step[:, 1:] * (1.0 - r_prev) / (1.0 - r_cur)
            gpu_wait = cpu_cum[:, :-1] - (gpu_cum[:, 1:] - pipelined_tail)
        cpu_delay[:, 1:] = np.where(
            r_cur > r_prev, np.maximum(cpu_wait, 0.0), 0.0
        )
        gpu_delay[:, 1:] = np.where(
            r_cur < r_prev, np.maximum(gpu_wait, 0.0), 0.0
        )

        moved_tuples = np.abs(r_cur - r_prev) * n_tuples[1:]
        intermediate = np.cumsum(moved_tuples * inter_bpt[1:], axis=1)[:, -1]

    cpu_total = cpu_cum[:, -1] + np.cumsum(cpu_delay, axis=1)[:, -1]
    gpu_total = gpu_cum[:, -1] + np.cumsum(gpu_delay, axis=1)[:, -1]

    return BatchEstimate(
        ratio_matrix=R,
        cpu_step_s=cpu_step,
        gpu_step_s=gpu_step,
        cpu_delay_s=cpu_delay,
        gpu_delay_s=gpu_delay,
        cpu_total_s=cpu_total,
        gpu_total_s=gpu_total,
        total_s=np.maximum(cpu_total, gpu_total),
        intermediate_bytes=intermediate,
    )


#: Hashable identity of a calibrated step series, as produced by
#: :func:`steps_fingerprint`: one (name, n_tuples, cpu_unit_s, gpu_unit_s,
#: intermediate_bytes_per_tuple) entry per step.
Fingerprint = tuple[tuple[str, int, float, float, float], ...]


def steps_fingerprint(steps: Sequence[StepCost]) -> Fingerprint:
    """Hashable identity of a calibrated step series for cache keying."""
    return tuple(
        (s.name, s.n_tuples, s.cpu_unit_s, s.gpu_unit_s, s.intermediate_bytes_per_tuple)
        for s in steps
    )


class EstimateCache:
    """Memoises cost-model evaluations across schemes, figures and queries.

    Keys combine :func:`steps_fingerprint` with the ratio vector quantised to
    ``decimals`` decimal places (the optimiser grids and Monte Carlo draws
    are already exact at far coarser quanta, so quantisation never merges
    distinct candidates in practice).  Two views are cached independently:

    * :meth:`totals` — per-row ``total_s`` for a whole ratio matrix; missing
      rows are evaluated in one :func:`estimate_series_batch` call.
    * :meth:`totals_mixed` — per-row ``total_s`` for a mixture of step
      series; every row is keyed under its *own* series fingerprint and all
      missing rows (across every fingerprint) are evaluated in one
      :func:`batch_totals_mixed` call.
    * :meth:`estimate` — a full scalar :class:`SeriesEstimate` for one
      vector, evaluated with the reference :func:`estimate_series`.

    Quantisation can merge two ratio vectors that differ beyond ``decimals``
    places into one rounded key, so every stored entry also carries the
    exact (unrounded) row bytes; a lookup whose exact bytes disagree with
    the stored ones is treated as a miss and recomputed rather than served
    a neighbour's total.

    Entries are grouped into per-fingerprint buckets and the buckets form a
    true LRU: every lookup refreshes its step series' recency, and inserting
    past ``max_entries`` rows (a hard bound on the two views combined)
    evicts the least recently used series of the inserting view first.
    Evicting at fingerprint granularity keeps the hot per-row path
    to one plain dict probe (the optimisers issue thousands of them per
    planning call, so per-row recency bookkeeping would cost more than the
    vectorized engine it saves), while a long-lived process-wide cache still
    retires cold workloads instead of periodically dropping everything.
    """

    def __init__(self, max_entries: int = 500_000, decimals: int = 12) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.decimals = decimals
        #: fingerprint -> {quantised row bytes -> (exact row bytes, total
        #: seconds)}, LRU-ordered by fingerprint access.
        self._totals: OrderedDict[
            Fingerprint, dict[bytes, tuple[bytes, float]]
        ] = OrderedDict()
        self._estimates: OrderedDict[
            Fingerprint, dict[bytes, tuple[bytes, SeriesEstimate]]
        ] = OrderedDict()
        self._total_rows = 0
        self._estimate_rows = 0
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def _row_keys(self, matrix: np.ndarray) -> list[tuple[bytes, bytes]]:
        """(quantised key, exact bytes) per row of the matrix.

        The quantised key addresses the bucket; the exact bytes are stored
        alongside each entry and re-verified on every hit, so two vectors
        that collide at ``decimals`` places can never alias each other's
        cached totals.
        """
        quantised = np.round(matrix, self.decimals)
        return [
            (rounded.tobytes(), exact.tobytes())
            for rounded, exact in zip(quantised, matrix)
        ]

    @staticmethod
    def _touch(
        store: "OrderedDict[Fingerprint, dict[bytes, Any]]",
        fingerprint: Fingerprint,
    ) -> dict[bytes, Any]:
        """The fingerprint's bucket, created on demand and marked recent."""
        bucket = store.get(fingerprint)
        if bucket is None:
            bucket = store[fingerprint] = {}
        store.move_to_end(fingerprint)
        return bucket

    def _evict(
        self,
        store: "OrderedDict[Fingerprint, dict[bytes, Any]]",
        rows: int,
        other_rows: int,
    ) -> int:
        """Drop buckets of ``store`` until both views fit the bound.

        ``max_entries`` bounds the *combined* size of the totals and
        estimates views; each insert evicts from its own view, counting the
        sibling view's ``other_rows`` against the budget.

        A runaway series — one whose bucket alone exceeds the budget left by
        the sibling view — is dropped directly.  It is necessarily the
        most-recently-used bucket (only an insert can push a bucket over,
        and inserts touch their bucket first), and evicting LRU-first would
        flush every *fitting* series' perfectly good rows before reaching
        it, leaving the cache cold for everyone because of one oversized
        workload.
        """
        budget = self.max_entries - other_rows
        if rows > budget and store:
            recent = next(reversed(store))
            if len(store[recent]) > budget:
                dropped = store.pop(recent)
                rows -= len(dropped)
        while rows > budget and len(store) > 1:
            _, dropped = store.popitem(last=False)
            rows -= len(dropped)
        if rows > budget and store:
            # The sibling view alone exceeds the whole bound: this view
            # cannot fit any bucket until the sibling shrinks on its own
            # next insert.
            _, dropped = store.popitem(last=False)
            rows -= len(dropped)
        return rows

    def _probe_totals(
        self,
        bucket: dict[bytes, tuple[bytes, float]],
        keys: list[tuple[bytes, bytes]],
        out: np.ndarray,
        offset: int,
    ) -> list[int]:
        """Fill ``out[offset:]`` from the bucket; return the missing rows."""
        missing: list[int] = []
        for i, (key, exact) in enumerate(keys):
            cached = bucket.get(key)
            if cached is None or cached[0] != exact:
                missing.append(i)
            else:
                out[offset + i] = cached[1]
        self.hits += len(keys) - len(missing)
        self.misses += len(missing)
        return missing

    def _store_totals(
        self,
        bucket: dict[bytes, tuple[bytes, float]],
        keys: list[tuple[bytes, bytes]],
        rows: list[int],
        totals: list[float],
    ) -> int:
        """Insert freshly computed rows; return how many keys are new."""
        added = 0
        for i, total in zip(rows, totals):
            key, exact = keys[i]
            if key not in bucket:
                added += 1
            bucket[key] = (exact, total)
        return added

    # ------------------------------------------------------------------
    # Backing-store hooks (no-ops here).  A persistent subclass — see
    # :class:`repro.costmodel.cachestore.PersistentEstimateCache` — overrides
    # these to consult/feed a durable store on the miss path; the base class
    # keeps the exact in-memory behaviour (and counters) it always had.
    # ------------------------------------------------------------------
    def _restore_totals(
        self,
        fingerprint: Fingerprint,
        bucket: dict[bytes, tuple[bytes, float]],
        keys: list[tuple[bytes, bytes]],
        missing: list[int],
        out: np.ndarray,
        offset: int,
    ) -> tuple[list[int], int]:
        """Fill rows from a backing store; return (still missing, rows added)."""
        return missing, 0

    def _persist_totals(
        self,
        fingerprint: Fingerprint,
        keys: list[tuple[bytes, bytes]],
        rows: list[int],
        totals: list[float],
    ) -> None:
        """Offer freshly computed rows to a backing store."""

    def _restore_estimate(
        self, fingerprint: Fingerprint, key: bytes, exact: bytes
    ) -> "SeriesEstimate | None":
        """A stored scalar estimate for the exact row, if the store has one."""
        return None

    def _persist_estimate(
        self, fingerprint: Fingerprint, key: bytes, exact: bytes,
        estimate: SeriesEstimate,
    ) -> None:
        """Offer a freshly computed scalar estimate to a backing store."""

    def totals(
        self, steps: Sequence[StepCost], ratio_matrix: ArrayLike
    ) -> np.ndarray:
        """Per-row ``total_s`` of the batch, reusing previously seen rows."""
        matrix = as_ratio_matrix(ratio_matrix, len(steps))
        fingerprint = steps_fingerprint(steps)
        bucket = self._touch(self._totals, fingerprint)
        keys = self._row_keys(matrix)
        out = np.empty(matrix.shape[0], dtype=np.float64)
        missing = self._probe_totals(bucket, keys, out, 0)
        added = 0
        if missing:
            missing, added = self._restore_totals(
                fingerprint, bucket, keys, missing, out, 0
            )
        if missing:
            fresh = batch_totals(steps, matrix[missing], validate=False)
            for i, total in zip(missing, fresh.tolist()):
                out[i] = total
            added += self._store_totals(bucket, keys, missing, fresh.tolist())
            self._persist_totals(fingerprint, keys, missing, fresh.tolist())
        if added:
            self._total_rows = self._evict(
                self._totals, self._total_rows + added, self._estimate_rows
            )
        return out

    def totals_mixed(
        self, segments: Sequence[tuple[Sequence[StepCost], np.ndarray]]
    ) -> np.ndarray:
        """Per-row totals for rows of *different* step series, in one call.

        Each ``(steps, ratio_matrix)`` segment's rows are keyed under that
        segment's own fingerprint (per-row identity, exactly as if
        :meth:`totals` had been called per segment — hits, misses and LRU
        recency account identically), but all missing rows across every
        fingerprint are evaluated by a single :func:`batch_totals_mixed`
        engine invocation.  Returns the concatenated totals in segment
        order.
        """
        prepared: list[
            tuple[
                Sequence[StepCost],
                np.ndarray,
                Fingerprint,
                dict,
                list[tuple[bytes, bytes]],
            ]
        ] = []
        total_rows = 0
        for steps, ratio_matrix in segments:
            matrix = as_ratio_matrix(ratio_matrix, len(steps))
            fingerprint = steps_fingerprint(steps)
            bucket = self._touch(self._totals, fingerprint)
            prepared.append(
                (steps, matrix, fingerprint, bucket, self._row_keys(matrix))
            )
            total_rows += matrix.shape[0]

        out = np.empty(total_rows, dtype=np.float64)
        missing_segments: list[tuple[Sequence[StepCost], np.ndarray]] = []
        backfill: list[
            tuple[Fingerprint, dict, list[tuple[bytes, bytes]], list[int], int]
        ] = []
        added = 0
        offset = 0
        for steps, matrix, fingerprint, bucket, keys in prepared:
            missing = self._probe_totals(bucket, keys, out, offset)
            if missing:
                missing, restored = self._restore_totals(
                    fingerprint, bucket, keys, missing, out, offset
                )
                added += restored
            if missing:
                missing_segments.append((steps, matrix[missing]))
                backfill.append((fingerprint, bucket, keys, missing, offset))
            offset += matrix.shape[0]

        if missing_segments:
            fresh = batch_totals_mixed(missing_segments, validate=False)
            pos = 0
            for fingerprint, bucket, keys, missing, offset in backfill:
                slice_totals = fresh[pos : pos + len(missing)].tolist()
                pos += len(missing)
                for i, total in zip(missing, slice_totals):
                    out[offset + i] = total
                added += self._store_totals(bucket, keys, missing, slice_totals)
                self._persist_totals(fingerprint, keys, missing, slice_totals)
        if added:
            self._total_rows = self._evict(
                self._totals, self._total_rows + added, self._estimate_rows
            )
        return out

    def estimate(self, steps: Sequence[StepCost], ratios: Sequence[float]) -> SeriesEstimate:
        """Full scalar estimate for one ratio vector, cached.

        Returns a fresh copy per call: :class:`SeriesEstimate` carries mutable
        lists, and handing out the stored instance would let one caller's
        in-place edits corrupt every later hit for the same key.
        """
        matrix = as_ratio_matrix(list(ratios), len(steps))
        fingerprint = steps_fingerprint(steps)
        bucket = self._touch(self._estimates, fingerprint)
        key, exact = self._row_keys(matrix)[0]
        cached = bucket.get(key)
        if cached is not None and cached[0] == exact:
            self.hits += 1
            return cached[1].copy()
        restored = self._restore_estimate(fingerprint, key, exact)
        if restored is not None:
            self.hits += 1
            added = 0 if key in bucket else 1
            bucket[key] = (exact, restored)
            self._estimate_rows = self._evict(
                self._estimates, self._estimate_rows + added, self._total_rows
            )
            return restored.copy()
        self.misses += 1
        estimate = estimate_series(steps, list(ratios))
        added = 0 if key in bucket else 1
        bucket[key] = (exact, estimate)
        self._persist_estimate(fingerprint, key, exact, estimate)
        self._estimate_rows = self._evict(
            self._estimates, self._estimate_rows + added, self._total_rows
        )
        return estimate.copy()

    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def __len__(self) -> int:
        return self._total_rows + self._estimate_rows

    def fingerprints(self) -> list[Fingerprint]:
        """Cached step-series fingerprints, least recently used first."""
        order = list(self._totals)
        order.extend(fp for fp in self._estimates if fp not in self._totals)
        return order

    def clear(self) -> None:
        self._totals.clear()
        self._estimates.clear()
        self._total_rows = 0
        self._estimate_rows = 0
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(entries={len(self)}, hits={self.hits}, "
            f"misses={self.misses}, hit_rate={self.hit_rate:.1%})"
        )


class SharedEstimateCache(EstimateCache):
    """A thread-safe :class:`EstimateCache` for concurrent planning traffic.

    Every public operation (lookups, insertions, hit/miss accounting, clears)
    runs under one re-entrant lock, so the plan service and any number of
    planner threads can hammer a single instance without losing counter
    updates or corrupting the LRU order.  The lock is coarse on purpose: the
    guarded work is a dict scan plus one vectorized engine call, and a coarse
    section keeps ``hits + misses`` exactly equal to the number of rows ever
    requested — the property the concurrency tests pin down.
    """

    def __init__(self, max_entries: int = 500_000, decimals: int = 12) -> None:
        super().__init__(max_entries=max_entries, decimals=decimals)
        self._lock = make_lock("estimate-cache", reentrant=True)

    def totals(
        self, steps: Sequence[StepCost], ratio_matrix: ArrayLike
    ) -> np.ndarray:
        with self._lock:
            return super().totals(steps, ratio_matrix)

    def totals_mixed(
        self, segments: Sequence[tuple[Sequence[StepCost], np.ndarray]]
    ) -> np.ndarray:
        with self._lock:
            return super().totals_mixed(segments)

    def estimate(self, steps: Sequence[StepCost], ratios: Sequence[float]) -> SeriesEstimate:
        with self._lock:
            return super().estimate(steps, ratios)

    def clear(self) -> None:
        with self._lock:
            super().clear()

    def __len__(self) -> int:
        with self._lock:
            return super().__len__()

    def stats(self) -> dict[str, float | int]:
        """Consistent snapshot of the cache counters."""
        with self._lock:
            return {
                "entries": super().__len__(),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hit_rate,
            }

    @property
    def hit_rate(self) -> float:
        # The base property reads two counters; unlocked, a concurrent
        # ``estimate`` between the two reads can yield a rate > 1.0.
        with self._lock:
            return super().hit_rate

    def fingerprints(self) -> list[Fingerprint]:
        with self._lock:
            return super().fingerprints()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            return super().__repr__()


#: Lazily created process-wide cache shared by planners, optimisers and the
#: plan service, so repeated planning of similar workloads warms up across
#: call sites instead of each caller paying for a private throwaway cache.
_SHARED_CACHE: SharedEstimateCache | None = None
_SHARED_CACHE_LOCK = make_lock("shared-cache-init")

#: Default bound of the process-wide cache; smaller than a private cache's
#: default because it lives for the whole process.
SHARED_CACHE_MAX_ENTRIES = 262_144


def shared_estimate_cache() -> SharedEstimateCache:
    """The process-wide :class:`SharedEstimateCache` (created on first use)."""
    global _SHARED_CACHE
    with _SHARED_CACHE_LOCK:
        if _SHARED_CACHE is None:
            _SHARED_CACHE = SharedEstimateCache(max_entries=SHARED_CACHE_MAX_ENTRIES)
        return _SHARED_CACHE


def reset_shared_estimate_cache() -> SharedEstimateCache:
    """Replace the process-wide cache with a fresh one (mainly for tests)."""
    global _SHARED_CACHE
    with _SHARED_CACHE_LOCK:
        _SHARED_CACHE = SharedEstimateCache(max_entries=SHARED_CACHE_MAX_ENTRIES)
        return _SHARED_CACHE


def _reset_shared_cache_after_fork() -> None:
    # A forked child inherits the singleton and its init lock as raw memory:
    # the lock may be held by a parent thread that no longer exists, and the
    # cache's own lock likewise.  Dropping both makes first use in the child
    # rebuild a private cache instead of deadlocking on ghosts.
    global _SHARED_CACHE, _SHARED_CACHE_LOCK
    _SHARED_CACHE_LOCK = make_lock("shared-cache-init")
    _SHARED_CACHE = None


os.register_at_fork(after_in_child=_reset_shared_cache_after_fork)
