"""repro — reproduction of "Revisiting Co-Processing for Hash Joins on the
Coupled CPU-GPU Architecture" (He, Lu, He — VLDB 2013).

The package implements the paper's fine-grained CPU-GPU co-processing schemes
for hash joins (off-loading, data dividing, pipelined execution), the simple
and radix-partitioned hash joins they operate on, the cost model that picks
workload ratios automatically, and a calibrated simulator of the coupled
AMD APU / emulated discrete architecture the paper evaluates on.

Quick start::

    from repro import JoinWorkload, run_join

    workload = JoinWorkload.uniform(build_tuples=1_000_000, probe_tuples=1_000_000)
    timing = run_join("PHJ", "PL", workload.build, workload.probe)
    print(timing.total_s, timing.result.match_count)
"""

from .core import (
    BasicUnitScheduler,
    CoProcessingExecutor,
    HashJoinVariant,
    JoinPlanner,
    JoinTiming,
    Scheme,
    VariantConfig,
    run_all_variants,
    run_join,
)
from .costmodel import (
    CalibrationTable,
    EstimateCache,
    StepCost,
    estimate_series,
    estimate_series_batch,
    optimize_dd,
    optimize_ol,
    optimize_pl,
)
from .data import DatasetSpec, JoinWorkload, Relation
from .hardware import Machine, coupled_machine, discrete_machine, table1_rows
from .hashjoin import (
    HashJoinConfig,
    HashTable,
    JoinResult,
    PartitionConfig,
    PartitionedHashJoin,
    SimpleHashJoin,
)
from .service import (
    PlanRequest,
    PlanResponse,
    PlanService,
    SharedEstimateCache,
    shared_estimate_cache,
)

__version__ = "1.1.0"

__all__ = [
    "BasicUnitScheduler",
    "CalibrationTable",
    "CoProcessingExecutor",
    "DatasetSpec",
    "EstimateCache",
    "HashJoinConfig",
    "HashJoinVariant",
    "HashTable",
    "JoinPlanner",
    "JoinResult",
    "JoinTiming",
    "JoinWorkload",
    "Machine",
    "PartitionConfig",
    "PartitionedHashJoin",
    "PlanRequest",
    "PlanResponse",
    "PlanService",
    "Relation",
    "Scheme",
    "SharedEstimateCache",
    "SimpleHashJoin",
    "StepCost",
    "VariantConfig",
    "coupled_machine",
    "discrete_machine",
    "estimate_series",
    "estimate_series_batch",
    "optimize_dd",
    "optimize_ol",
    "optimize_pl",
    "run_all_variants",
    "run_join",
    "shared_estimate_cache",
    "table1_rows",
    "__version__",
]
