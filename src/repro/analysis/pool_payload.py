"""Pool-payload checker: work shipped to a process pool must pickle.

``ProcessPoolExecutor.submit``/``.map`` pickle the callable and every
argument into the worker process.  Lambdas, nested ``def``\\ s, and bound
methods pickle *by reference to a qualified name* — lambdas have none,
nested functions aren't importable, and bound methods drag their whole
instance along (or fail outright).  PR 8 established the working contract
informally: ``PairPool`` chunk workers are module-level functions taking
tuples of primitives.  This pass makes the contract checkable.

Pool-likeness is **construction-based**, not name-based: an expression is a
process pool if it was assigned from ``ProcessPoolExecutor(...)`` (locally
or on ``self``), returned by a method that does so, or is an instance of a
class owning one (``PairPool``).  ``ThreadPoolExecutor`` never pickles and
is deliberately not matched.

The callable flowing into ``submit``/``map`` is then classified:

* module-level function (same module or resolved through the repo graph) —
  fine;
* lambda / nested ``def`` / ``self.method`` or other attribute access —
  finding at the call site;
* a *parameter* of the enclosing function — the pass chases callers by name
  through the project (depth ≤ 2: ``PairPool.map(fn)`` ← ``_run_pairs``
  ← ``join_partitioned``) and classifies what they pass;
* anything else — silently fine.  The pass under-approximates: every
  finding it emits is a guaranteed pickle failure, not a maybe.

Lambdas anywhere in the payload arguments are flagged too — they fail in
``pickle`` before the pool even dispatches.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from .core import Checker, Finding, Project, SourceFile, dotted_name, register
from .graph import ModuleGraph, ModuleInfo

__all__ = ["PoolPayloadChecker"]

_POOL_FACTORIES = frozenset(
    {"concurrent.futures.ProcessPoolExecutor", "ProcessPoolExecutor"}
)
_DISPATCH_METHODS = frozenset({"submit", "map"})
_MAX_CHASE_DEPTH = 2


def _is_pool_construction(
    graph: ModuleGraph, info: ModuleInfo, node: ast.expr
) -> bool:
    if not isinstance(node, ast.Call):
        return False
    dotted = dotted_name(node.func)
    if dotted is None:
        return False
    target = graph.resolve_target(info, dotted)
    return target in _POOL_FACTORIES or dotted in _POOL_FACTORIES


@dataclass(frozen=True)
class _FunctionCtx:
    info: ModuleInfo
    cls_name: str  # "" for module-level functions
    fn: ast.FunctionDef | ast.AsyncFunctionDef


class PoolPayloadChecker(Checker):
    id = "pool-payload"
    description = (
        "callables and payloads dispatched to a ProcessPoolExecutor-backed "
        "pool must be module-level functions and picklable-by-construction "
        "values (no lambdas, nested defs, or bound methods)"
    )
    severity = "error"

    def check_project(self, project: Project) -> list[Finding]:
        graph = project.graph()
        self._graph = graph
        # Phase 1: which classes own a process pool, and which of their
        # methods return one (``_ensure_executor``-style accessors).
        self._pool_classes: set[tuple[str, str]] = set()
        self._pool_returning: set[tuple[str, str, str]] = set()
        for info in graph.iter_modules():
            for cls in info.classes.values():
                self._classify_class(graph, info, cls)

        # Phase 2: every function in every context, scanned for dispatches.
        self._contexts: list[_FunctionCtx] = []
        for info in graph.iter_modules():
            for fn in info.functions.values():
                self._contexts.append(_FunctionCtx(info, "", fn))
            for cls in info.classes.values():
                for node in cls.body:
                    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._contexts.append(_FunctionCtx(info, cls.name, node))

        findings: list[Finding] = []
        for ctx in self._contexts:
            findings.extend(self._scan_function(ctx))
        return findings

    # ------------------------------------------------------------------
    # Phase 1: pool-owning classes.
    # ------------------------------------------------------------------
    def _classify_class(
        self, graph: ModuleGraph, info: ModuleInfo, cls: ast.ClassDef
    ) -> None:
        pool_attrs: set[str] = set()
        for node in ast.walk(cls):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                value = node.value
                if value is None or not _is_pool_construction(graph, info, value):
                    continue
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        pool_attrs.add(target.attr)
        if not pool_attrs:
            return
        self._pool_classes.add((info.name, cls.name))
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for node in ast.walk(method):
                if isinstance(node, ast.Return) and node.value is not None:
                    value = node.value
                    if (
                        isinstance(value, ast.Attribute)
                        and isinstance(value.value, ast.Name)
                        and value.value.id == "self"
                        and value.attr in pool_attrs
                    ) or _is_pool_construction(graph, info, value):
                        self._pool_returning.add((info.name, cls.name, method.name))

    # ------------------------------------------------------------------
    # Phase 2: dispatch scanning.
    # ------------------------------------------------------------------
    def _scan_function(self, ctx: _FunctionCtx) -> list[Finding]:
        graph = self._graph
        info = ctx.info
        # Locals assigned a pool construction or a pool-class instance.
        pool_locals: set[str] = set()
        pool_class_locals: set[str] = set()
        for node in ast.walk(ctx.fn):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                value = node.value
                if value is None:
                    continue
                is_pool = _is_pool_construction(graph, info, value)
                is_instance = self._is_pool_class_value(info, value)
                if not (is_pool or is_instance):
                    continue
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        (pool_locals if is_pool else pool_class_locals).add(
                            target.id
                        )
        # Annotated parameters of pool-class type count as instances too.
        for arg in list(ctx.fn.args.args) + list(ctx.fn.args.kwonlyargs):
            annotation = arg.annotation
            if annotation is not None and self._is_pool_class_name(
                info, annotation
            ):
                pool_class_locals.add(arg.arg)

        findings: list[Finding] = []
        for node in ast.walk(ctx.fn):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in _DISPATCH_METHODS:
                continue
            if not self._is_pool_receiver(
                ctx, func.value, pool_locals, pool_class_locals
            ):
                continue
            findings.extend(self._check_dispatch(ctx, node))
        return findings

    def _is_pool_class_value(self, info: ModuleInfo, value: ast.expr) -> bool:
        if not isinstance(value, ast.Call):
            return False
        return self._is_pool_class_name(info, value.func) or (
            self._returns_pool_class(info, value)
        )

    def _is_pool_class_name(self, info: ModuleInfo, node: ast.expr) -> bool:
        dotted = dotted_name(node)
        if dotted is None:
            # ``"PairPool"`` string annotations (forward refs).
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                dotted = node.value
            else:
                return False
        resolved = self._graph.resolve_symbol(info, dotted)
        if resolved is None:
            return False
        owner, sym = resolved
        return (
            isinstance(sym, ast.ClassDef)
            and (owner.name, sym.name) in self._pool_classes
        )

    def _returns_pool_class(self, info: ModuleInfo, call: ast.Call) -> bool:
        """``shared_pair_pool()``-style factories returning a pool class."""
        dotted = dotted_name(call.func)
        if dotted is None:
            return False
        resolved = self._graph.resolve_symbol(info, dotted)
        if resolved is None:
            return False
        owner, sym = resolved
        if not isinstance(sym, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return False
        returns = sym.returns
        return returns is not None and self._is_pool_class_name(owner, returns)

    def _is_pool_receiver(
        self,
        ctx: _FunctionCtx,
        receiver: ast.expr,
        pool_locals: set[str],
        pool_class_locals: set[str],
    ) -> bool:
        info = ctx.info
        if isinstance(receiver, ast.Name):
            return receiver.id in pool_locals or receiver.id in pool_class_locals
        if isinstance(receiver, ast.Attribute) and isinstance(
            receiver.value, ast.Name
        ):
            if receiver.value.id == "self" and ctx.cls_name:
                # self._executor.map(...) inside a pool-owning class.
                return (info.name, ctx.cls_name) in self._pool_classes
        if isinstance(receiver, ast.Call):
            # self._ensure_executor().map(...) — method returning the pool.
            func = receiver.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and ctx.cls_name
            ):
                return (
                    info.name,
                    ctx.cls_name,
                    func.attr,
                ) in self._pool_returning
            if _is_pool_construction(self._graph, info, receiver):
                return True
        return False

    # ------------------------------------------------------------------
    # Callable / payload classification.
    # ------------------------------------------------------------------
    def _check_dispatch(self, ctx: _FunctionCtx, call: ast.Call) -> list[Finding]:
        findings: list[Finding] = []
        args = list(call.args)
        if not args:
            return findings
        # First positional arg is the callable for both submit and map.
        findings.extend(self._check_callable(ctx, call, args[0], depth=0))
        # Any lambda in the remaining payload fails to pickle outright.
        for arg in args[1:]:
            for node in ast.walk(arg):
                if isinstance(node, ast.Lambda):
                    findings.append(
                        self._payload_finding(
                            ctx, node, "a lambda in the payload"
                        )
                    )
        return findings

    def _check_callable(
        self, ctx: _FunctionCtx, call: ast.Call, arg: ast.expr, depth: int
    ) -> list[Finding]:
        info = ctx.info
        if isinstance(arg, ast.Lambda):
            return [
                self._callable_finding(
                    ctx, arg, "a lambda", "lambdas have no qualified name"
                )
            ]
        if isinstance(arg, ast.Attribute):
            return [
                self._callable_finding(
                    ctx,
                    arg,
                    f"the bound method `{ast.unparse(arg)}`",
                    "bound methods pickle their whole instance (or fail)",
                )
            ]
        if not isinstance(arg, ast.Name):
            return []  # unknown shape: under-approximate
        name = arg.id
        # Nested def in the same function?
        for node in ast.walk(ctx.fn):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node is not ctx.fn
                and node.name == name
            ):
                return [
                    self._callable_finding(
                        ctx,
                        arg,
                        f"the nested function `{name}`",
                        "nested functions are not importable by the worker",
                    )
                ]
        # Module-level function (local or resolved through an import)?
        resolved = self._graph.resolve_symbol(info, name)
        if resolved is not None and isinstance(
            resolved[1], (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            return []
        # A parameter of the enclosing function: chase callers.
        params = [a.arg for a in ctx.fn.args.args]
        if name in params and depth < _MAX_CHASE_DEPTH:
            return self._chase_parameter(ctx, name, params.index(name), depth)
        return []

    def _chase_parameter(
        self, ctx: _FunctionCtx, param: str, position: int, depth: int
    ) -> list[Finding]:
        """Classify what callers pass for a callable parameter.

        Callers are found by name across the project: plain calls to a
        module-level function, or ``<recv>.method(...)`` for methods (the
        ``self`` slot shifts positional args by one).  Unresolvable callers
        are skipped — under-approximation again.
        """
        findings: list[Finding] = []
        is_method = bool(ctx.cls_name)
        arg_index = position - 1 if is_method else position
        if arg_index < 0:
            return findings
        for caller_ctx in self._contexts:
            for node in ast.walk(caller_ctx.fn):
                if not isinstance(node, ast.Call):
                    continue
                if not self._calls_target(caller_ctx, node, ctx, is_method):
                    continue
                value = self._argument_at(node, arg_index, param)
                if value is None:
                    continue
                findings.extend(
                    self._check_callable(caller_ctx, node, value, depth + 1)
                )
        return findings

    def _calls_target(
        self,
        caller_ctx: _FunctionCtx,
        call: ast.Call,
        target_ctx: _FunctionCtx,
        is_method: bool,
    ) -> bool:
        func = call.func
        if is_method:
            # ``<recv>.map(...)`` only counts as a call of ``Cls.map`` when
            # the receiver shows evidence of being a ``Cls`` instance —
            # matching on the method name alone would drag in every
            # ``.map()`` in the project (ThreadPoolExecutor, builtins).
            if not (
                isinstance(func, ast.Attribute)
                and func.attr == target_ctx.fn.name
            ):
                return False
            return self._receiver_is_instance(
                caller_ctx, func.value, target_ctx
            )
        dotted = dotted_name(func)
        if dotted is None:
            return False
        resolved = self._graph.resolve_symbol(caller_ctx.info, dotted)
        return resolved is not None and resolved[1] is target_ctx.fn

    def _receiver_is_instance(
        self,
        caller_ctx: _FunctionCtx,
        receiver: ast.expr,
        target_ctx: _FunctionCtx,
    ) -> bool:
        target_cls = target_ctx.cls_name
        info = caller_ctx.info
        if (
            isinstance(receiver, ast.Name)
            and receiver.id == "self"
            and caller_ctx.cls_name == target_cls
            and caller_ctx.info is target_ctx.info
        ):
            return True
        def names_target_class(node: ast.expr) -> bool:
            dotted = dotted_name(node)
            if dotted is None and isinstance(node, ast.Constant) and isinstance(
                node.value, str
            ):
                dotted = node.value
            if dotted is None:
                return False
            resolved = self._graph.resolve_symbol(info, dotted)
            return (
                resolved is not None
                and resolved[0] is target_ctx.info
                and isinstance(resolved[1], ast.ClassDef)
                and resolved[1].name == target_cls
            )
        if not isinstance(receiver, ast.Name):
            return False
        name = receiver.id
        # Annotated parameter of the target class.
        for arg in list(caller_ctx.fn.args.args) + list(
            caller_ctx.fn.args.kwonlyargs
        ):
            if arg.arg == name and arg.annotation is not None:
                if names_target_class(arg.annotation):
                    return True
        # Local assigned from the class constructor or an annotated factory.
        for node in ast.walk(caller_ctx.fn):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            value = node.value
            if not isinstance(value, ast.Call):
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            if not any(
                isinstance(t, ast.Name) and t.id == name for t in targets
            ):
                continue
            if names_target_class(value.func):
                return True
            factory = dotted_name(value.func)
            if factory is not None:
                resolved = self._graph.resolve_symbol(info, factory)
                if resolved is not None and isinstance(
                    resolved[1], (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    returns = resolved[1].returns
                    if returns is not None and names_target_class(returns):
                        return True
        return False

    @staticmethod
    def _argument_at(
        call: ast.Call, index: int, param: str
    ) -> ast.expr | None:
        for kw in call.keywords:
            if kw.arg == param:
                return kw.value
        if index < len(call.args):
            return call.args[index]
        return None

    # ------------------------------------------------------------------
    def _callable_finding(
        self, ctx: _FunctionCtx, node: ast.AST, what: str, why: str
    ) -> Finding:
        context = (
            f"{ctx.cls_name}.{ctx.fn.name}" if ctx.cls_name else ctx.fn.name
        )
        return self.finding(
            ctx.info.source,
            node,
            f"{what} is dispatched to a process pool in `{context}`; {why} — "
            f"hoist it to a module-level function",
            key_context=f"{context}.callable",
        )

    def _payload_finding(
        self, ctx: _FunctionCtx, node: ast.AST, what: str
    ) -> Finding:
        context = (
            f"{ctx.cls_name}.{ctx.fn.name}" if ctx.cls_name else ctx.fn.name
        )
        return self.finding(
            ctx.info.source,
            node,
            f"{what} is shipped to a process pool in `{context}`; lambdas "
            f"cannot pickle — precompute the value or pass a module-level "
            f"function",
            key_context=f"{context}.payload",
        )


register(PoolPayloadChecker)
