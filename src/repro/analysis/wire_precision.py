"""Wire-precision checker for the service protocol layer.

The protocol's contract (``service/protocol.py``) is that floats cross the
wire **bit-exact**: ``json`` serialises Python floats via ``repr`` and
parses them back to the identical IEEE-754 value, so the client's
``PlanResult`` estimate equals the server's to the last ulp — which is what
lets the protocol tests compare with ``==`` instead of tolerances, and what
keeps the service's answers interchangeable with in-process calls.

That contract dies quietly the moment someone "tidies up" a wire value with
``round(x, 6)``, ``"%.6f" % x``, an ``f"{x:.4g}"``, or routes a float field
through ``str()`` before packing it.  (``PlanResponse.to_dict`` *does*
round — deliberately, for CLI display — which is exactly why the distinction
needs a checker rather than a grep.)

Scope: every function in a module named ``protocol.py``, plus any function
anywhere whose name marks it as wire-serialisation (``*_to_wire``,
``to_wire``, ``envelope``, ``to_json``, ``to_bytes``).  Inside that scope
the checker flags:

* ``round(...)`` calls — rounding is display logic, not wire logic;
* ``%``-formatting or ``str.format``/f-strings with a float precision spec
  applied to values (``%f``/``%g``/``%e`` or ``:.Nf``-style specs);
* ``str(x)`` where ``x`` is a recognised float field (``*_s`` timings,
  ``ratios``, ``total_s``, ``intermediate_bytes``, ``delta``...) — JSON
  should carry the float itself, not a string of it.

The full-precision idiom the codebase uses — a bare ``float(x)`` cast and
letting ``json`` do the repr — is untouched.
"""

from __future__ import annotations

import ast
import re

from .core import Checker, Finding, SourceFile, register

__all__ = ["WirePrecisionChecker"]

#: Function names treated as wire-serialisation scope in any module.
_WIRE_NAME_RE = re.compile(r"(^|_)to_wire$|^envelope$|^to_json$|^to_bytes$")
#: ``%``-format specs that truncate float precision.
_PERCENT_FLOAT_RE = re.compile(r"%[-+ #0-9.]*[efgEFG]")
#: ``str.format``/f-string specs that truncate float precision.
_SPEC_FLOAT_RE = re.compile(r"\.\d+[efgEFG%]?$|[efgEFG%]$")
#: Attribute / name suffixes recognised as float wire fields.
_FLOAT_FIELDS = {
    "ratios",
    "total_s",
    "cpu_total_s",
    "gpu_total_s",
    "intermediate_bytes",
    "delta",
    "queued_s",
    "timeout_s",
}


def _is_wire_module(source: SourceFile) -> bool:
    return source.rel.rsplit("/", 1)[-1] == "protocol.py"


def _is_wire_function(name: str) -> bool:
    return bool(_WIRE_NAME_RE.search(name))


def _float_field_name(node: ast.expr) -> str | None:
    """The field name when an expression reads a known float wire field."""
    if isinstance(node, ast.Subscript):
        return _float_field_name(node.value)
    name: str | None = None
    if isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Name):
        name = node.id
    if name is None:
        return None
    if name in _FLOAT_FIELDS or name.endswith("_s"):
        return name
    return None


@register
class WirePrecisionChecker(Checker):
    id = "wire-precision"
    description = (
        "wire-serialisation code (protocol.py, *_to_wire/envelope/to_json "
        "functions) must not round, %-format, or str() float fields — "
        "floats cross the wire bit-exact via json repr"
    )
    severity = "error"

    def check_file(self, source: SourceFile) -> list[Finding]:
        module_scoped = _is_wire_module(source)
        findings: list[Finding] = []
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if module_scoped or _is_wire_function(node.name):
                    self._scan_function(source, node, findings)
        return findings

    # ------------------------------------------------------------------
    def _scan_function(
        self,
        source: SourceFile,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        findings: list[Finding],
    ) -> None:
        stack: list[ast.AST] = list(ast.iter_child_nodes(fn))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested defs are scoped on their own names
            self._scan_node(source, fn.name, node, findings)
            stack.extend(ast.iter_child_nodes(node))

    def _scan_node(
        self,
        source: SourceFile,
        fn_name: str,
        node: ast.AST,
        findings: list[Finding],
    ) -> None:
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id == "round":
                findings.append(
                    self.finding(
                        source,
                        node,
                        f"`round(...)` in wire function `{fn_name}` truncates "
                        "float precision; send the raw float — json repr "
                        "round-trips it bit-exactly",
                        key_context=f"{fn_name}.round",
                    )
                )
            elif isinstance(node.func, ast.Name) and node.func.id == "str":
                for arg in node.args:
                    field = _float_field_name(arg)
                    if field is not None:
                        findings.append(
                            self.finding(
                                source,
                                node,
                                f"`str({field})` in wire function "
                                f"`{fn_name}` sends a float field as a "
                                "string; put the float itself in the "
                                "payload",
                                key_context=f"{fn_name}.str.{field}",
                            )
                        )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "format"
                and isinstance(node.func.value, ast.Constant)
                and isinstance(node.func.value.value, str)
                and _PERCENT_FLOAT_RE.search(node.func.value.value)
                is None  # %-specs handled below; look for {:.Nf}
                and re.search(r"\{[^{}]*:[^{}]*\.\d+[efgEFG]", node.func.value.value)
            ):
                findings.append(
                    self.finding(
                        source,
                        node,
                        f"`str.format` with a float precision spec in wire "
                        f"function `{fn_name}`; send the raw float",
                        key_context=f"{fn_name}.format",
                    )
                )
        elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
            left = node.left
            if (
                isinstance(left, ast.Constant)
                and isinstance(left.value, str)
                and _PERCENT_FLOAT_RE.search(left.value)
            ):
                findings.append(
                    self.finding(
                        source,
                        node,
                        f"%-formatting with a float spec in wire function "
                        f"`{fn_name}` truncates precision; send the raw "
                        "float",
                        key_context=f"{fn_name}.percent-format",
                    )
                )
        elif isinstance(node, ast.FormattedValue):
            spec = node.format_spec
            if spec is not None:
                for part in ast.walk(spec):
                    if (
                        isinstance(part, ast.Constant)
                        and isinstance(part.value, str)
                        and _SPEC_FLOAT_RE.search(part.value)
                    ):
                        findings.append(
                            self.finding(
                                source,
                                node,
                                f"f-string float precision spec in wire "
                                f"function `{fn_name}`; send the raw float",
                                key_context=f"{fn_name}.fstring-format",
                            )
                        )
                        break
