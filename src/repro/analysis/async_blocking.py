"""Async-blocking checker for the asyncio serving tier.

``service/server.py`` and ``service/scheduler.py`` run a single event loop;
one synchronous sleep or blocking read inside an ``async def`` stalls every
in-flight request — micro-batching amplifies the damage because a stalled
scheduler tick delays whole batches, not single queries.  These bugs are
invisible under light test load and brutal in production, which makes them
a textbook static-analysis target.

Flags, inside any ``async def`` body (nested synchronous ``def``s reset the
context — they may be shipped to a thread pool):

* ``time.sleep(...)`` — use ``await asyncio.sleep(...)``.
* ``socket.socket``/``socket.create_connection`` and friends — use asyncio
  streams.
* ``open(...)``/``pathlib .read_text/.write_text/.read_bytes/.write_bytes``
  — do file IO before entering the loop or via a thread executor.
* ``subprocess.run``/``subprocess.Popen``/``os.system``/``subprocess
  .check_*`` — use ``asyncio.create_subprocess_exec``.
* ``requests.get/post/...`` and ``urllib.request.urlopen`` — blocking HTTP.

The checker is scope-aware, not merely textual: the same calls in ordinary
synchronous helpers of the same module are fine.
"""

from __future__ import annotations

import ast

from .core import Checker, Finding, SourceFile, dotted_name, register

__all__ = ["AsyncBlockingChecker"]

#: Fully-dotted call names that block the event loop.
_BLOCKING_CALLS = {
    "time.sleep": "use `await asyncio.sleep(...)`",
    "socket.socket": "use asyncio streams (`asyncio.open_connection`)",
    "socket.create_connection": "use `asyncio.open_connection`",
    "socket.getaddrinfo": "use `loop.getaddrinfo`",
    "subprocess.run": "use `asyncio.create_subprocess_exec`",
    "subprocess.call": "use `asyncio.create_subprocess_exec`",
    "subprocess.check_call": "use `asyncio.create_subprocess_exec`",
    "subprocess.check_output": "use `asyncio.create_subprocess_exec`",
    "subprocess.Popen": "use `asyncio.create_subprocess_exec`",
    "os.system": "use `asyncio.create_subprocess_shell`",
    "urllib.request.urlopen": "use an async HTTP client or a thread executor",
    "requests.get": "blocking HTTP stalls the loop; use a thread executor",
    "requests.post": "blocking HTTP stalls the loop; use a thread executor",
    "requests.request": "blocking HTTP stalls the loop; use a thread executor",
}
#: Bare-name calls that block.
_BLOCKING_NAMES = {
    "open": "do file IO outside the loop or via `loop.run_in_executor`",
    "input": "blocking terminal read inside the event loop",
}
#: Method names that block regardless of receiver (futures/threads/files).
_BLOCKING_METHODS = {
    "read_text": "pathlib IO blocks the loop; move it off the async path",
    "write_text": "pathlib IO blocks the loop; move it off the async path",
    "read_bytes": "pathlib IO blocks the loop; move it off the async path",
    "write_bytes": "pathlib IO blocks the loop; move it off the async path",
}


@register
class AsyncBlockingChecker(Checker):
    id = "async-blocking"
    description = (
        "no blocking calls (time.sleep, sync sockets/file IO, subprocess) "
        "inside async def bodies of the serving tier"
    )
    severity = "error"

    def check_file(self, source: SourceFile) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(source.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                self._scan_async(source, node, findings)
        return findings

    # ------------------------------------------------------------------
    def _scan_async(
        self,
        source: SourceFile,
        fn: ast.AsyncFunctionDef,
        findings: list[Finding],
    ) -> None:
        stack: list[ast.AST] = list(ast.iter_child_nodes(fn))
        while stack:
            node = stack.pop()
            # A nested *sync* def is its own world (may run in an executor);
            # a nested async def is scanned when ast.walk reaches it.
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(node, ast.Call):
                hit = self._classify(node)
                if hit is not None:
                    label, advice = hit
                    findings.append(
                        self.finding(
                            source,
                            node,
                            f"blocking call `{label}` inside `async def "
                            f"{fn.name}`; {advice}",
                            key_context=f"{fn.name}.{label}",
                        )
                    )
            stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _classify(call: ast.Call) -> tuple[str, str] | None:
        name = dotted_name(call.func)
        if name is not None:
            if name in _BLOCKING_CALLS:
                return name, _BLOCKING_CALLS[name]
            if name in _BLOCKING_NAMES:
                return name, _BLOCKING_NAMES[name]
        if isinstance(call.func, ast.Attribute):
            attr = call.func.attr
            if attr in _BLOCKING_METHODS:
                return f".{attr}", _BLOCKING_METHODS[attr]
        return None
