"""Lock-discipline checker: a lightweight static race detector.

The shared serving state — :class:`~repro.costmodel.batch.SharedEstimateCache`,
:class:`~repro.service.service.PlanService`'s counters — is guarded by
``threading`` locks by *convention*: every public entry point wraps its work
in ``with self._lock:``.  Nothing enforced that convention, so a new public
method (or an inherited one the thread-safe subclass forgot to override)
could read half-updated counters without anyone noticing.

The checker works per class:

1. **Lock discovery** — a class *owns* a lock when one of its methods
   assigns ``self.<attr> = threading.Lock()`` / ``threading.RLock()`` or
   ``self.<attr> = make_lock(...)`` (the shared helper in
   :mod:`repro.locking`).  Classes without a lock are skipped entirely —
   single-threaded classes are free to do whatever they like.
2. **Guard inference** — every ``self.X`` read or write that appears inside
   a ``with self.<lock>:`` body (in any of the class's own methods) marks
   ``X`` as lock-guarded.  The guarded set is *inferred*, not declared: the
   locked bodies are the ground truth of what the author considers shared.
3. **Violation scan** — every *public* method of the class's effective
   surface (its own methods plus any method inherited from a same-file base
   class and not overridden) is walked; an access to a guarded attribute
   outside any ``with self.<lock>:`` block is a finding.  This catches the
   classic thread-safe-subclass hole: a base-class property like
   ``hit_rate`` that reads two counters unlocked and is *not* shadowed by a
   locked override.

Conventions the checker understands (and that the codebase follows):

* ``__init__``/``__post_init__``/``__new__`` are exempt — construction
  happens-before publication to other threads.
* Private methods (leading ``_``, not dunder) are exempt: the codebase
  convention is *public surface takes the lock, private helpers assume the
  caller holds it* (``EstimateCache._evict`` is only ever reached from
  locked wrappers).  Dunder methods are public surface (``__len__`` on a
  shared cache is called by arbitrary threads) and are checked.
* Method *calls* (``self.foo(...)``) are dispatch, not state access, and
  are not treated as attribute reads.

ISSUE 9 adds a second, simpler rule: **raw lock construction**.  Every
lock must be created through :func:`repro.locking.make_lock` so it carries
a name — the node id the static ``lock-order`` pass and the runtime
sanitizer file it under.  A direct ``threading.Lock()`` / ``RLock()`` /
``Condition`` / ``Semaphore`` call anywhere outside the module that
*defines* ``make_lock`` is a finding: that lock would be invisible to the
whole-program analysis.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .core import (
    Checker,
    Finding,
    SourceFile,
    call_keywords,
    is_self_attribute,
    iter_methods,
    register,
)

__all__ = ["LockDisciplineChecker"]

#: Call targets recognised as creating a lock.
_LOCK_FACTORIES = {"Lock", "RLock", "make_lock"}
#: Raw ``threading`` constructors that must go through ``make_lock``.
_RAW_LOCK_NAMES = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
#: Methods exempt from the violation scan (construction happens-before).
_CONSTRUCTION = {"__init__", "__post_init__", "__new__", "__init_subclass__"}


def _is_lock_factory(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id in _LOCK_FACTORIES
    if isinstance(func, ast.Attribute):
        return func.attr in _LOCK_FACTORIES
    return False


def _locked_attr(item: ast.withitem) -> str | None:
    """The lock attribute name when a with-item is ``self.<attr>``."""
    return is_self_attribute(item.context_expr)


@dataclass
class _ClassInfo:
    node: ast.ClassDef
    lock_attrs: set[str] = field(default_factory=set)
    guarded: set[str] = field(default_factory=set)
    method_names: set[str] = field(default_factory=set)
    base_names: list[str] = field(default_factory=list)


def _collect_class(node: ast.ClassDef) -> _ClassInfo:
    info = _ClassInfo(node=node)
    for base in node.bases:
        if isinstance(base, ast.Name):
            info.base_names.append(base.id)
    for method in iter_methods(node):
        info.method_names.add(method.name)
        for stmt in ast.walk(method):
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                )
                value = stmt.value
                if isinstance(value, ast.Call) and _is_lock_factory(value):
                    for target in targets:
                        attr = is_self_attribute(target)
                        if attr is not None:
                            info.lock_attrs.add(attr)
    if not info.lock_attrs:
        return info
    for method in iter_methods(node):
        for stmt in ast.walk(method):
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                locks = {_locked_attr(item) for item in stmt.items}
                if locks & info.lock_attrs:
                    _collect_guarded(stmt, info)
    info.guarded -= info.lock_attrs
    info.guarded -= info.method_names
    return info


def _collect_guarded(with_stmt: ast.With | ast.AsyncWith, info: _ClassInfo) -> None:
    call_funcs = {
        id(node.func)
        for body_stmt in with_stmt.body
        for node in ast.walk(body_stmt)
        if isinstance(node, ast.Call)
    }
    for body_stmt in with_stmt.body:
        for node in ast.walk(body_stmt):
            attr = is_self_attribute(node)
            if attr is not None and id(node) not in call_funcs:
                info.guarded.add(attr)


class _MethodScanner(ast.NodeVisitor):
    """Find guarded-attribute accesses outside any lock in one method."""

    def __init__(self, lock_attrs: set[str], guarded: set[str]) -> None:
        self.lock_attrs = lock_attrs
        self.guarded = guarded
        self.lock_depth = 0
        self.hits: list[tuple[ast.Attribute, str]] = []
        self._call_funcs: set[int] = set()

    def scan(self, method: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self._call_funcs = {
            id(node.func)
            for node in ast.walk(method)
            if isinstance(node, ast.Call)
        }
        for stmt in method.body:
            self.visit(stmt)

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        locks = {_locked_attr(item) for item in node.items}
        takes_lock = bool(locks & self.lock_attrs)
        for item in node.items:
            self.visit(item)
        if takes_lock:
            self.lock_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        if takes_lock:
            self.lock_depth -= 1

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = is_self_attribute(node)
        if (
            attr is not None
            and attr in self.guarded
            and self.lock_depth == 0
            and id(node) not in self._call_funcs
        ):
            self.hits.append((node, attr))
        self.generic_visit(node)


def _is_public_surface(name: str) -> bool:
    if name in _CONSTRUCTION:
        return False
    if name.startswith("__") and name.endswith("__"):
        return True  # dunders are public surface (len(), repr(), ...)
    return not name.startswith("_")


@register
class LockDisciplineChecker(Checker):
    id = "lock-discipline"
    description = (
        "public methods of lock-owning classes must access lock-guarded "
        "attributes under the lock (guards inferred from `with self._lock:` "
        "bodies; same-file inherited methods are checked too)"
    )
    severity = "error"

    def check_file(self, source: SourceFile) -> list[Finding]:
        classes: dict[str, _ClassInfo] = {}
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                classes[node.name] = _collect_class(node)

        findings: list[Finding] = self._raw_lock_findings(source)
        for info in classes.values():
            if not info.lock_attrs:
                continue
            findings.extend(self._check_class(source, info, classes))
        return findings

    # ------------------------------------------------------------------
    def _raw_lock_findings(self, source: SourceFile) -> list[Finding]:
        """Flag raw ``threading.Lock()``-family construction sites.

        The module that defines ``make_lock`` is exempt — it is the one
        place raw constructors are supposed to live.
        """
        tree = source.tree
        for node in tree.body:
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name == "make_lock"
            ):
                return []
        from_threading = {
            alias.asname or alias.name
            for node in ast.walk(tree)
            if isinstance(node, ast.ImportFrom) and node.module == "threading"
            for alias in node.names
            if alias.name in _RAW_LOCK_NAMES
        }
        findings: list[Finding] = []

        def scan(node: ast.AST, scope: str) -> None:
            for child in ast.iter_child_nodes(node):
                child_scope = scope
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    child_scope = f"{scope}.{child.name}" if scope else child.name
                if isinstance(child, ast.Call):
                    raw = self._raw_lock_kind(child, from_threading)
                    if raw is not None:
                        findings.append(
                            self.finding(
                                source,
                                child,
                                f"raw `threading.{raw}()` construction; use "
                                f"`make_lock(name)` from repro.locking so the "
                                f"lock-order pass and the runtime sanitizer "
                                f"see a named lock",
                                key_context=f"raw-lock:{scope or '<module>'}",
                            )
                        )
                scan(child, child_scope)

        scan(tree, "")
        return findings

    @staticmethod
    def _raw_lock_kind(call: ast.Call, from_threading: set[str]) -> str | None:
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "threading"
            and func.attr in _RAW_LOCK_NAMES
        ):
            return func.attr
        if isinstance(func, ast.Name) and func.id in from_threading:
            return func.id
        return None

    # ------------------------------------------------------------------
    def _check_class(
        self,
        source: SourceFile,
        info: _ClassInfo,
        classes: dict[str, _ClassInfo],
    ) -> list[Finding]:
        surface: dict[str, tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]] = {}
        # Same-file base classes first (nearest-ancestor wins), own last.
        for ancestor in reversed(self._ancestry(info, classes)):
            for method in iter_methods(ancestor.node):
                surface[method.name] = (ancestor.node.name, method)
        findings: list[Finding] = []
        for name, (owner, method) in sorted(surface.items()):
            if not _is_public_surface(name):
                continue
            scanner = _MethodScanner(info.lock_attrs, info.guarded)
            scanner.scan(method)
            for node, attr in scanner.hits:
                where = (
                    f"{owner}.{name}"
                    if owner == info.node.name
                    else f"{owner}.{name} (inherited by {info.node.name})"
                )
                lock = sorted(info.lock_attrs)[0]
                findings.append(
                    self.finding(
                        source,
                        node,
                        f"`self.{attr}` is guarded by `self.{lock}` elsewhere "
                        f"in {info.node.name} but accessed without the lock "
                        f"in {where}; wrap the access in `with self.{lock}:` "
                        f"(or override the method with a locked version)",
                        key_context=f"{info.node.name}.{name}.{attr}",
                    )
                )
        return findings

    @staticmethod
    def _ancestry(
        info: _ClassInfo, classes: dict[str, _ClassInfo]
    ) -> list[_ClassInfo]:
        """The class plus its same-file ancestors, nearest first."""
        out: list[_ClassInfo] = []
        seen: set[str] = set()
        stack = [info]
        while stack:
            current = stack.pop(0)
            if current.node.name in seen:
                continue
            seen.add(current.node.name)
            out.append(current)
            for base in current.base_names:
                if base in classes:
                    stack.append(classes[base])
        return out


# Re-exported for the fixture tests' direct use.
_ = call_keywords
