"""Error-taxonomy checker: every served error code must be classified.

PR 10 made the protocol's error replies *actionable*: each ``code`` in
:data:`repro.service.protocol.ERROR_TAXONOMY` carries an explicit
``retryable`` bool, and clients (``RetryingPlanClient``) key their retry
budget off it.  An error code constructed anywhere in the serving tier but
missing from the taxonomy silently degrades to "not retryable" — requests
that should fail over after a worker crash instead surface the error to the
caller.  That is exactly the kind of drift a later PR introduces by adding
an ``ErrorReply(code="new-thing", ...)`` without touching the table.

This cross-file pass pins the contract:

1. **Protocol tables** — in every source module named ``protocol.py`` that
   defines ``ERROR_TAXONOMY``: collect the module's string constants, the
   taxonomy's keys, and the ``ERROR_CODES`` tuple.

   * every taxonomy *value* must be a literal ``True``/``False`` — the
     classification is a wire contract, not a computation;
   * every code in ``ERROR_CODES`` must appear in ``ERROR_TAXONOMY`` — a
     code the protocol advertises but never classifies is unfinished.

2. **Construction sites** — in every source module sharing the protocol's
   directory (the serving tier): each ``ErrorReply`` / ``SchedulerError``
   / ``PlanServerError`` / ``ProtocolError`` construction whose ``code``
   argument statically resolves (a string literal, or a name bound to a
   module-level string constant here or in the protocol module) must
   resolve to a taxonomy key.

Dynamic passthroughs — ``ErrorReply(code=exc.code, ...)`` and the like —
resolve to *no finding*: the pass under-approximates, so every finding it
emits is a genuinely unregistered code.
"""

from __future__ import annotations

import ast
import posixpath
from dataclasses import dataclass, field

from .core import Checker, Finding, Project, SourceFile, call_keywords, register

__all__ = ["ErrorTaxonomyChecker"]

#: Error-carrying constructors and where their ``code`` argument lives:
#: keyword name plus its positional index in the signature.
_CODE_ARGS: dict[str, int] = {
    "ErrorReply": 0,  # ErrorReply(code, message, ...)
    "SchedulerError": 0,  # SchedulerError(code, message)
    "PlanServerError": 0,  # PlanServerError(code, message)
    "ProtocolError": 1,  # ProtocolError(message, code=...)
}

_TAXONOMY_NAME = "ERROR_TAXONOMY"
_CODES_NAME = "ERROR_CODES"


def _module_string_constants(tree: ast.Module) -> dict[str, str]:
    """Top-level ``NAME = "literal"`` bindings of a module."""
    constants: dict[str, str] = {}
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not isinstance(value, ast.Constant) or not isinstance(value.value, str):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                constants[target.id] = value.value
    return constants


def _resolve_code(node: ast.expr, constants: dict[str, str]) -> str | None:
    """A code expression's static string value, or ``None`` if dynamic."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Name):
        return constants.get(node.id)
    return None


def _find_assign(tree: ast.Module, name: str) -> tuple[ast.stmt, ast.expr] | None:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return node, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name) and node.target.id == name:
                return node, node.value
    return None


@dataclass
class _ProtocolTable:
    """The error tables of one ``protocol.py`` module."""

    source: SourceFile
    constants: dict[str, str]
    #: Statically resolved taxonomy keys.
    taxonomy: set[str] = field(default_factory=set)
    #: ``True`` when any taxonomy key failed to resolve statically — then
    #: membership checks are unreliable and construction sites are skipped.
    opaque: bool = False


class _CallScanner(ast.NodeVisitor):
    """Collects error-constructor calls with their enclosing scope name."""

    def __init__(self) -> None:
        self.scope: list[str] = []
        self.calls: list[tuple[ast.Call, str, int]] = []

    def _visit_scoped(self, node: ast.AST, name: str) -> None:
        self.scope.append(name)
        self.generic_visit(node)
        self.scope.pop()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._visit_scoped(node, node.name)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_scoped(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_scoped(node, node.name)

    def visit_Call(self, node: ast.Call) -> None:
        callee = node.func
        name = callee.id if isinstance(callee, ast.Name) else (
            callee.attr if isinstance(callee, ast.Attribute) else None
        )
        if name in _CODE_ARGS:
            scope = ".".join(self.scope) or "<module>"
            self.calls.append((node, scope, _CODE_ARGS[name]))
        self.generic_visit(node)


class ErrorTaxonomyChecker(Checker):
    id = "error-taxonomy"
    description = (
        "every error code constructed in the serving tier must be "
        "registered in the protocol's ERROR_TAXONOMY with an explicit "
        "retryable classification"
    )

    def check_project(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        tables: dict[str, _ProtocolTable] = {}
        for source in project.src_files:
            if posixpath.basename(source.rel) != "protocol.py":
                continue
            table = self._load_table(source, findings)
            if table is not None:
                tables[posixpath.dirname(source.rel)] = table
        if not tables:
            return findings
        for source in project.src_files:
            table = tables.get(posixpath.dirname(source.rel))
            if table is None or table.opaque:
                continue
            findings.extend(self._check_constructions(source, table))
        return findings

    # -- protocol tables ---------------------------------------------------
    def _load_table(
        self, source: SourceFile, findings: list[Finding]
    ) -> _ProtocolTable | None:
        tree = source.tree
        taxonomy = _find_assign(tree, _TAXONOMY_NAME)
        if taxonomy is None:
            return None
        table = _ProtocolTable(source, _module_string_constants(tree))
        node, value = taxonomy
        if not isinstance(value, ast.Dict):
            table.opaque = True
            findings.append(
                self.finding(
                    source,
                    node,
                    f"{_TAXONOMY_NAME} must be a literal dict mapping error "
                    "codes to retryable bools",
                    _TAXONOMY_NAME,
                )
            )
            return table
        for key, val in zip(value.keys, value.values):
            code = _resolve_code(key, table.constants) if key is not None else None
            if code is None:
                table.opaque = True
                findings.append(
                    self.finding(
                        source,
                        key or node,
                        f"{_TAXONOMY_NAME} key does not resolve to a string "
                        "constant — codes must be statically known",
                        f"{_TAXONOMY_NAME}.<dynamic>",
                    )
                )
                continue
            table.taxonomy.add(code)
            if not (isinstance(val, ast.Constant) and isinstance(val.value, bool)):
                findings.append(
                    self.finding(
                        source,
                        val,
                        f"{_TAXONOMY_NAME}[{code!r}] must be a literal "
                        "True/False — the retryable classification is a "
                        "wire contract, not a computation",
                        f"{_TAXONOMY_NAME}.{code}",
                    )
                )
        codes = _find_assign(tree, _CODES_NAME)
        if codes is not None:
            _, value = codes
            elements = value.elts if isinstance(value, (ast.Tuple, ast.List)) else []
            for element in elements:
                code = _resolve_code(element, table.constants)
                if code is not None and code not in table.taxonomy:
                    findings.append(
                        self.finding(
                            source,
                            element,
                            f"error code {code!r} is advertised in "
                            f"{_CODES_NAME} but has no retryable "
                            f"classification in {_TAXONOMY_NAME}",
                            f"{_CODES_NAME}.{code}",
                        )
                    )
        return table

    # -- construction sites ------------------------------------------------
    def _check_constructions(
        self, source: SourceFile, table: _ProtocolTable
    ) -> list[Finding]:
        tree = source.tree
        constants = dict(table.constants)
        constants.update(_module_string_constants(tree))
        scanner = _CallScanner()
        scanner.visit(tree)
        findings: list[Finding] = []
        for call, scope, position in scanner.calls:
            keywords = call_keywords(call)
            code_expr: ast.expr | None = keywords.get("code")
            if code_expr is None and len(call.args) > position:
                code_expr = call.args[position]
            if code_expr is None:
                continue
            code = _resolve_code(code_expr, constants)
            if code is None or code in table.taxonomy:
                continue
            findings.append(
                self.finding(
                    source,
                    call,
                    f"error code {code!r} is constructed here but not "
                    f"registered in {_TAXONOMY_NAME} "
                    f"({table.source.rel}) — add it with an explicit "
                    "retryable classification",
                    f"{scope}.{code}",
                )
            )
        return findings


register(ErrorTaxonomyChecker)
