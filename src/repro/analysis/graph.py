"""Repo-graph phase: module identity, imports, and symbol resolution.

ISSUE 6's checkers were either per-file or did dumb name matching across
the project.  The ISSUE 9 passes (``fork-safety``, ``lock-order``,
``pool-payload``) need real whole-program structure: which module a file
*is*, which modules it (transitively) imports, and what a dotted name used
in one module resolves to in another.  :class:`ModuleGraph` computes all of
that once per lint run — :meth:`repro.analysis.core.Project.graph` caches
it — so each cross-file pass starts from the same resolved picture instead
of re-deriving its own.

Module naming: a file's dotted module name is its lint-relative path with a
leading ``src/`` stripped, ``/`` replaced by ``.``, and ``__init__``
collapsed onto its package (``src/repro/hashjoin/parallel.py`` →
``repro.hashjoin.parallel``).  Fixture projects built from bare relative
paths get the same treatment, so test fixtures exercise the identical
resolution machinery.

Resolution is deliberately *static and partial*: only imports of modules
that exist in the project resolve; everything else (stdlib, numpy) is kept
as an opaque dotted target so callers can still classify e.g.
``threading.Lock`` by name.  ``None`` answers mean "unknown", and every
pass built on this graph treats unknown as not-a-finding — the graph under-
approximates, the checkers stay precise.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from .core import SourceFile, dotted_name

__all__ = ["ModuleGraph", "ModuleInfo", "module_name_for"]


def module_name_for(rel: str) -> str:
    """Dotted module name for a lint-relative posix path."""
    parts = rel.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


class ModuleInfo:
    """One project module: its source, imports, and top-level symbols."""

    def __init__(self, source: SourceFile, name: str) -> None:
        self.source = source
        self.name = name
        self.package = name.rsplit(".", 1)[0] if "." in name else ""
        #: Project-internal modules this module imports (anywhere, including
        #: function-local imports — worker entry points import lazily).
        self.imports: set[str] = set()
        #: Local binding -> fully dotted target ("np" -> "numpy",
        #: "make_lock" -> "repro.locking.make_lock").
        self.aliases: dict[str, str] = {}
        #: Top-level defs and classes by name.
        self.functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        self.classes: dict[str, ast.ClassDef] = {}
        #: Names assigned at module level (targets of top-level Assign /
        #: AnnAssign, plus names declared ``global`` inside functions).
        self.module_level_names: set[str] = set()
        for node in source.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[node.name] = node
            elif isinstance(node, ast.ClassDef):
                self.classes[node.name] = node
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        self.module_level_names.add(target.id)
                    elif isinstance(target, ast.Tuple):
                        for element in target.elts:
                            if isinstance(element, ast.Name):
                                self.module_level_names.add(element.id)
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Global):
                self.module_level_names.update(node.names)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ModuleInfo({self.name!r})"


class ModuleGraph:
    """Import edges and symbol resolution over a set of project files."""

    def __init__(self, files: Iterable[SourceFile]) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.by_rel: dict[str, ModuleInfo] = {}
        for source in files:
            info = ModuleInfo(source, module_name_for(source.rel))
            self.modules[info.name] = info
            self.by_rel[source.rel] = info
        for info in self.modules.values():
            self._link_imports(info)

    # ------------------------------------------------------------------
    # Import linking.
    # ------------------------------------------------------------------
    def _link_imports(self, info: ModuleInfo) -> None:
        for node in ast.walk(info.source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        info.aliases[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".", 1)[0]
                        info.aliases[head] = head
                    self._add_edge(info, alias.name)
            elif isinstance(node, ast.ImportFrom):
                base = self._from_base(info, node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    target = f"{base}.{alias.name}" if base else alias.name
                    info.aliases[bound] = target
                    # ``from pkg import module`` imports a module, not a
                    # symbol; link the edge to whichever exists.
                    if target in self.modules:
                        self._add_edge(info, target)
                    else:
                        self._add_edge(info, base)

    def _from_base(self, info: ModuleInfo, node: ast.ImportFrom) -> str | None:
        if node.level == 0:
            return node.module or ""
        # Relative import: climb ``level`` packages from this module.
        anchor = info.name.split(".")
        if not self._is_package(info):
            anchor = anchor[:-1]
        climb = node.level - 1
        if climb > len(anchor):
            return None
        base = anchor[: len(anchor) - climb]
        if node.module:
            base = base + node.module.split(".")
        return ".".join(base)

    def _is_package(self, info: ModuleInfo) -> bool:
        return info.source.rel.endswith("__init__.py")

    def _add_edge(self, info: ModuleInfo, target: str) -> None:
        # Record only project-internal edges; walk up the dotted chain so
        # ``import repro.hashjoin.parallel`` links the leaf module.
        name = target
        while name:
            if name in self.modules and name != info.name:
                info.imports.add(name)
                return
            name = name.rsplit(".", 1)[0] if "." in name else ""

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    def closure(self, roots: Iterable[str]) -> set[str]:
        """Project modules transitively imported by ``roots`` (inclusive)."""
        seen: set[str] = set()
        stack = [root for root in roots if root in self.modules]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            stack.extend(self.modules[name].imports - seen)
        return seen

    def resolve_target(self, info: ModuleInfo, dotted: str) -> str:
        """Fully qualified dotted target for a name used inside ``info``.

        ``np.random.default_rng`` → ``numpy.random.default_rng``;
        ``make_lock`` (from-imported) → ``repro.locking.make_lock``; names
        with no known alias come back unchanged.
        """
        head, _, rest = dotted.partition(".")
        target = info.aliases.get(head)
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target

    def resolve_symbol(
        self, info: ModuleInfo, dotted: str
    ) -> tuple[ModuleInfo, ast.AST] | None:
        """The defining module and AST node for a dotted use, when internal.

        Handles same-module symbols, from-imported symbols, and attribute
        access through an imported module (``partition.join_partition_pair``).
        Returns ``None`` for anything the project does not define.
        """
        head = dotted.split(".", 1)[0]
        if head not in info.aliases:
            node = self._top_level(info, dotted)
            return (info, node) if node is not None else None
        target = self.resolve_target(info, dotted)
        # Longest project-module prefix of the target owns the symbol.
        parts = target.split(".")
        for cut in range(len(parts), 0, -1):
            module_name = ".".join(parts[:cut])
            if module_name in self.modules:
                owner = self.modules[module_name]
                remainder = ".".join(parts[cut:])
                if not remainder:
                    return None  # the target IS a module, not a symbol
                node = self._top_level(owner, remainder)
                return (owner, node) if node is not None else None
        return None

    @staticmethod
    def _top_level(info: ModuleInfo, dotted: str) -> ast.AST | None:
        name = dotted.split(".", 1)[0]
        if name in info.functions:
            return info.functions[name]
        if name in info.classes:
            return info.classes[name]
        return None

    def iter_modules(self) -> Iterator[ModuleInfo]:
        yield from self.modules.values()


# Re-exported so graph-based checkers share one dotted-name helper.
_ = dotted_name
