"""NumPy hygiene checker for modules marked ``# repro: kernel``.

The kernels (``costmodel/batch.py``, ``hashjoin/*``) earned their speedups
by keeping work inside NumPy: no Python-level iteration over arrays, no
fresh allocations inside hot loops when a workspace exists, no accidental
float64 upcasts of 32-bit columns.  Each of those regressions is easy to
introduce in review-sized diffs — a convenience ``for row in matrix:``, a
``np.concatenate`` inside a per-partition loop — and none of them break
tests, only throughput.  This checker flags them in any module that opts in
with a module-level ``# repro: kernel`` comment.

Rules (all per-function, using a simple intra-function taint pass that marks
names assigned from ``np.*`` calls, array methods like ``.astype``/``.copy``,
or subscripts of tainted names as *arrays*):

* ``loop-over-array`` — a ``for`` statement iterating a tainted name (or a
  ``zip``/``enumerate``/``reversed`` of one).  ``range(...)`` never taints,
  and ``.tolist()`` deliberately *untaints* — converting to a list first is
  exactly how the scalar reference paths are supposed to iterate.
* ``alloc-in-loop`` — an allocating ``np.*`` call (``empty``/``zeros``/
  ``ones``/``full``/``concatenate``/``arange``/``copy``) inside a
  ``for``/``while`` body with no ``out=`` argument.  Amortised growth and
  fallback allocations are legitimate — suppress those call sites with an
  inline ``# repro: ignore[numpy-hygiene]`` explaining why.
* ``dtype-widening`` — an arithmetic binop mixing a name known to hold a
  32-bit array (from ``dtype=np.int32``/``astype(np.float32)``-style
  evidence in the same function) with a float literal or an ``np.float64``
  value: NumPy silently widens the result to 64 bits, doubling kernel
  bandwidth.

Functions marked ``# repro: reference`` (the deliberately scalar twins that
the kernel-parity contract exists to preserve) are exempt from all three
rules — a reference implementation looping over ``.tolist()`` rows is
working as intended.
"""

from __future__ import annotations

import ast

from .core import Checker, Finding, SourceFile, dotted_name, register

__all__ = ["NumpyHygieneChecker"]

#: np.* callables that allocate a fresh array.
_ALLOCATORS = {
    "empty",
    "zeros",
    "ones",
    "full",
    "concatenate",
    "arange",
    "copy",
    "empty_like",
    "zeros_like",
    "ones_like",
    "full_like",
}
#: Array methods whose result is still an array (taint-preserving).
_ARRAY_METHODS = {
    "astype",
    "copy",
    "reshape",
    "ravel",
    "view",
    "take",
    "repeat",
    "cumsum",
    "clip",
    "round",
    "searchsorted",
}
#: Call results that are definitely *not* arrays (taint-clearing).
_SCALARIZERS = {"tolist", "item", "int", "float", "len", "bool", "str", "sum", "min", "max"}
#: dtype spellings that mark a 32-bit (or narrower) array.
_NARROW_DTYPES = {
    "np.int32",
    "np.uint32",
    "np.float32",
    "np.int16",
    "np.uint16",
    "np.int8",
    "np.uint8",
    "numpy.int32",
    "numpy.uint32",
    "numpy.float32",
}
_WIDE_NAMES = {"np.float64", "numpy.float64", "np.int64", "numpy.int64"}


def _is_np_call(call: ast.Call) -> str | None:
    """The np function name for ``np.foo(...)``/``numpy.foo(...)``, else None."""
    name = dotted_name(call.func)
    if name is None:
        return None
    parts = name.split(".")
    if len(parts) >= 2 and parts[0] in {"np", "numpy"}:
        return parts[-1]
    return None


def _dtype_width(node: ast.expr | None) -> str | None:
    """'narrow'/'wide' for a dtype expression, else None."""
    if node is None:
        return None
    name = dotted_name(node)
    if name in _NARROW_DTYPES:
        return "narrow"
    if name in _WIDE_NAMES:
        return "wide"
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        if node.value in {"int32", "uint32", "float32", "int16", "uint16"}:
            return "narrow"
        if node.value in {"float64", "int64"}:
            return "wide"
    return None


class _FunctionState:
    """Taint + dtype facts for one function body."""

    def __init__(self) -> None:
        self.arrays: set[str] = set()
        self.narrow: set[str] = set()

    # -- classification -------------------------------------------------
    def value_is_array(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.arrays
        if isinstance(node, ast.Subscript):
            return self.value_is_array(node.value)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                if func.attr in _SCALARIZERS:
                    return False
                if func.attr in _ARRAY_METHODS:
                    return self.value_is_array(func.value)
            np_name = _is_np_call(node)
            if np_name is not None and np_name not in {
                "float64",
                "float32",
                "int64",
                "int32",
                "uint64",
                "isscalar",
            }:
                return True
            if isinstance(func, ast.Name) and func.id in _SCALARIZERS:
                return False
        if isinstance(node, ast.BinOp):
            return self.value_is_array(node.left) or self.value_is_array(node.right)
        if isinstance(node, ast.IfExp):
            return self.value_is_array(node.body) or self.value_is_array(node.orelse)
        return False

    def value_is_narrow(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.narrow
        if isinstance(node, ast.Subscript):
            return self.value_is_narrow(node.value)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "astype":
                return any(
                    _dtype_width(arg) == "narrow" for arg in node.args
                ) or any(
                    kw.arg == "dtype" and _dtype_width(kw.value) == "narrow"
                    for kw in node.keywords
                )
            if _is_np_call(node) in _ALLOCATORS:
                for kw in node.keywords:
                    if kw.arg == "dtype":
                        return _dtype_width(kw.value) == "narrow"
        return False

    # -- learning -------------------------------------------------------
    def learn_assign(self, target: ast.expr, value: ast.expr) -> None:
        if not isinstance(target, ast.Name):
            return
        name = target.id
        if self.value_is_array(value):
            self.arrays.add(name)
            if self.value_is_narrow(value):
                self.narrow.add(name)
            else:
                self.narrow.discard(name)
        else:
            self.arrays.discard(name)
            self.narrow.discard(name)


def _widening_operand(state: _FunctionState, node: ast.expr) -> bool:
    """Whether this binop operand forces a float64 upcast of a narrow array."""
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    name = dotted_name(node)
    if name in _WIDE_NAMES:
        return True
    if isinstance(node, ast.Call) and dotted_name(node.func) in _WIDE_NAMES:
        return True
    return False


@register
class NumpyHygieneChecker(Checker):
    id = "numpy-hygiene"
    description = (
        "modules marked `# repro: kernel` must not loop Python-side over "
        "arrays, allocate inside hot loops without out=/workspace, or mix "
        "32-bit arrays with widening literals"
    )
    severity = "error"

    def check_file(self, source: SourceFile) -> list[Finding]:
        if not source.is_kernel:
            return []
        findings: list[Finding] = []
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if source.is_reference(node):
                    continue
                findings.extend(self._check_function(source, node))
        return findings

    # ------------------------------------------------------------------
    def _check_function(
        self,
        source: SourceFile,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> list[Finding]:
        state = _FunctionState()
        findings: list[Finding] = []
        self._walk(source, fn.name, fn.body, state, loop_depth=0, out=findings)
        return findings

    def _walk(
        self,
        source: SourceFile,
        fn_name: str,
        body: list[ast.stmt],
        state: _FunctionState,
        loop_depth: int,
        out: list[Finding],
    ) -> None:
        for stmt in body:
            # Nested defs get their own _check_function pass via ast.walk.
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(stmt, ast.Assign):
                self._scan_exprs(source, fn_name, stmt.value, state, loop_depth, out)
                for target in stmt.targets:
                    state.learn_assign(target, stmt.value)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                self._scan_exprs(source, fn_name, stmt.value, state, loop_depth, out)
                state.learn_assign(stmt.target, stmt.value)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._check_loop_iter(source, fn_name, stmt, state, out)
                self._scan_exprs(source, fn_name, stmt.iter, state, loop_depth, out)
                self._walk(source, fn_name, stmt.body, state, loop_depth + 1, out)
                self._walk(source, fn_name, stmt.orelse, state, loop_depth, out)
            elif isinstance(stmt, ast.While):
                self._scan_exprs(source, fn_name, stmt.test, state, loop_depth, out)
                self._walk(source, fn_name, stmt.body, state, loop_depth + 1, out)
                self._walk(source, fn_name, stmt.orelse, state, loop_depth, out)
            elif isinstance(stmt, (ast.If,)):
                self._scan_exprs(source, fn_name, stmt.test, state, loop_depth, out)
                self._walk(source, fn_name, stmt.body, state, loop_depth, out)
                self._walk(source, fn_name, stmt.orelse, state, loop_depth, out)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self._scan_exprs(
                        source, fn_name, item.context_expr, state, loop_depth, out
                    )
                self._walk(source, fn_name, stmt.body, state, loop_depth, out)
            elif isinstance(stmt, ast.Try):
                self._walk(source, fn_name, stmt.body, state, loop_depth, out)
                for handler in stmt.handlers:
                    self._walk(source, fn_name, handler.body, state, loop_depth, out)
                self._walk(source, fn_name, stmt.orelse, state, loop_depth, out)
                self._walk(source, fn_name, stmt.finalbody, state, loop_depth, out)
            else:
                for child in ast.iter_child_nodes(stmt):
                    if isinstance(child, ast.expr):
                        self._scan_exprs(
                            source, fn_name, child, state, loop_depth, out
                        )

    # ------------------------------------------------------------------
    def _check_loop_iter(
        self,
        source: SourceFile,
        fn_name: str,
        stmt: ast.For | ast.AsyncFor,
        state: _FunctionState,
        out: list[Finding],
    ) -> None:
        iter_expr = stmt.iter
        looped: ast.expr | None = None
        if isinstance(iter_expr, ast.Call):
            callee = iter_expr.func
            if isinstance(callee, ast.Name) and callee.id in {
                "zip",
                "enumerate",
                "reversed",
            }:
                for arg in iter_expr.args:
                    if state.value_is_array(arg):
                        looped = arg
                        break
        elif state.value_is_array(iter_expr):
            looped = iter_expr
        if looped is None:
            return
        label = dotted_name(looped) or (
            looped.id if isinstance(looped, ast.Name) else "array expression"
        )
        out.append(
            self.finding(
                source,
                stmt,
                f"Python-level `for` loop over array `{label}` in kernel "
                f"function `{fn_name}`; vectorise, or `.tolist()` first if "
                "this is deliberate scalar code (or mark the function "
                "`# repro: reference`)",
                key_context=f"{fn_name}.loop-over-array.{label}",
            )
        )

    def _scan_exprs(
        self,
        source: SourceFile,
        fn_name: str,
        expr: ast.expr,
        state: _FunctionState,
        loop_depth: int,
        out: list[Finding],
    ) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                np_name = _is_np_call(node)
                if (
                    np_name in _ALLOCATORS
                    and loop_depth > 0
                    and not any(kw.arg == "out" for kw in node.keywords)
                ):
                    out.append(
                        self.finding(
                            source,
                            node,
                            f"`np.{np_name}` allocates inside a loop in "
                            f"kernel function `{fn_name}` without `out=`; "
                            "hoist the allocation or reuse a workspace "
                            "buffer",
                            key_context=f"{fn_name}.alloc-in-loop.{np_name}",
                        )
                    )
            elif isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.Pow)
            ):
                pairs = (
                    (node.left, node.right),
                    (node.right, node.left),
                )
                for array_side, other in pairs:
                    if state.value_is_narrow(array_side) and _widening_operand(
                        state, other
                    ):
                        label = dotted_name(array_side) or "array"
                        out.append(
                            self.finding(
                                source,
                                node,
                                f"arithmetic on 32-bit array `{label}` with "
                                "a float64-widening operand in kernel "
                                f"function `{fn_name}`; cast the scalar to "
                                "the array dtype to keep the narrow width",
                                key_context=f"{fn_name}.dtype-widening.{label}",
                            )
                        )
                        break
