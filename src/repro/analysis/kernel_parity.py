"""Kernel-parity contract checker (cross-file pass).

The repro's performance story is "vectorized kernels, bit-matched against a
scalar reference": every fast path ships behind a toggle keyword
(``use_batch=``, ``use_bulk=``, ``use_kernels=``, ``vectorized=``,
``fused=``, ``parallel=``) whose ``False`` side is the slow,
obviously-correct twin, and a
parity test drives both sides and compares them exactly.  The contract this
checker enforces is the *other* half of that bargain: a toggle without a
parity test is a fast path nobody is comparing against its reference
anymore.

Mechanics:

* **Toggle discovery** (``src/``) — every ``def``/``async def`` whose
  signature contains one of the known toggle parameter names exports a
  contract ``(callable_name, toggle)``.  Toggles declared on ``__init__``
  are attributed to the *class* (callers write ``PartitionedHashJoin(...,
  use_kernels=False)``, not ``__init__``).
* **Coverage discovery** (``tests/``) — a contract is satisfied when any
  test module contains a call whose callee name matches the callable (bare
  ``Name`` or trailing ``Attribute`` part) and which passes the toggle
  *explicitly by keyword*.  Relying on the default does not count: the whole
  point of a parity test is pinning both sides.
* Anything unmatched is reported at the ``def`` site in ``src/`` with a
  stable ``callable.toggle`` key.

This is deliberately name-based, not import-resolved — the test suite is
small and flat enough that a trailing-name match is unambiguous, and keeping
the matcher dumb means a reader can predict what it will do.
"""

from __future__ import annotations

import ast

from .core import Checker, Finding, Project, SourceFile, register

__all__ = ["KernelParityChecker", "TOGGLES"]

#: Reference-toggle parameter names that establish a parity contract.
TOGGLES = frozenset(
    {"use_batch", "use_bulk", "use_kernels", "vectorized", "fused", "parallel"}
)


def _signature_toggles(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    names = {arg.arg for arg in fn.args.args}
    names.update(arg.arg for arg in fn.args.kwonlyargs)
    names.update(arg.arg for arg in fn.args.posonlyargs)
    return names & TOGGLES


def _callee_names(call: ast.Call) -> set[str]:
    """Names under which a call site might refer to the contract callable."""
    func = call.func
    if isinstance(func, ast.Name):
        return {func.id}
    if isinstance(func, ast.Attribute):
        return {func.attr}
    return set()


class _Contract:
    __slots__ = ("name", "toggle", "source", "node")

    def __init__(
        self,
        name: str,
        toggle: str,
        source: SourceFile,
        node: ast.AST,
    ) -> None:
        self.name = name
        self.toggle = toggle
        self.source = source
        self.node = node


@register
class KernelParityChecker(Checker):
    id = "kernel-parity"
    description = (
        "every function exposing a reference toggle (use_batch/use_bulk/"
        "use_kernels/vectorized/fused/parallel) must have a tests/ call that passes "
        "that toggle explicitly — fast paths stay bit-matched to their "
        "scalar references only while something compares them"
    )
    severity = "error"

    def check_project(self, project: Project) -> list[Finding]:
        contracts = self._collect_contracts(project)
        if not contracts:
            return []
        covered = self._collect_coverage(project)
        findings: list[Finding] = []
        for contract in contracts:
            if (contract.name, contract.toggle) in covered:
                continue
            findings.append(
                self.finding(
                    contract.source,
                    contract.node,
                    f"`{contract.name}` exposes the reference toggle "
                    f"`{contract.toggle}=` but no test in tests/ calls it "
                    f"with `{contract.toggle}=` passed explicitly; add a "
                    "parity test pinning both the kernel and the reference "
                    "path",
                    key_context=f"{contract.name}.{contract.toggle}",
                )
            )
        return findings

    # ------------------------------------------------------------------
    @staticmethod
    def _collect_contracts(project: Project) -> list[_Contract]:
        contracts: list[_Contract] = []
        for source in project.src_files:
            for node in ast.walk(source.tree):
                if isinstance(node, ast.ClassDef):
                    for item in node.body:
                        if (
                            isinstance(
                                item, (ast.FunctionDef, ast.AsyncFunctionDef)
                            )
                            and item.name == "__init__"
                        ):
                            for toggle in sorted(_signature_toggles(item)):
                                contracts.append(
                                    _Contract(node.name, toggle, source, node)
                                )
                elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if node.name.startswith("_"):
                        continue  # internal helpers inherit their caller's test
                    for toggle in sorted(_signature_toggles(node)):
                        contracts.append(
                            _Contract(node.name, toggle, source, node)
                        )
        return contracts

    @staticmethod
    def _collect_coverage(project: Project) -> set[tuple[str, str]]:
        covered: set[tuple[str, str]] = set()
        for source in project.test_files:
            for node in ast.walk(source.tree):
                if not isinstance(node, ast.Call):
                    continue
                passed = {
                    kw.arg for kw in node.keywords if kw.arg in TOGGLES
                }
                if not passed:
                    continue
                for name in _callee_names(node):
                    for toggle in passed:
                        covered.add((name, toggle))
        return covered
