"""File collection, checker orchestration and rendering for ``repro lint``.

The runner is what the CLI subcommand (and the CI ``lint-gate`` job) drive:

* :func:`load_project` walks ``src/`` and ``tests/`` for Python modules and
  parses them into a :class:`~repro.analysis.core.Project`.  A module that
  fails to parse is a *config* error (:class:`LintConfigError` → exit 2),
  not a finding — the linter refuses to pretend it analysed a file it could
  not read.  ``tests/analysis_fixtures/`` is excluded: those files contain
  deliberately seeded violations for the checker tests.
* :func:`run_lint` runs the selected checkers (per-file passes over ``src``
  modules, cross-file passes over the whole project) and splits raw
  findings into *active*, *suppressed* (inline ``# repro: ignore[...]``)
  and *allowlisted* (stable keys listed in an allowlist file, the
  grandfathering mechanism that lets the CI gate be tightened
  incrementally).
* :func:`render_text` / :func:`render_json` produce the two output formats.

Allowlist format: one finding key per line (``checker:path:symbol``),
``#`` comments and blank lines ignored.  Keys are symbol-based — they
survive unrelated edits that shift line numbers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .core import Checker, Finding, Project, SourceFile, all_checkers, get_checker

__all__ = [
    "LintConfigError",
    "LintResult",
    "load_allowlist",
    "load_project",
    "render_json",
    "render_text",
    "run_lint",
]

#: Directory names never collected.
_EXCLUDED_DIRS = {"__pycache__", "analysis_fixtures", ".git"}


class LintConfigError(Exception):
    """Bad lint configuration (missing paths, unparseable files, unknown
    checkers, unreadable allowlist) — maps to exit code 2, like the config
    errors of ``repro plan``."""


@dataclass
class LintResult:
    """The outcome of one lint run, split by disposition."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    allowlisted: list[Finding] = field(default_factory=list)
    checkers: list[str] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings


def _collect_files(root: Path) -> list[Path]:
    if not root.is_dir():
        return []
    out = []
    for path in sorted(root.rglob("*.py")):
        if any(part in _EXCLUDED_DIRS or part.startswith(".") for part in path.parts):
            continue
        out.append(path)
    return out


def _parse(path: Path, rel_root: Path) -> SourceFile:
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise LintConfigError(f"cannot read {path}: {exc}") from exc
    rel = path.relative_to(rel_root).as_posix()
    try:
        return SourceFile(path=path, rel=rel, text=text)
    except SyntaxError as exc:
        raise LintConfigError(
            f"cannot parse {rel}: {exc.msg} (line {exc.lineno})"
        ) from exc


def load_project(
    root: Path,
    src: str | Path = "src",
    tests: str | Path = "tests",
) -> Project:
    """Parse the repo's ``src`` and ``tests`` trees into a Project.

    Paths are resolved against ``root`` unless absolute.  A missing ``src``
    tree is a config error; a missing ``tests`` tree only disables the
    cross-file passes' coverage scan (the kernel-parity checker will then
    report every contract, which is the correct answer for a repo with no
    tests).
    """
    root = Path(root)
    src_root = Path(src) if Path(src).is_absolute() else root / src
    tests_root = Path(tests) if Path(tests).is_absolute() else root / tests
    src_paths = _collect_files(src_root)
    if not src_paths:
        raise LintConfigError(f"no Python files found under {src_root}")
    project = Project()
    for path in src_paths:
        project.src_files.append(_parse(path, root))
    for path in _collect_files(tests_root):
        project.test_files.append(_parse(path, root))
    return project


def _resolve_checkers(checker_ids: Sequence[str] | None) -> list[Checker]:
    registry = all_checkers()
    if not checker_ids:
        return list(registry.values())
    selected = []
    for checker_id in checker_ids:
        try:
            selected.append(get_checker(checker_id))
        except KeyError as exc:
            raise LintConfigError(str(exc.args[0])) from None
    return selected


def load_allowlist(path: Path) -> set[str]:
    """Read an allowlist file of one stable finding key per line."""
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise LintConfigError(f"cannot read allowlist {path}: {exc}") from exc
    keys = set()
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if line:
            keys.add(line)
    return keys


def run_lint(
    project: Project,
    checker_ids: Sequence[str] | None = None,
    allowlist: Iterable[str] = (),
) -> LintResult:
    """Run checkers over a project and triage the findings."""
    checkers = _resolve_checkers(checker_ids)
    by_rel = {source.rel: source for source in project.all_files()}
    raw: list[Finding] = []
    for checker in checkers:
        for source in project.src_files:
            raw.extend(checker.check_file(source))
        raw.extend(checker.check_project(project))

    result = LintResult(
        checkers=[c.id for c in checkers],
        files_scanned=len(by_rel),
    )
    allowed = set(allowlist)
    seen: set[tuple[str, int, int, str, str]] = set()
    for finding in sorted(
        raw, key=lambda f: (f.path, f.line, f.col, f.checker, f.message)
    ):
        dedupe = (finding.path, finding.line, finding.col, finding.checker, finding.message)
        if dedupe in seen:
            continue
        seen.add(dedupe)
        source = by_rel.get(finding.path)
        if source is not None and source.is_suppressed(finding):
            result.suppressed.append(finding)
        elif finding.key in allowed:
            result.allowlisted.append(finding)
        else:
            result.findings.append(finding)
    return result


# ---------------------------------------------------------------------------
# Rendering.
# ---------------------------------------------------------------------------
def render_text(result: LintResult, show_suppressed: bool = False) -> str:
    lines: list[str] = []
    for finding in result.findings:
        lines.append(
            f"{finding.location()}: {finding.severity}[{finding.checker}] "
            f"{finding.message}"
        )
    if show_suppressed:
        for finding in result.suppressed:
            lines.append(
                f"{finding.location()}: suppressed[{finding.checker}] "
                f"{finding.message}"
            )
        for finding in result.allowlisted:
            lines.append(
                f"{finding.location()}: allowlisted[{finding.checker}] "
                f"{finding.message}"
            )
    tail = (
        f"{len(result.findings)} finding(s), "
        f"{len(result.suppressed)} suppressed, "
        f"{len(result.allowlisted)} allowlisted "
        f"({result.files_scanned} files, "
        f"{len(result.checkers)} checkers: {', '.join(result.checkers)})"
    )
    if result.clean:
        lines.append(f"repro lint: clean — {tail}")
    else:
        lines.append(f"repro lint: FAILED — {tail}")
    return "\n".join(lines)


def render_json(result: LintResult, show_suppressed: bool = False) -> str:
    # ``per_checker`` counts every disposition so the CI artifact
    # (LINT_9.json) can graph per-checker totals even on a clean run;
    # ``suppressions`` is the inventory of inline ``# repro: ignore[...]``
    # uses, always present so the gate can audit them.
    per_checker: dict[str, dict[str, int]] = {
        checker_id: {"findings": 0, "suppressed": 0, "allowlisted": 0}
        for checker_id in result.checkers
    }
    for finding in result.findings:
        per_checker.setdefault(
            finding.checker, {"findings": 0, "suppressed": 0, "allowlisted": 0}
        )["findings"] += 1
    for finding in result.suppressed:
        per_checker.setdefault(
            finding.checker, {"findings": 0, "suppressed": 0, "allowlisted": 0}
        )["suppressed"] += 1
    for finding in result.allowlisted:
        per_checker.setdefault(
            finding.checker, {"findings": 0, "suppressed": 0, "allowlisted": 0}
        )["allowlisted"] += 1
    payload: dict[str, object] = {
        "status": "clean" if result.clean else "findings",
        "findings": [f.to_dict() for f in result.findings],
        "suppressed_count": len(result.suppressed),
        "allowlisted_count": len(result.allowlisted),
        "files_scanned": result.files_scanned,
        "checkers": result.checkers,
        "per_checker": per_checker,
        "suppressions": [
            {
                "checker": f.checker,
                "key": f.key,
                "location": f.location(),
            }
            for f in result.suppressed
        ],
    }
    if show_suppressed:
        payload["suppressed"] = [f.to_dict() for f in result.suppressed]
        payload["allowlisted"] = [f.to_dict() for f in result.allowlisted]
    return json.dumps(payload, indent=2, sort_keys=True)
