"""Fork-safety checker: process-global resources must survive ``fork()``.

PRs 7–8 made the repro genuinely multi-process: ``service/pool.py`` forks
pre-fork workers with ``os.fork`` and ``hashjoin/parallel.py`` forks pair
workers through a ``ProcessPoolExecutor``.  A forked child inherits a
byte-copy of the parent — including every module-level lock (possibly held
by a thread that did not survive the fork), every SQLite connection (which
SQLite explicitly forbids using across a fork), every started thread handle
(the thread itself is gone), and every executor (its workers belong to the
parent).  Using any of these in the child is a latent deadlock or
corruption; the only safe patterns are *re-initialise after fork*
(``os.register_at_fork``) or *create post-fork only*.

This cross-file pass enforces that contract over the repo graph:

1. **Fork boundaries** — modules calling ``os.fork``,
   ``ProcessPoolExecutor``, ``multiprocessing.get_context`` /
   ``Process`` / ``Pool``.
2. **Reachability** — the transitive import closure of each fork module:
   everything in it exists in the parent at fork time and is inherited by
   the child.  (An under-approximation of "any loaded module", which keeps
   findings actionable.)
3. **Resources** — in every module of the closure:

   * *module-level resources*: names assigned (at top level, or via
     ``global`` in a function) from a resource factory — ``make_lock`` /
     ``threading.Lock``-family, ``sqlite3.connect``, ``socket.socket``,
     ``threading.Thread``, ``ProcessPoolExecutor``, ``asyncio`` loop
     constructors, ``np.random.default_rng`` — or from a *resource-owning
     class*, or module-level containers that functions fill with such
     values (``_POOLS[key] = PairPool(...)``).
   * *fork-hostile classes*: classes whose methods store a fork-hostile
     resource (SQLite connection, socket, thread, pool, loop, open file)
     on ``self`` — instances alive at fork time cross the boundary.  Locks
     and RNGs owned by instances are *not* flagged: per-instance state is
     the owner's problem and flagging every lock-owning class would bury
     the signal.

4. **Clearing** — a resource is fine when its module registers an
   ``os.register_at_fork`` hook that (for module-level names) references
   the name directly or through a registered local handler, or (for
   classes) exists at all in the defining module; or when the fork module
   itself touches it in the statically recognisable child branch
   (``pid = os.fork()`` … ``if pid == 0:``) — closing inherited listeners
   in the child is exactly the right move and must not be flagged.

Everything unknown resolves to *no finding*: the pass under-approximates
reachability and resolution, so every finding it does emit is worth
reading.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from .core import Checker, Finding, Project, SourceFile, dotted_name, register
from .graph import ModuleGraph, ModuleInfo

__all__ = ["ForkSafetyChecker", "resource_kind_of"]

#: Fully qualified factory -> resource kind.  Matching is done on the
#: alias-resolved dotted target (``np.random.default_rng`` resolves through
#: ``import numpy as np``); the bare-name fallbacks cover from-imports.
_FACTORY_KINDS: dict[str, str] = {
    "threading.Lock": "lock",
    "threading.RLock": "lock",
    "threading.Condition": "lock",
    "threading.Semaphore": "lock",
    "threading.BoundedSemaphore": "lock",
    "repro.locking.make_lock": "lock",
    "make_lock": "lock",
    "sqlite3.connect": "sqlite3.Connection",
    "socket.socket": "socket",
    "socket.socketpair": "socket",
    "socket.create_connection": "socket",
    "threading.Thread": "thread",
    "concurrent.futures.ProcessPoolExecutor": "process pool",
    "ProcessPoolExecutor": "process pool",
    "multiprocessing.Pool": "process pool",
    "concurrent.futures.ThreadPoolExecutor": "thread pool",
    "ThreadPoolExecutor": "thread pool",
    "asyncio.new_event_loop": "event loop",
    "asyncio.get_event_loop": "event loop",
    "numpy.random.default_rng": "numpy RNG",
    "numpy.random.Generator": "numpy RNG",
    "open": "open file",
}

#: Resource kinds that make a *class* fork-hostile when stored on ``self``.
#: Locks/RNGs owned by instances are deliberately excluded (see module doc).
_HOSTILE_CLASS_KINDS = frozenset(
    {"sqlite3.Connection", "socket", "thread", "process pool", "thread pool",
     "event loop", "open file"}
)

#: Call targets that establish a fork boundary in a module.
_FORK_CALLS = frozenset(
    {
        "os.fork",
        "os.forkpty",
        "concurrent.futures.ProcessPoolExecutor",
        "ProcessPoolExecutor",
        "multiprocessing.get_context",
        "multiprocessing.Process",
        "multiprocessing.Pool",
    }
)


def resource_kind_of(graph: ModuleGraph, info: ModuleInfo, call: ast.Call) -> str | None:
    """The resource kind a call constructs, or ``None``."""
    dotted = dotted_name(call.func)
    if dotted is None:
        return None
    target = graph.resolve_target(info, dotted)
    kind = _FACTORY_KINDS.get(target)
    if kind is not None:
        return kind
    return _FACTORY_KINDS.get(dotted)


def _is_fork_call(graph: ModuleGraph, info: ModuleInfo, call: ast.Call) -> bool:
    dotted = dotted_name(call.func)
    if dotted is None:
        return False
    target = graph.resolve_target(info, dotted)
    return target in _FORK_CALLS or dotted in _FORK_CALLS


@dataclass
class _Resource:
    """One flagged-or-cleared process-global resource."""

    module: ModuleInfo
    name: str  # module-level name, or ``Class.attr`` for class resources
    kind: str
    node: ast.AST
    is_class: bool = False


@dataclass
class _ModuleFacts:
    fork_sites: list[ast.Call] = field(default_factory=list)
    resources: list[_Resource] = field(default_factory=list)
    #: Class name -> set of fork-hostile kinds stored on ``self``.
    hostile_classes: dict[str, set[str]] = field(default_factory=dict)
    #: Names referenced by ``os.register_at_fork`` handlers in this module.
    atfork_names: set[str] = field(default_factory=set)
    has_atfork: bool = False
    #: Names / ``self.attr`` strings referenced inside ``if pid == 0:``
    #: child branches of this module's own fork sites.
    child_branch_names: set[str] = field(default_factory=set)


class _FunctionScan:
    """Names assigned resource values inside one function body."""

    def __init__(self, graph: ModuleGraph, info: ModuleInfo) -> None:
        self.graph = graph
        self.info = info
        #: local/global name -> (kind, node)
        self.resource_locals: dict[str, tuple[str, ast.AST]] = {}


class ForkSafetyChecker(Checker):
    id = "fork-safety"
    description = (
        "process-global resources (locks, SQLite connections, sockets, "
        "threads, pools, loops, RNGs) reachable across a fork boundary "
        "must have an os.register_at_fork re-init path or be created "
        "post-fork"
    )
    severity = "error"

    def check_project(self, project: Project) -> list[Finding]:
        graph = project.graph()
        facts = {info.name: self._scan_module(graph, info) for info in graph.iter_modules()}

        fork_modules = [name for name, f in facts.items() if f.fork_sites]
        if not fork_modules:
            return []
        reachable = graph.closure(fork_modules)
        fork_rels = sorted(
            graph.modules[name].source.rel for name in fork_modules
        )

        findings: list[Finding] = []
        for module_name in sorted(reachable):
            info = graph.modules[module_name]
            f = facts[module_name]
            for resource in f.resources:
                if self._is_cleared(resource, f, facts, fork_modules):
                    continue
                findings.append(self._finding_for(resource, fork_rels))
        return findings

    # ------------------------------------------------------------------
    # Clearing rules.
    # ------------------------------------------------------------------
    def _is_cleared(
        self,
        resource: _Resource,
        own: _ModuleFacts,
        facts: dict[str, _ModuleFacts],
        fork_modules: list[str],
    ) -> bool:
        if resource.is_class:
            # A class-level resource is cleared by any at-fork registration
            # in its defining module (the registered handler is that
            # module's re-init story), or by the fork module touching the
            # attribute in its child branch.
            if own.has_atfork:
                return True
            attr = resource.name.split(".", 1)[1] if "." in resource.name else ""
            for fork_module in fork_modules:
                if f"self.{attr}" in facts[fork_module].child_branch_names:
                    return True
            return False
        if resource.name in own.atfork_names:
            return True
        for fork_module in fork_modules:
            if resource.name in facts[fork_module].child_branch_names:
                return True
        return False

    def _finding_for(self, resource: _Resource, fork_rels: list[str]) -> Finding:
        where = ", ".join(fork_rels)
        if resource.is_class:
            message = (
                f"class `{resource.name.split('.', 1)[0]}` stores a "
                f"{resource.kind} on `self.{resource.name.split('.', 1)[1]}`; "
                f"instances alive when {where} forks are inherited by the "
                f"child with a dead/shared {resource.kind} — register an "
                f"`os.register_at_fork` re-init path in this module or "
                f"guarantee post-fork construction"
            )
        else:
            message = (
                f"module-level {resource.kind} `{resource.name}` is "
                f"inherited across the fork boundary in {where} without an "
                f"`os.register_at_fork` re-init path; a child forked while "
                f"another thread uses it inherits unusable state"
            )
        return self.finding(
            resource.module.source,
            resource.node,
            message,
            key_context=resource.name,
        )

    # ------------------------------------------------------------------
    # Per-module scan.
    # ------------------------------------------------------------------
    def _scan_module(self, graph: ModuleGraph, info: ModuleInfo) -> _ModuleFacts:
        facts = _ModuleFacts()
        tree = info.source.tree

        # Pass A: fork sites + at-fork registrations (anywhere in module).
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            if _is_fork_call(graph, info, node):
                facts.fork_sites.append(node)
            dotted = dotted_name(node.func)
            if dotted is not None and graph.resolve_target(info, dotted) in (
                "os.register_at_fork",
            ):
                facts.has_atfork = True
                facts.atfork_names.update(self._atfork_referenced(info, node))

        # Pass B: module-level resource assignments.
        for stmt in tree.body:
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                value = stmt.value
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                )
                self._record_assignment(graph, info, facts, targets, value, None)

        # Pass C: hostile classes + function bodies (global assignments,
        # container stores, child branches).
        class_kinds: dict[str, set[str]] = {}
        for cls in info.classes.values():
            kinds = self._class_resource_kinds(graph, info, cls)
            hostile = kinds & _HOSTILE_CLASS_KINDS
            class_kinds[cls.name] = kinds
            if hostile:
                facts.hostile_classes[cls.name] = hostile
        # Record class resources as findings-to-be (anchor: the assignment).
        for cls in info.classes.values():
            for attr, (kind, node) in self._class_resource_attrs(
                graph, info, cls
            ).items():
                if kind in _HOSTILE_CLASS_KINDS:
                    facts.resources.append(
                        _Resource(info, f"{cls.name}.{attr}", kind, node, is_class=True)
                    )

        for fn in self._all_functions(tree):
            self._scan_function(graph, info, facts, fn, class_kinds)

        return facts

    # -- helpers --------------------------------------------------------
    @staticmethod
    def _all_functions(tree: ast.Module) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def _record_assignment(
        self,
        graph: ModuleGraph,
        info: ModuleInfo,
        facts: _ModuleFacts,
        targets: list[ast.expr],
        value: ast.expr | None,
        class_kinds: dict[str, set[str]] | None,
    ) -> None:
        if not isinstance(value, ast.Call):
            return
        kind = resource_kind_of(graph, info, value)
        if kind is None and class_kinds is not None:
            kind = self._instantiated_class_kind(graph, info, value, class_kinds)
        if kind is None:
            kind = self._instantiated_resource_class(graph, info, value)
        if kind is None:
            return
        for target in targets:
            if isinstance(target, ast.Name):
                facts.resources.append(_Resource(info, target.id, kind, value))

    def _instantiated_class_kind(
        self,
        graph: ModuleGraph,
        info: ModuleInfo,
        call: ast.Call,
        class_kinds: dict[str, set[str]],
    ) -> str | None:
        dotted = dotted_name(call.func)
        if dotted is None:
            return None
        kinds = class_kinds.get(dotted)
        if kinds:
            return sorted(kinds)[0]
        return None

    def _instantiated_resource_class(
        self, graph: ModuleGraph, info: ModuleInfo, call: ast.Call
    ) -> str | None:
        """Kind when a call instantiates a project class owning resources."""
        dotted = dotted_name(call.func)
        if dotted is None:
            return None
        resolved = graph.resolve_symbol(info, dotted)
        if resolved is None:
            return None
        owner, node = resolved
        if not isinstance(node, ast.ClassDef):
            return None
        kinds = self._class_resource_kinds(graph, owner, node)
        if kinds:
            return sorted(kinds)[0]
        return None

    def _class_resource_kinds(
        self, graph: ModuleGraph, info: ModuleInfo, cls: ast.ClassDef
    ) -> set[str]:
        return {
            kind
            for kind, _ in self._class_resource_attrs(graph, info, cls).values()
        }

    def _class_resource_attrs(
        self, graph: ModuleGraph, info: ModuleInfo, cls: ast.ClassDef
    ) -> dict[str, tuple[str, ast.AST]]:
        """``attr -> (kind, node)`` for resources stored on ``self``."""
        out: dict[str, tuple[str, ast.AST]] = {}
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            locals_: dict[str, tuple[str, ast.AST]] = {}
            for node in ast.walk(method):
                if isinstance(node, (ast.Assign, ast.AnnAssign)):
                    value = node.value
                    if not isinstance(value, ast.Call):
                        continue
                    kind = resource_kind_of(graph, info, value)
                    if kind is None:
                        continue
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            out[target.attr] = (kind, value)
                        elif isinstance(target, ast.Name):
                            locals_[target.id] = (kind, value)
                # Container store: ``self.<attr>.append(local)`` or
                # ``self.<attr>[k] = local`` where local holds a resource.
                elif isinstance(node, ast.Call):
                    func = node.func
                    if (
                        isinstance(func, ast.Attribute)
                        and func.attr in ("append", "add")
                        and isinstance(func.value, ast.Attribute)
                        and isinstance(func.value.value, ast.Name)
                        and func.value.value.id == "self"
                        and len(node.args) == 1
                        and isinstance(node.args[0], ast.Name)
                        and node.args[0].id in locals_
                    ):
                        kind, value = locals_[node.args[0].id]
                        out[func.value.attr] = (kind, value)
            for node in ast.walk(method):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Subscript)
                            and isinstance(target.value, ast.Attribute)
                            and isinstance(target.value.value, ast.Name)
                            and target.value.value.id == "self"
                            and isinstance(node.value, ast.Name)
                            and node.value.id in locals_
                        ):
                            kind, value = locals_[node.value.id]
                            out[target.value.attr] = (kind, value)
        return out

    def _scan_function(
        self,
        graph: ModuleGraph,
        info: ModuleInfo,
        facts: _ModuleFacts,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        class_kinds: dict[str, set[str]],
    ) -> None:
        global_names = {
            name
            for node in ast.walk(fn)
            if isinstance(node, ast.Global)
            for name in node.names
        }
        locals_: dict[str, tuple[str, ast.AST]] = {}
        fork_result_names: set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                value = node.value
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                if isinstance(value, ast.Call):
                    if _is_fork_call(graph, info, value):
                        for target in targets:
                            if isinstance(target, ast.Name):
                                fork_result_names.add(target.id)
                    kind = resource_kind_of(graph, info, value)
                    if kind is None:
                        kind = self._instantiated_class_kind(
                            graph, info, value, class_kinds
                        )
                    if kind is None:
                        kind = self._instantiated_resource_class(graph, info, value)
                    if kind is not None:
                        for target in targets:
                            if isinstance(target, ast.Name):
                                if target.id in global_names:
                                    facts.resources.append(
                                        _Resource(info, target.id, kind, value)
                                    )
                                else:
                                    locals_[target.id] = (kind, value)
                # Module-level container store from a function body:
                # ``_POOLS[key] = pool``.
                for target in targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in info.module_level_names
                        and isinstance(node.value, ast.Name)
                        and node.value.id in locals_
                    ):
                        kind, value = locals_[node.value.id]
                        facts.resources.append(
                            _Resource(info, target.value.id, kind, value)
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in ("append", "add")
                    and isinstance(func.value, ast.Name)
                    and func.value.id in info.module_level_names
                    and len(node.args) == 1
                    and isinstance(node.args[0], ast.Name)
                    and node.args[0].id in locals_
                ):
                    kind, value = locals_[node.args[0].id]
                    facts.resources.append(
                        _Resource(info, func.value.id, kind, value)
                    )
            elif isinstance(node, ast.If) and fork_result_names:
                if self._is_child_branch_test(node.test, fork_result_names):
                    for child in node.body:
                        for sub in ast.walk(child):
                            name = self._referenced_name(sub)
                            if name is not None:
                                facts.child_branch_names.add(name)

    @staticmethod
    def _is_child_branch_test(test: ast.expr, fork_names: set[str]) -> bool:
        return (
            isinstance(test, ast.Compare)
            and isinstance(test.left, ast.Name)
            and test.left.id in fork_names
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Eq)
            and len(test.comparators) == 1
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value == 0
        )

    @staticmethod
    def _referenced_name(node: ast.AST) -> str | None:
        if isinstance(node, ast.Name):
            return node.id
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return f"self.{node.attr}"
        return None

    def _atfork_referenced(self, info: ModuleInfo, call: ast.Call) -> set[str]:
        """Module-level names an at-fork registration re-initialises.

        Direct ``Name``/attribute arguments count; when an argument names a
        same-module function, every module-level name that function's body
        references (reads, writes, or declares ``global``) counts too — the
        handler *is* the re-init path.
        """
        names: set[str] = set()
        args: list[ast.expr] = list(call.args)
        args.extend(kw.value for kw in call.keywords)
        for arg in args:
            dotted = dotted_name(arg)
            if dotted is None:
                continue
            names.add(dotted.split(".", 1)[0])
            handler = info.functions.get(dotted.split(".", 1)[0])
            if handler is not None:
                for node in ast.walk(handler):
                    if isinstance(node, ast.Name):
                        names.add(node.id)
                    elif isinstance(node, ast.Global):
                        names.update(node.names)
        return names


register(ForkSafetyChecker)
