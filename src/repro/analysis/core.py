"""Core of the ``repro lint`` static-analysis framework (ISSUE 6 tentpole).

Five PRs of vectorized kernels and a concurrent serving tier left the
repro's correctness resting on *conventions*: every kernel keeps a
bit-matched scalar reference behind a toggle, every shared-cache attribute
is only touched under its lock, every float crossing the wire serialises at
full precision.  This package checks those conventions statically.

The pieces:

* :class:`Finding` — one structured diagnostic: checker id, severity,
  ``file:line:col`` location, message, and a *stable key* (derived from the
  enclosing symbol, never from line numbers) used by the allowlist so a
  grandfathered finding survives unrelated edits to the file.
* :class:`SourceFile` — a parsed module plus its comment-derived metadata:
  inline ``# repro: ignore[checker-id]`` suppressions, the module-level
  ``# repro: kernel`` marker, and per-function ``# repro: reference``
  markers (scalar reference implementations are exempt from the NumPy
  hygiene rules — keeping a deliberately scalar twin is the whole point of
  the kernel-parity contract).
* :class:`Checker` — the visitor-registry base: subclasses declare an
  ``id``/``description`` and implement :meth:`check_file` (per-file pass)
  and/or :meth:`check_project` (cross-file pass, e.g. matching kernel
  toggles in ``src/`` against parity tests in ``tests/``).

Suppression syntax (documented in ``docs/static-analysis.md``)::

    self.hits += 1  # repro: ignore[lock-discipline] counter is advisory
    # repro: ignore-file[numpy-hygiene]

An ignore comment suppresses matching findings reported *on its line*;
``ignore-file`` suppresses a checker for the whole module.  ``ignore[*]``
suppresses every checker.  Suppressed findings are counted (and shown with
``--show-suppressed``) so a gate can audit them.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from .graph import ModuleGraph

__all__ = [
    "Checker",
    "Finding",
    "Project",
    "SourceFile",
    "all_checkers",
    "get_checker",
    "register",
]

#: ``# repro: ignore[id, id2]`` — suppress findings on this line.
_IGNORE_RE = re.compile(r"#\s*repro:\s*ignore\[([\w\-*,\s]+)\]")
#: ``# repro: ignore-file[id]`` — suppress a checker for the whole module.
_IGNORE_FILE_RE = re.compile(r"#\s*repro:\s*ignore-file\[([\w\-*,\s]+)\]")
#: ``# repro: kernel`` — mark a module as a vectorized kernel (enables the
#: NumPy hygiene rules).
_KERNEL_RE = re.compile(r"#\s*repro:\s*kernel\b")
#: ``# repro: reference`` — mark a function as a deliberately scalar
#: reference implementation (exempt from NumPy hygiene).
_REFERENCE_RE = re.compile(r"#\s*repro:\s*reference\b")


@dataclass(frozen=True)
class Finding:
    """One structured diagnostic emitted by a checker."""

    checker: str
    severity: str  # "error" | "warning"
    path: str  # posix-relative to the lint root
    line: int
    col: int
    message: str
    #: Stable identity for allowlisting: ``checker:path:symbol-context``.
    #: Never derived from line numbers, so entries survive unrelated edits.
    key: str

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict[str, object]:
        return {
            "checker": self.checker,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "key": self.key,
        }


class SourceFile:
    """A parsed Python module plus its lint-relevant comment metadata."""

    def __init__(self, path: Path, rel: str, text: str) -> None:
        self.path = path
        self.rel = rel
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=str(path))
        self._line_ignores: dict[int, set[str]] = {}
        self._file_ignores: set[str] = set()
        self.is_kernel = False
        self._reference_lines: set[int] = set()
        for lineno, line in enumerate(self.lines, start=1):
            match = _IGNORE_FILE_RE.search(line)
            if match:
                self._file_ignores.update(_split_ids(match.group(1)))
            else:
                match = _IGNORE_RE.search(line)
                if match:
                    self._line_ignores[lineno] = _split_ids(match.group(1))
            if _KERNEL_RE.search(line):
                self.is_kernel = True
            if _REFERENCE_RE.search(line):
                self._reference_lines.add(lineno)

    # ------------------------------------------------------------------
    def is_suppressed(self, finding: Finding) -> bool:
        """Whether an inline/file ignore comment covers this finding."""
        if self._matches(self._file_ignores, finding.checker):
            return True
        ids = self._line_ignores.get(finding.line)
        return ids is not None and self._matches(ids, finding.checker)

    @staticmethod
    def _matches(ids: set[str], checker: str) -> bool:
        return "*" in ids or checker in ids

    def is_reference(self, node: ast.AST) -> bool:
        """Whether a function is marked ``# repro: reference``.

        The marker may sit on the ``def`` line itself, on the line directly
        above it, or on a decorator line.
        """
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return False
        candidates = {node.lineno, node.lineno - 1}
        for decorator in node.decorator_list:
            candidates.add(decorator.lineno)
            candidates.add(decorator.lineno - 1)
        return bool(candidates & self._reference_lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SourceFile({self.rel!r})"


def _split_ids(raw: str) -> set[str]:
    return {part.strip() for part in raw.split(",") if part.strip()}


@dataclass
class Project:
    """Everything a cross-file pass may look at."""

    src_files: list[SourceFile] = field(default_factory=list)
    test_files: list[SourceFile] = field(default_factory=list)
    _graph: object = field(default=None, repr=False, compare=False)

    def all_files(self) -> Iterator[SourceFile]:
        yield from self.src_files
        yield from self.test_files

    def graph(self) -> "ModuleGraph":
        """The repo graph (imports + symbol tables) over ``src`` modules.

        Built once per lint run and shared by every cross-file pass — the
        "repo-graph phase" of ISSUE 9.  Only ``src`` files participate:
        the whole-program passes reason about production modules, and test
        modules routinely do things (fixtures, monkeypatching) the passes
        would misread as hazards.
        """
        if self._graph is None:
            from .graph import ModuleGraph

            self._graph = ModuleGraph(self.src_files)
        graph: ModuleGraph = self._graph  # type: ignore[assignment]
        return graph


class Checker:
    """Base class of the visitor registry.

    Subclasses set ``id``/``description``/``severity`` and override
    :meth:`check_file` (called once per ``src`` file) and/or
    :meth:`check_project` (called once with the whole :class:`Project`,
    for contracts that span files).
    """

    id: str = ""
    description: str = ""
    severity: str = "error"

    def check_file(self, source: SourceFile) -> list[Finding]:
        return []

    def check_project(self, project: Project) -> list[Finding]:
        return []

    # ------------------------------------------------------------------
    def finding(
        self,
        source: SourceFile,
        node: ast.AST | None,
        message: str,
        key_context: str,
        severity: str | None = None,
    ) -> Finding:
        line = getattr(node, "lineno", 1) if node is not None else 1
        col = getattr(node, "col_offset", 0) if node is not None else 0
        return Finding(
            checker=self.id,
            severity=severity or self.severity,
            path=source.rel,
            line=line,
            col=col + 1,
            message=message,
            key=f"{self.id}:{source.rel}:{key_context}",
        )


_REGISTRY: dict[str, Checker] = {}


def register(cls: type[Checker]) -> type[Checker]:
    """Class decorator adding a checker (by its ``id``) to the registry."""
    if not cls.id:
        raise ValueError(f"checker {cls.__name__} needs a non-empty id")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate checker id {cls.id!r}")
    _REGISTRY[cls.id] = cls()
    return cls


def all_checkers() -> dict[str, Checker]:
    """Registered checkers by id (registration order preserved)."""
    return dict(_REGISTRY)


def get_checker(checker_id: str) -> Checker:
    try:
        return _REGISTRY[checker_id]
    except KeyError:
        raise KeyError(
            f"unknown checker {checker_id!r}; available: {sorted(_REGISTRY)}"
        ) from None


# ---------------------------------------------------------------------------
# Shared AST helpers used by several checkers.
# ---------------------------------------------------------------------------
def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def is_self_attribute(node: ast.AST) -> str | None:
    """The attribute name for a ``self.X`` access, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def iter_methods(
    class_def: ast.ClassDef,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in class_def.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def walk_skipping(node: ast.AST, skip: tuple[type, ...]) -> Iterator[ast.AST]:
    """Like :func:`ast.walk` but does not descend into ``skip`` node types."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, skip):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def call_keywords(node: ast.Call) -> dict[str, ast.expr]:
    return {kw.arg: kw.value for kw in node.keywords if kw.arg is not None}


def iterate_sources(files: Iterable[SourceFile]) -> Iterator[SourceFile]:
    yield from files
