"""``repro lint``: AST-based invariant analysis for the repro codebase.

Eight codebase-specific checkers guard the conventions the kernels and the
serving tier rely on (see ``docs/static-analysis.md``):

========================  ==================================================
``lock-discipline``       lock-guarded attributes only touched under the
                          lock; no raw ``threading.Lock()`` outside
                          ``repro/locking.py``
``kernel-parity``         every reference toggle has an explicit parity test
``numpy-hygiene``         ``# repro: kernel`` modules stay vectorized/narrow
``async-blocking``        no blocking calls inside ``async def`` bodies
``wire-precision``        floats cross ``protocol.py`` bit-exact, unrounded
``fork-safety``           process-global resources crossing a fork boundary
                          have an ``os.register_at_fork`` re-init path
``lock-order``            the static lock-acquisition graph is acyclic
``pool-payload``          process-pool payloads are module-level callables
                          plus picklable-by-construction values
========================  ==================================================

The last three are *whole-program* passes built on the repo graph
(:mod:`repro.analysis.graph`, cached on the
:class:`~repro.analysis.core.Project`); the runtime complement of
``lock-order`` lives in :mod:`repro.locking` behind
``REPRO_LOCK_SANITIZER=1``.

Importing this package registers all checkers; :mod:`repro.analysis.runner`
drives them and the ``repro lint`` CLI subcommand renders the result.
"""

from __future__ import annotations

from .core import Checker, Finding, Project, SourceFile, all_checkers, get_checker

# Importing the checker modules registers them (order = report order).
from . import lock_discipline as _lock_discipline  # noqa: F401
from . import kernel_parity as _kernel_parity  # noqa: F401
from . import numpy_hygiene as _numpy_hygiene  # noqa: F401
from . import async_blocking as _async_blocking  # noqa: F401
from . import wire_precision as _wire_precision  # noqa: F401
from . import fork_safety as _fork_safety  # noqa: F401
from . import lock_order as _lock_order  # noqa: F401
from . import pool_payload as _pool_payload  # noqa: F401
from . import error_taxonomy as _error_taxonomy  # noqa: F401

from .runner import (
    LintConfigError,
    LintResult,
    load_allowlist,
    load_project,
    render_json,
    render_text,
    run_lint,
)

__all__ = [
    "Checker",
    "Finding",
    "LintConfigError",
    "LintResult",
    "Project",
    "SourceFile",
    "all_checkers",
    "get_checker",
    "load_allowlist",
    "load_project",
    "render_json",
    "render_text",
    "run_lint",
]
