"""``repro lint``: AST-based invariant analysis for the repro codebase.

Five codebase-specific checkers guard the conventions the kernels and the
serving tier rely on (see ``docs/static-analysis.md``):

========================  ==================================================
``lock-discipline``       lock-guarded attributes only touched under the lock
``kernel-parity``         every reference toggle has an explicit parity test
``numpy-hygiene``         ``# repro: kernel`` modules stay vectorized/narrow
``async-blocking``        no blocking calls inside ``async def`` bodies
``wire-precision``        floats cross ``protocol.py`` bit-exact, unrounded
========================  ==================================================

Importing this package registers all checkers; :mod:`repro.analysis.runner`
drives them and the ``repro lint`` CLI subcommand renders the result.
"""

from __future__ import annotations

from .core import Checker, Finding, Project, SourceFile, all_checkers, get_checker

# Importing the checker modules registers them (order = report order).
from . import lock_discipline as _lock_discipline  # noqa: F401
from . import kernel_parity as _kernel_parity  # noqa: F401
from . import numpy_hygiene as _numpy_hygiene  # noqa: F401
from . import async_blocking as _async_blocking  # noqa: F401
from . import wire_precision as _wire_precision  # noqa: F401

from .runner import (
    LintConfigError,
    LintResult,
    load_allowlist,
    load_project,
    render_json,
    render_text,
    run_lint,
)

__all__ = [
    "Checker",
    "Finding",
    "LintConfigError",
    "LintResult",
    "Project",
    "SourceFile",
    "all_checkers",
    "get_checker",
    "load_allowlist",
    "load_project",
    "render_json",
    "render_text",
    "run_lint",
]
