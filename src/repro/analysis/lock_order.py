"""Lock-order checker: the static acquisition graph must be acyclic.

Two locks acquired in opposite orders by two threads deadlock; the runtime
sanitizer (:mod:`repro.locking`) catches the orders a test run actually
*executes*, and this pass catches the orders the code could execute.  The
graph is seeded from ``make_lock`` call sites — the lock's string-literal
name is its stable node id (anonymous locks fall back to the binding's
``module.Class.attr`` path) — which is why raw ``threading.Lock()``
construction outside ``repro/locking.py`` is a separate ``lock-discipline``
finding: unnamed locks would be invisible here.

Edges come from two places:

* **nested ``with`` scopes** — ``with a: with b:`` records ``a -> b``;
* **one level of interprocedural expansion** — a call made while holding
  ``a`` to a function whose body acquires ``b`` records ``a -> b``.  Call
  targets resolve through the repo graph (same-class methods via
  ``self.x()``, module functions, from-imports); unresolvable calls are
  silently skipped (under-approximate, stay precise).

Findings: one per strongly connected component with a cycle, keyed by the
sorted lock names (``cycle:a->b``) so the key is stable under edits; plus a
direct finding for nested re-acquisition of a *non-reentrant* lock, which
deadlocks a single thread with no second party needed.  Reentrant locks
skip self-edges — re-entry is their job.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from .core import Checker, Finding, Project, SourceFile, dotted_name, register
from .graph import ModuleGraph, ModuleInfo

__all__ = ["LockOrderChecker"]

_LOCK_FACTORY_TARGETS = frozenset({"repro.locking.make_lock", "make_lock"})


@dataclass(frozen=True)
class _LockDef:
    """One ``make_lock`` binding: node id + where it was bound."""

    name: str
    reentrant: bool
    source: SourceFile
    node: ast.AST


@dataclass
class _Summary:
    """Lock behaviour of one function/method."""

    acquires: set[str] = field(default_factory=set)
    #: Directly observed edges ``(held, acquired)`` with a witness node.
    edges: list[tuple[str, str, SourceFile, ast.AST]] = field(default_factory=list)
    #: Calls made while holding locks: (held names, call node).
    held_calls: list[tuple[tuple[str, ...], ast.Call]] = field(default_factory=list)
    #: Nested non-reentrant re-acquisitions (lock def, witness node).
    self_deadlocks: list[tuple[_LockDef, SourceFile, ast.AST]] = field(
        default_factory=list
    )


class LockOrderChecker(Checker):
    id = "lock-order"
    description = (
        "the static lock-acquisition graph (nested `with` scopes plus one "
        "level of calls between lock-holding functions) must be acyclic"
    )
    severity = "error"

    def check_project(self, project: Project) -> list[Finding]:
        graph = project.graph()
        self._bindings: dict[tuple[str, str, str], _LockDef] = {}
        for info in graph.iter_modules():
            self._collect_bindings(graph, info)
        self._defs_by_name = {d.name: d for d in self._bindings.values()}

        summaries: dict[tuple[str, str, str], _Summary] = {}
        for info in graph.iter_modules():
            for cls_name, fn in self._iter_functions(info):
                summaries[(info.name, cls_name, fn.name)] = self._summarise(
                    graph, info, cls_name, fn
                )

        findings: list[Finding] = []
        edges: dict[tuple[str, str], tuple[SourceFile, ast.AST]] = {}
        for (module, cls_name, _), summary in summaries.items():
            info = graph.modules[module]
            for held, acquired, source, node in summary.edges:
                edges.setdefault((held, acquired), (source, node))
            for lock_def, source, node in summary.self_deadlocks:
                findings.append(
                    self.finding(
                        source,
                        node,
                        f"nested re-acquisition of non-reentrant lock "
                        f"`{lock_def.name}` deadlocks the acquiring thread; "
                        f"use `make_lock(..., reentrant=True)` or restructure",
                        key_context=f"self-cycle:{lock_def.name}",
                    )
                )
            # One level of interprocedural expansion.
            for held_names, call in summary.held_calls:
                callee = self._resolve_callee(graph, info, cls_name, call)
                if callee is None:
                    continue
                callee_summary = summaries.get(callee)
                if callee_summary is None:
                    continue
                for held in held_names:
                    for acquired in callee_summary.acquires:
                        if acquired != held:
                            edges.setdefault(
                                (held, acquired), (info.source, call)
                            )

        findings.extend(self._cycle_findings(edges))
        return findings

    # ------------------------------------------------------------------
    # Binding collection: which expressions denote which named lock.
    # ------------------------------------------------------------------
    def _collect_bindings(self, graph: ModuleGraph, info: ModuleInfo) -> None:
        def lock_def_for(
            call: ast.Call, fallback: str
        ) -> _LockDef | None:
            dotted = dotted_name(call.func)
            if dotted is None:
                return None
            target = graph.resolve_target(info, dotted)
            if target not in _LOCK_FACTORY_TARGETS and dotted not in _LOCK_FACTORY_TARGETS:
                return None
            name = fallback
            if call.args and isinstance(call.args[0], ast.Constant) and isinstance(
                call.args[0].value, str
            ) and call.args[0].value:
                name = call.args[0].value
            reentrant = any(
                kw.arg == "reentrant"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in call.keywords
            )
            return _LockDef(name, reentrant, info.source, call)

        # Module-level: NAME = make_lock("x")
        for stmt in info.source.tree.body:
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)) and isinstance(
                stmt.value, ast.Call
            ):
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        lock = lock_def_for(
                            stmt.value, f"{info.name}.{target.id}"
                        )
                        if lock is not None:
                            self._bindings[(info.name, "", target.id)] = lock
        # Class attrs: self._x = make_lock("x") anywhere in any method.
        for cls in info.classes.values():
            for node in ast.walk(cls):
                if isinstance(node, (ast.Assign, ast.AnnAssign)) and isinstance(
                    node.value, ast.Call
                ):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            lock = lock_def_for(
                                node.value,
                                f"{info.name}.{cls.name}.{target.attr}",
                            )
                            if lock is not None:
                                self._bindings[
                                    (info.name, cls.name, target.attr)
                                ] = lock

    def _lock_for_expr(
        self, graph: ModuleGraph, info: ModuleInfo, cls_name: str, expr: ast.expr
    ) -> _LockDef | None:
        if isinstance(expr, ast.Name):
            return self._bindings.get((info.name, "", expr.id))
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            return self._bindings.get((info.name, cls_name, expr.attr))
        # Imported module-level lock: ``locking_mod.GUARD``.
        dotted = dotted_name(expr)
        if dotted is not None:
            target = graph.resolve_target(info, dotted)
            parts = target.split(".")
            for cut in range(len(parts) - 1, 0, -1):
                module_name = ".".join(parts[:cut])
                if module_name in graph.modules and cut == len(parts) - 1:
                    return self._bindings.get((module_name, "", parts[-1]))
        return None

    # ------------------------------------------------------------------
    # Function summaries.
    # ------------------------------------------------------------------
    @staticmethod
    def _iter_functions(
        info: ModuleInfo,
    ) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
        for fn in info.functions.values():
            yield "", fn
        for cls in info.classes.values():
            for node in cls.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield cls.name, node

    def _summarise(
        self,
        graph: ModuleGraph,
        info: ModuleInfo,
        cls_name: str,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> _Summary:
        summary = _Summary()
        self._scan_block(graph, info, cls_name, fn.body, (), summary)
        return summary

    def _scan_block(
        self,
        graph: ModuleGraph,
        info: ModuleInfo,
        cls_name: str,
        stmts: Sequence[ast.stmt],
        held: tuple[_LockDef, ...],
        summary: _Summary,
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # a nested def runs when called, not where defined
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                acquired: list[_LockDef] = []
                for item in stmt.items:
                    lock = self._lock_for_expr(
                        graph, info, cls_name, item.context_expr
                    )
                    if lock is None:
                        continue
                    if any(h.name == lock.name for h in held):
                        if not lock.reentrant:
                            summary.self_deadlocks.append(
                                (lock, info.source, stmt)
                            )
                        continue
                    summary.acquires.add(lock.name)
                    for h in held:
                        summary.edges.append(
                            (h.name, lock.name, info.source, stmt)
                        )
                    acquired.append(lock)
                self._scan_block(
                    graph, info, cls_name, stmt.body, held + tuple(acquired), summary
                )
            else:
                if held:
                    held_names = tuple(h.name for h in held)
                    for node in self._shallow_calls(stmt):
                        summary.held_calls.append((held_names, node))
                for body in self._child_blocks(stmt):
                    self._scan_block(graph, info, cls_name, body, held, summary)

    @staticmethod
    def _child_blocks(stmt: ast.stmt) -> Iterator[Sequence[ast.stmt]]:
        for name in ("body", "orelse", "finalbody"):
            block = getattr(stmt, name, None)
            if block:
                yield block
        for handler in getattr(stmt, "handlers", ()):
            yield handler.body

    @staticmethod
    def _shallow_calls(stmt: ast.stmt) -> Iterator[ast.Call]:
        """Call nodes in a statement, without descending into child blocks."""
        queue: list[ast.AST] = []
        if isinstance(stmt, (ast.If, ast.While)):
            queue.append(stmt.test)
        elif isinstance(stmt, ast.For):
            queue.append(stmt.iter)
        elif isinstance(stmt, (ast.Try,)):
            return
        else:
            queue.append(stmt)
        for root in queue:
            for node in ast.walk(root):
                if isinstance(node, ast.Call):
                    yield node

    def _resolve_callee(
        self,
        graph: ModuleGraph,
        info: ModuleInfo,
        cls_name: str,
        call: ast.Call,
    ) -> tuple[str, str, str] | None:
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and cls_name
        ):
            return (info.name, cls_name, func.attr)
        dotted = dotted_name(func)
        if dotted is None:
            return None
        resolved = graph.resolve_symbol(info, dotted)
        if resolved is None:
            return None
        owner, node = resolved
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return (owner.name, "", node.name)
        return None

    # ------------------------------------------------------------------
    # Cycle detection (Tarjan SCC over the merged edge graph).
    # ------------------------------------------------------------------
    def _cycle_findings(
        self, edges: dict[tuple[str, str], tuple[SourceFile, ast.AST]]
    ) -> list[Finding]:
        adjacency: dict[str, list[str]] = {}
        for a, b in edges:
            adjacency.setdefault(a, []).append(b)
            adjacency.setdefault(b, [])

        index: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        sccs: list[list[str]] = []
        counter = [0]

        def strongconnect(v: str) -> None:
            index[v] = lowlink[v] = counter[0]
            counter[0] += 1
            stack.append(v)
            on_stack.add(v)
            for w in adjacency[v]:
                if w not in index:
                    strongconnect(w)
                    lowlink[v] = min(lowlink[v], lowlink[w])
                elif w in on_stack:
                    lowlink[v] = min(lowlink[v], index[w])
            if lowlink[v] == index[v]:
                component: list[str] = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    component.append(w)
                    if w == v:
                        break
                sccs.append(component)

        for v in sorted(adjacency):
            if v not in index:
                strongconnect(v)

        findings: list[Finding] = []
        for component in sccs:
            if len(component) < 2:
                continue  # self-loops were never recorded as edges
            names = sorted(component)
            witness_edges = [
                (a, b)
                for (a, b) in edges
                if a in component and b in component
            ]
            details = "; ".join(
                f"`{a}` -> `{b}` at {edges[(a, b)][0].rel}:"
                f"{getattr(edges[(a, b)][1], 'lineno', 1)}"
                for a, b in sorted(witness_edges)
            )
            source, node = edges[sorted(witness_edges)[0]]
            findings.append(
                self.finding(
                    source,
                    node,
                    f"lock-order cycle between {', '.join(f'`{n}`' for n in names)}: "
                    f"{details} — two threads taking these paths concurrently "
                    f"deadlock; impose a single global order",
                    key_context="cycle:" + "->".join(names),
                )
            )
        return findings


register(LockOrderChecker)
