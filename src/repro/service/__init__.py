"""Multi-query plan service and serving stack over the batched cost engine.

Two entry layers share one evaluation core:

* **library** — ``PlanService.plan_many`` answers a batch of
  optimisation/what-if requests through the mixed-series engine and the
  process-wide, thread-safe, LRU-evicting ``SharedEstimateCache``; batch
  formation (which requests share a solve) is an injectable strategy.
* **server** — ``PlanServer`` speaks a versioned JSON-lines protocol
  (``protocol``) over TCP/unix sockets; a ``MicroBatchScheduler`` coalesces
  requests across clients into single ``plan_many`` calls with weighted
  fair queuing, token-bucket admission control and per-request deadlines.
  ``connect_plan_client`` is the matching asyncio client.
"""

from ..costmodel.batch import (
    SharedEstimateCache,
    reset_shared_estimate_cache,
    shared_estimate_cache,
)
from ..costmodel.cachestore import (
    CacheStoreError,
    EstimateCacheStore,
    PersistentEstimateCache,
    open_persistent_cache,
)
from .api import (
    OPTIMIZE_SCHEMES,
    WHAT_IF,
    PlanRequest,
    PlanResponse,
    WorkloadError,
    load_workload,
)
from .protocol import (
    ERROR_ADMISSION,
    ERROR_CODES,
    ERROR_DEADLINE,
    ERROR_INTERNAL,
    ERROR_INVALID,
    ERROR_SHUTDOWN,
    ERROR_TAXONOMY,
    ERROR_UNSUPPORTED_VERSION,
    ERROR_WORKER_LOST,
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    Envelope,
    ErrorReply,
    PlanResult,
    PlanSubmit,
    ProtocolError,
    is_retryable,
)
from .pool import PoolConfig, WorkerPool, build_worker_server, run_worker
from .scheduler import MicroBatchScheduler, SchedulerError, TokenBucket
from .server import (
    PlanClient,
    PlanServer,
    PlanServerError,
    RetryingPlanClient,
    RetryPolicy,
    clear_stale_unix_socket,
    connect_plan_client,
    connect_retrying_client,
)
from .service import PlanService, dedup_tasks

__all__ = [
    "CacheStoreError",
    "ERROR_ADMISSION",
    "ERROR_CODES",
    "ERROR_DEADLINE",
    "ERROR_INTERNAL",
    "ERROR_INVALID",
    "ERROR_SHUTDOWN",
    "ERROR_TAXONOMY",
    "ERROR_UNSUPPORTED_VERSION",
    "ERROR_WORKER_LOST",
    "Envelope",
    "ErrorReply",
    "EstimateCacheStore",
    "MicroBatchScheduler",
    "OPTIMIZE_SCHEMES",
    "PROTOCOL_VERSION",
    "PersistentEstimateCache",
    "PlanClient",
    "PlanRequest",
    "PlanResponse",
    "PlanResult",
    "PlanServer",
    "PlanServerError",
    "PlanService",
    "PlanSubmit",
    "PoolConfig",
    "ProtocolError",
    "RetryPolicy",
    "RetryingPlanClient",
    "SUPPORTED_VERSIONS",
    "SchedulerError",
    "SharedEstimateCache",
    "TokenBucket",
    "WHAT_IF",
    "WorkerPool",
    "WorkloadError",
    "build_worker_server",
    "clear_stale_unix_socket",
    "connect_plan_client",
    "connect_retrying_client",
    "dedup_tasks",
    "is_retryable",
    "load_workload",
    "open_persistent_cache",
    "reset_shared_estimate_cache",
    "run_worker",
    "shared_estimate_cache",
]
