"""Multi-query plan service over the batched cost-model engine.

``PlanService`` accepts many concurrent optimisation/what-if requests,
groups them by their calibrated-steps fingerprint, and evaluates the stacked
candidate ratio matrices through one process-wide, thread-safe, LRU-evicting
``SharedEstimateCache`` — so N similar planning questions cost about one
vectorized engine invocation instead of N scalar optimisations.
"""

from ..costmodel.batch import (
    SharedEstimateCache,
    reset_shared_estimate_cache,
    shared_estimate_cache,
)
from .api import (
    OPTIMIZE_SCHEMES,
    WHAT_IF,
    PlanRequest,
    PlanResponse,
    WorkloadError,
    load_workload,
)
from .service import PlanService

__all__ = [
    "OPTIMIZE_SCHEMES",
    "PlanRequest",
    "PlanResponse",
    "PlanService",
    "SharedEstimateCache",
    "WHAT_IF",
    "WorkloadError",
    "load_workload",
    "reset_shared_estimate_cache",
    "shared_estimate_cache",
]
