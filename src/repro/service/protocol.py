"""Versioned wire protocol of the plan server (ISSUE 4 tentpole).

The serving stack speaks JSON lines: every message is one :class:`Envelope`
serialised as a single ``\\n``-terminated JSON object.  An envelope names its
``kind`` (what the message is), carries the protocol schema ``version`` it
was written against, an optional ``seq`` correlation number (echoed verbatim
in the reply, so a client may pipeline many requests per connection and
match responses arriving out of order), and a ``payload`` object whose shape
the kind determines.

Typed payload wrappers sit on top of the envelopes:

* :class:`PlanSubmit` — one :class:`~repro.service.api.PlanRequest` plus an
  optional relative deadline (``timeout_s``);
* :class:`PlanResult` — the :class:`~repro.service.api.PlanResponse` plus
  serving metadata (queueing delay, the size of the micro-batch that
  answered it);
* :class:`ErrorReply` — the structured error model: a machine-readable
  ``code`` from :data:`ERROR_CODES`, a human-readable ``message`` and an
  optional ``detail`` object.

Responses cross the wire at **full float precision** (``json`` round-trips
Python floats exactly via ``repr``), unlike the CLI-facing
``PlanResponse.to_dict`` which rounds ratios for display — the server's
acceptance gate compares served plans *bit-identically* against direct
``plan_many`` calls.

Version negotiation is per message: every envelope states its version and
the receiver answers any unsupported one with an ``error`` envelope of code
``unsupported-version`` whose detail lists :data:`SUPPORTED_VERSIONS` (a
``hello`` exchange at connect time surfaces the mismatch before any work is
submitted).  Decoding problems never tear down the transport — they produce
:class:`ProtocolError`, which the server maps onto an error envelope on the
same connection.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..costmodel.abstract import SeriesEstimate
from .api import PlanRequest, PlanResponse, WorkloadError

__all__ = [
    "ERROR_ADMISSION",
    "ERROR_CODES",
    "ERROR_DEADLINE",
    "ERROR_INTERNAL",
    "ERROR_INVALID",
    "ERROR_SHUTDOWN",
    "ERROR_TAXONOMY",
    "ERROR_UNSUPPORTED_VERSION",
    "ERROR_WORKER_LOST",
    "Envelope",
    "ErrorReply",
    "KIND_ERROR",
    "KIND_HELLO",
    "KIND_HELLO_OK",
    "KIND_PLAN_RESULT",
    "KIND_PLAN_SUBMIT",
    "KIND_STATS",
    "KIND_STATS_REPLY",
    "PROTOCOL_VERSION",
    "PlanResult",
    "PlanSubmit",
    "ProtocolError",
    "SUPPORTED_VERSIONS",
    "is_retryable",
    "negotiate_version",
    "response_from_wire",
    "response_to_wire",
]

#: Current protocol schema version; bump on incompatible envelope changes.
PROTOCOL_VERSION = 1
#: Versions this build can speak.  A server answers other versions with an
#: ``unsupported-version`` error naming this tuple.
SUPPORTED_VERSIONS = (1,)

# ---------------------------------------------------------------------------
# Envelope kinds.
# ---------------------------------------------------------------------------
KIND_HELLO = "hello"  #: client -> server: identify + negotiate version
KIND_HELLO_OK = "hello.ok"  #: server -> client: negotiated settings
KIND_PLAN_SUBMIT = "plan.submit"  #: client -> server: one plan request
KIND_PLAN_RESULT = "plan.result"  #: server -> client: the answered plan
KIND_STATS = "stats"  #: client -> server: ask for server/scheduler counters
KIND_STATS_REPLY = "stats.reply"  #: server -> client: the counters
KIND_ERROR = "error"  #: server -> client: structured failure

# ---------------------------------------------------------------------------
# Structured error codes.
# ---------------------------------------------------------------------------
ERROR_INVALID = "invalid-request"  #: malformed envelope or plan payload
ERROR_UNSUPPORTED_VERSION = "unsupported-version"  #: version negotiation failed
ERROR_DEADLINE = "deadline-exceeded"  #: the request's deadline expired queued
ERROR_ADMISSION = "admission-rejected"  #: the client's token bucket ran dry
ERROR_SHUTDOWN = "server-shutdown"  #: the server closed with work pending
ERROR_INTERNAL = "internal-error"  #: the evaluation itself raised
ERROR_WORKER_LOST = "worker-lost"  #: the worker serving the connection died mid-request

ERROR_CODES = (
    ERROR_INVALID,
    ERROR_UNSUPPORTED_VERSION,
    ERROR_DEADLINE,
    ERROR_ADMISSION,
    ERROR_SHUTDOWN,
    ERROR_INTERNAL,
    ERROR_WORKER_LOST,
)

#: The error-code table: every code this build can emit, classified by
#: whether a client may safely retry the request.  Plan requests are pure
#: computation (idempotent by construction — same request, same plan,
#: bit-identically), so retryability is purely about whether the *condition*
#: is transient: a dead worker, a drained token bucket or a shutting-down
#: server will heal; a malformed request or an evaluation bug will not.
#: The ``error-taxonomy`` lint checker enforces that every code constructed
#: in ``service/`` is registered here with an explicit classification.
ERROR_TAXONOMY: dict[str, bool] = {
    ERROR_INVALID: False,
    ERROR_UNSUPPORTED_VERSION: False,
    ERROR_DEADLINE: True,
    ERROR_ADMISSION: True,
    ERROR_SHUTDOWN: True,
    ERROR_INTERNAL: False,
    ERROR_WORKER_LOST: True,
}


def is_retryable(code: str) -> bool:
    """Whether a client may safely retry a request that failed with ``code``.

    Unknown codes are *not* retryable: a client that does not understand a
    failure must not blind-retry it (the server may grow new permanent
    failure codes faster than clients upgrade).
    """
    return ERROR_TAXONOMY.get(code, False)


class ProtocolError(ValueError):
    """Raised for malformed or unsupported wire messages.

    Carries the structured error ``code`` the peer should be answered with.
    """

    def __init__(self, message: str, code: str = ERROR_INVALID) -> None:
        super().__init__(message)
        self.code = code


@dataclass(frozen=True)
class Envelope:
    """One wire message: a kind, a schema version, a payload, a correlation seq."""

    kind: str
    payload: Mapping[str, Any] = field(default_factory=dict)
    version: int = PROTOCOL_VERSION
    #: Correlation number assigned by the sender of a request and echoed in
    #: the reply; ``None`` for unsolicited messages.
    seq: int | None = None

    def to_json(self) -> str:
        """The envelope as one JSON line (no trailing newline)."""
        body: dict[str, Any] = {"kind": self.kind, "v": self.version}
        if self.seq is not None:
            body["seq"] = self.seq
        body["payload"] = dict(self.payload)
        return json.dumps(body, separators=(",", ":"))

    def to_bytes(self) -> bytes:
        return (self.to_json() + "\n").encode("utf-8")

    @classmethod
    def from_json(cls, line: str | bytes) -> "Envelope":
        """Decode one JSON line; raises :class:`ProtocolError` on bad shape."""
        if isinstance(line, (bytes, bytearray)):
            line = line.decode("utf-8", errors="replace")
        try:
            body = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"envelope is not valid JSON: {exc}") from exc
        if not isinstance(body, dict):
            raise ProtocolError(
                f"envelope must be a JSON object, got {type(body).__name__}"
            )
        kind = body.get("kind")
        if not isinstance(kind, str) or not kind:
            raise ProtocolError("envelope needs a string 'kind'")
        version = body.get("v", PROTOCOL_VERSION)
        if not isinstance(version, int) or isinstance(version, bool):
            raise ProtocolError("envelope version 'v' must be an integer")
        seq = body.get("seq")
        if seq is not None and (not isinstance(seq, int) or isinstance(seq, bool)):
            raise ProtocolError("envelope 'seq' must be an integer")
        payload = body.get("payload", {})
        if not isinstance(payload, dict):
            raise ProtocolError("envelope 'payload' must be an object")
        return cls(kind=kind, payload=payload, version=version, seq=seq)


def negotiate_version(requested: int) -> int:
    """The version to speak for a peer's ``requested`` one.

    Raises :class:`ProtocolError` (code ``unsupported-version``) when this
    build cannot speak it; the caller turns that into a structured error
    reply naming :data:`SUPPORTED_VERSIONS`.
    """
    if requested in SUPPORTED_VERSIONS:
        return requested
    raise ProtocolError(
        f"protocol version {requested} is not supported; this server speaks "
        f"{list(SUPPORTED_VERSIONS)}",
        code=ERROR_UNSUPPORTED_VERSION,
    )


# ---------------------------------------------------------------------------
# Full-precision response serialisation.
# ---------------------------------------------------------------------------
def response_to_wire(response: PlanResponse) -> dict[str, Any]:
    """A :class:`PlanResponse` as a JSON-safe dict at full float precision.

    ``json`` serialises floats via ``repr`` and parses them back to the
    identical IEEE-754 value, so a wire round trip is bit-exact — the
    property the server's parity gate (served plans vs direct ``plan_many``)
    depends on.  ``PlanResponse.to_dict`` stays the human/CLI-facing view.
    """
    estimate = response.estimate
    return {
        "id": response.request_id,
        "scheme": response.scheme,
        "ratios": [float(r) for r in response.ratios],
        "evaluations": int(response.evaluations),
        "group_size": int(response.group_size),
        "estimate": {
            "ratios": [float(r) for r in estimate.ratios],
            "cpu_step_s": [float(x) for x in estimate.cpu_step_s],
            "gpu_step_s": [float(x) for x in estimate.gpu_step_s],
            "cpu_delay_s": [float(x) for x in estimate.cpu_delay_s],
            "gpu_delay_s": [float(x) for x in estimate.gpu_delay_s],
            "intermediate_bytes": float(estimate.intermediate_bytes),
        },
    }


def _float_list(payload: Mapping[str, Any], key: str, where: str) -> list[float]:
    values = payload.get(key)
    if not isinstance(values, list):
        raise ProtocolError(f"{where}: '{key}' must be a list of numbers")
    try:
        return [float(v) for v in values]
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"{where}: '{key}': {exc}") from exc


def response_from_wire(payload: Mapping[str, Any]) -> PlanResponse:
    """Rebuild a :class:`PlanResponse` from :func:`response_to_wire` output."""
    if not isinstance(payload, Mapping):
        raise ProtocolError("plan result payload must be an object")
    raw_estimate = payload.get("estimate")
    if not isinstance(raw_estimate, Mapping):
        raise ProtocolError("plan result: 'estimate' must be an object")
    estimate = SeriesEstimate(
        ratios=_float_list(raw_estimate, "ratios", "estimate"),
        cpu_step_s=_float_list(raw_estimate, "cpu_step_s", "estimate"),
        gpu_step_s=_float_list(raw_estimate, "gpu_step_s", "estimate"),
        cpu_delay_s=_float_list(raw_estimate, "cpu_delay_s", "estimate"),
        gpu_delay_s=_float_list(raw_estimate, "gpu_delay_s", "estimate"),
        intermediate_bytes=float(raw_estimate.get("intermediate_bytes", 0.0)),
    )
    try:
        return PlanResponse(
            request_id=str(payload.get("id", "")),
            scheme=str(payload.get("scheme", "")),
            ratios=_float_list(payload, "ratios", "plan result"),
            estimate=estimate,
            evaluations=int(payload.get("evaluations", 0)),
            group_size=int(payload.get("group_size", 1)),
        )
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"plan result: {exc}") from exc


# ---------------------------------------------------------------------------
# Typed payloads.
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class PlanSubmit:
    """A ``plan.submit`` payload: one request plus its relative deadline."""

    request: PlanRequest
    #: Seconds (from server receipt) this request is willing to wait in the
    #: scheduler's queues; expired requests get an ``deadline-exceeded``
    #: error instead of an answer.  ``None`` means the server default.
    timeout_s: float | None = None

    def envelope(self, seq: int | None = None, version: int = PROTOCOL_VERSION) -> Envelope:
        payload: dict[str, Any] = {"request": self.request.to_dict()}
        if self.timeout_s is not None:
            payload["timeout_s"] = float(self.timeout_s)
        return Envelope(
            kind=KIND_PLAN_SUBMIT, payload=payload, version=version, seq=seq
        )

    @classmethod
    def from_envelope(cls, envelope: Envelope) -> "PlanSubmit":
        raw = envelope.payload.get("request")
        if not isinstance(raw, Mapping):
            raise ProtocolError("plan.submit needs a 'request' object")
        try:
            request = PlanRequest.from_dict(raw)
        except WorkloadError as exc:
            raise ProtocolError(f"invalid plan request: {exc}") from exc
        timeout_s = envelope.payload.get("timeout_s")
        if timeout_s is not None:
            try:
                timeout_s = float(timeout_s)
            except (TypeError, ValueError) as exc:
                raise ProtocolError(f"'timeout_s': {exc}") from exc
            # isfinite: a NaN deadline compares False against every clock
            # reading and would silently behave as "no deadline".
            if not (math.isfinite(timeout_s) and timeout_s > 0.0):
                raise ProtocolError("'timeout_s' must be positive and finite")
        return cls(request=request, timeout_s=timeout_s)


@dataclass
class PlanResult:
    """A ``plan.result`` payload: the answer plus serving metadata."""

    response: PlanResponse
    #: Seconds the request spent queued before its micro-batch was formed.
    queued_s: float = 0.0
    #: How many requests the answering ``plan_many`` micro-batch carried.
    batch_size: int = 1

    def envelope(self, seq: int | None = None, version: int = PROTOCOL_VERSION) -> Envelope:
        return Envelope(
            kind=KIND_PLAN_RESULT,
            payload={
                "plan": response_to_wire(self.response),
                "queued_s": float(self.queued_s),
                "batch_size": int(self.batch_size),
            },
            version=version,
            seq=seq,
        )

    @classmethod
    def from_envelope(cls, envelope: Envelope) -> "PlanResult":
        plan = envelope.payload.get("plan")
        if not isinstance(plan, Mapping):
            raise ProtocolError("plan.result needs a 'plan' object")
        try:
            queued_s = float(envelope.payload.get("queued_s", 0.0))
            batch_size = int(envelope.payload.get("batch_size", 1))
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"plan.result metadata: {exc}") from exc
        return cls(
            response=response_from_wire(plan),
            queued_s=queued_s,
            batch_size=batch_size,
        )


@dataclass(frozen=True)
class ErrorReply:
    """An ``error`` payload: the structured error model.

    ``code`` is machine-readable (one of :data:`ERROR_CODES`; unknown codes
    must be treated as ``internal-error`` by clients so the server can grow
    new ones), ``message`` is for humans, ``request_id`` names the plan
    request at fault when there is one, and ``detail`` carries
    code-specific structure (e.g. the supported versions, or a retry hint).
    """

    code: str
    message: str
    request_id: str = ""
    detail: Mapping[str, Any] = field(default_factory=dict)

    @property
    def retryable(self) -> bool:
        """This code's classification in :data:`ERROR_TAXONOMY` (the wire
        copy of the flag is advisory; both ends of this build share the
        table, so the property is the source of truth)."""
        return is_retryable(self.code)

    def envelope(self, seq: int | None = None, version: int = PROTOCOL_VERSION) -> Envelope:
        payload: dict[str, Any] = {
            "code": self.code,
            "message": self.message,
            "retryable": self.retryable,
        }
        if self.request_id:
            payload["id"] = self.request_id
        if self.detail:
            payload["detail"] = dict(self.detail)
        return Envelope(kind=KIND_ERROR, payload=payload, version=version, seq=seq)

    @classmethod
    def from_envelope(cls, envelope: Envelope) -> "ErrorReply":
        code = envelope.payload.get("code")
        if not isinstance(code, str) or not code:
            raise ProtocolError("error payload needs a string 'code'")
        detail = envelope.payload.get("detail", {})
        if not isinstance(detail, Mapping):
            raise ProtocolError("error 'detail' must be an object")
        retryable = envelope.payload.get("retryable")
        if retryable is not None and not isinstance(retryable, bool):
            raise ProtocolError("error 'retryable' must be a boolean")
        return cls(
            code=code,
            message=str(envelope.payload.get("message", "")),
            request_id=str(envelope.payload.get("id", "")),
            detail=dict(detail),
        )
