"""Request/response API of the multi-query plan service.

A :class:`PlanRequest` names one planning question against the cost model: a
calibrated step series plus either a co-processing scheme to optimise
(``PL``/``OL``/``DD``/``CPU``/``GPU``) or a ``WHAT-IF`` ratio vector to
estimate as-is.  :class:`PlanResponse` carries the chosen ratios, the full
reference :class:`~repro.costmodel.abstract.SeriesEstimate` and bookkeeping
about how the request was served (how many engine evaluations it cost and how
many sibling requests shared its work).

Both sides (de)serialise to plain dicts, so a JSON workload file maps 1:1
onto a list of requests — that is the on-disk format the ``repro plan`` CLI
subcommand reads and the format :func:`load_workload` validates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from ..costmodel.abstract import CostModelError, SeriesEstimate, StepCost
from ..costmodel.batch import Fingerprint, steps_fingerprint
from ..costmodel.optimizer import DEFAULT_DELTA

__all__ = [
    "OPTIMIZE_SCHEMES",
    "PlanRequest",
    "PlanResponse",
    "WHAT_IF",
    "WorkloadError",
    "load_workload",
]

#: Schemes the service optimises (dispatching to ``optimize_scheme``).
OPTIMIZE_SCHEMES = ("PL", "OL", "DD", "CPU", "GPU", "CPU-ONLY", "GPU-ONLY")

#: Pseudo-scheme: estimate the request's own ratio vector instead of
#: optimising one (the paper's what-if questions).
WHAT_IF = "WHAT-IF"

#: Identity of a request's *answer* (fingerprint, scheme, delta, ratios):
#: equal keys are served by one solve.
TaskKey = tuple[Fingerprint, str, float, "tuple[float, ...] | None"]


class WorkloadError(ValueError):
    """Raised for malformed plan requests or workload files."""


@dataclass(frozen=True)
class PlanRequest:
    """One planning question for :class:`~repro.service.PlanService`."""

    steps: tuple[StepCost, ...]
    scheme: str = "PL"
    delta: float = DEFAULT_DELTA
    #: Required for ``WHAT-IF`` requests; ignored otherwise.
    ratios: tuple[float, ...] | None = None
    request_id: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "steps", tuple(self.steps))
        object.__setattr__(self, "scheme", str(self.scheme).upper())
        if self.ratios is not None:
            object.__setattr__(
                self, "ratios", tuple(float(r) for r in self.ratios)
            )
        if not self.steps:
            raise WorkloadError("a plan request needs at least one step")
        if not all(isinstance(s, StepCost) for s in self.steps):
            raise WorkloadError("steps must be StepCost instances")
        if self.scheme not in OPTIMIZE_SCHEMES and self.scheme != WHAT_IF:
            raise WorkloadError(
                f"unknown scheme {self.scheme!r}; expected one of "
                f"{OPTIMIZE_SCHEMES + (WHAT_IF,)}"
            )
        if not 0.0 < self.delta <= 1.0:
            raise WorkloadError(f"delta must be in (0, 1], got {self.delta}")
        if self.scheme == WHAT_IF:
            if self.ratios is None:
                raise WorkloadError("WHAT-IF requests need a ratio vector")
            if len(self.ratios) != len(self.steps):
                raise WorkloadError(
                    f"got {len(self.ratios)} ratios for {len(self.steps)} steps"
                )
            if any(not 0.0 <= r <= 1.0 for r in self.ratios):
                raise WorkloadError("WHAT-IF ratios must lie in [0, 1]")
        elif self.ratios is not None:
            # Ratios are documented as ignored for optimisation schemes;
            # dropping them keeps the task key (and so deduplication) from
            # treating otherwise-identical requests as distinct tasks.
            object.__setattr__(self, "ratios", None)

    # ------------------------------------------------------------------
    @property
    def fingerprint(self) -> Fingerprint:
        """Steps identity used for cross-request grouping and caching."""
        return steps_fingerprint(self.steps)

    @property
    def task_key(self) -> "TaskKey":
        """Identity of the *answer*: equal keys are served by one solve."""
        return (self.fingerprint, self.scheme, self.delta, self.ratios)

    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, payload: Mapping[str, Any], index: int = 0) -> "PlanRequest":
        """Build a request from one JSON-workload entry.

        Raises :class:`WorkloadError` (with the entry's position) on missing
        or malformed fields.
        """
        if not isinstance(payload, Mapping):
            raise WorkloadError(f"request #{index}: expected an object, got {type(payload).__name__}")
        raw_steps = payload.get("steps")
        if not isinstance(raw_steps, Sequence) or isinstance(raw_steps, (str, bytes)):
            raise WorkloadError(f"request #{index}: 'steps' must be a list of step objects")
        steps = []
        for j, raw in enumerate(raw_steps):
            if not isinstance(raw, Mapping):
                raise WorkloadError(f"request #{index} step #{j}: expected an object")
            try:
                steps.append(
                    StepCost(
                        name=str(raw.get("name", f"step{j}")),
                        n_tuples=int(raw["n_tuples"]),
                        cpu_unit_s=float(raw["cpu_unit_s"]),
                        gpu_unit_s=float(raw["gpu_unit_s"]),
                        intermediate_bytes_per_tuple=float(
                            raw.get("intermediate_bytes_per_tuple", 8.0)
                        ),
                    )
                )
            except KeyError as exc:
                raise WorkloadError(
                    f"request #{index} step #{j}: missing field {exc.args[0]!r}"
                ) from exc
            except (TypeError, ValueError, CostModelError) as exc:
                raise WorkloadError(f"request #{index} step #{j}: {exc}") from exc
        try:
            return cls(
                steps=tuple(steps),
                scheme=str(payload.get("scheme", "PL")),
                delta=float(payload.get("delta", DEFAULT_DELTA)),
                ratios=(
                    tuple(float(r) for r in payload["ratios"])
                    if payload.get("ratios") is not None
                    else None
                ),
                request_id=str(payload.get("id", payload.get("request_id", f"q{index}"))),
            )
        except WorkloadError as exc:
            raise WorkloadError(f"request #{index}: {exc}") from exc
        except (TypeError, ValueError) as exc:
            raise WorkloadError(f"request #{index}: {exc}") from exc

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "id": self.request_id,
            "scheme": self.scheme,
            "delta": self.delta,
            "steps": [
                {
                    "name": s.name,
                    "n_tuples": s.n_tuples,
                    "cpu_unit_s": s.cpu_unit_s,
                    "gpu_unit_s": s.gpu_unit_s,
                    "intermediate_bytes_per_tuple": s.intermediate_bytes_per_tuple,
                }
                for s in self.steps
            ],
        }
        if self.ratios is not None:
            payload["ratios"] = list(self.ratios)
        return payload


@dataclass
class PlanResponse:
    """The service's answer to one :class:`PlanRequest`."""

    request_id: str
    scheme: str
    ratios: list[float]
    estimate: SeriesEstimate
    #: Engine evaluations charged to this request's solve (0 when another
    #: request in the same batch already solved the identical task).
    evaluations: int = 0
    #: How many requests of the batch were answered by this solve.
    group_size: int = 1

    @property
    def total_s(self) -> float:
        return self.estimate.total_s

    def to_dict(self) -> dict[str, Any]:
        return {
            "id": self.request_id,
            "scheme": self.scheme,
            "ratios": [round(float(r), 12) for r in self.ratios],
            "total_s": self.estimate.total_s,
            "cpu_total_s": self.estimate.cpu_total_s,
            "gpu_total_s": self.estimate.gpu_total_s,
            "intermediate_bytes": self.estimate.intermediate_bytes,
            "evaluations": self.evaluations,
            "group_size": self.group_size,
        }


def load_workload(payload: Any) -> list[PlanRequest]:
    """Validate a decoded JSON workload into a list of requests.

    Accepts either a bare list of request objects or ``{"requests": [...]}``
    with an optional top-level ``"delta"`` default applied to requests that
    do not set their own.
    """
    default_delta: float | None = None
    if isinstance(payload, Mapping):
        if "requests" not in payload:
            raise WorkloadError("workload object needs a 'requests' list")
        if payload.get("delta") is not None:
            try:
                default_delta = float(payload["delta"])
            except (TypeError, ValueError) as exc:
                raise WorkloadError(f"workload 'delta': {exc}") from exc
        entries = payload["requests"]
    else:
        entries = payload
    if not isinstance(entries, Sequence) or isinstance(entries, (str, bytes)):
        raise WorkloadError("workload must be a list of requests or {'requests': [...]}")
    if not entries:
        raise WorkloadError("workload contains no requests")
    requests = []
    first_use: dict[str, int] = {}
    for i, entry in enumerate(entries):
        if (
            default_delta is not None
            and isinstance(entry, Mapping)
            and entry.get("delta") is None
        ):
            entry = {**entry, "delta": default_delta}
        request = PlanRequest.from_dict(entry, index=i)
        # Duplicate ids are rejected outright: responses are addressed by id,
        # so two distinct payloads sharing one id would silently collapse
        # into whichever answer the consumer reads last.  (Identical
        # *questions* under distinct ids are still deduplicated — by task
        # key, inside the service.)
        first = first_use.setdefault(request.request_id, i)
        if first != i:
            same = requests[first].task_key == request.task_key
            raise WorkloadError(
                f"request #{i}: duplicate request id {request.request_id!r} "
                f"(already used by request #{first}, which asks "
                f"{'the same' if same else 'a different'} question); give "
                "every request a unique id"
            )
        requests.append(request)
    return requests
