"""Pre-fork worker pool for the plan server (ISSUE 7 tentpole).

One event loop caps the serving tier at one core: PR 4's
:class:`~repro.service.server.PlanServer` evaluates micro-batches in a
single process, so a second CPU buys nothing.  This module adds the classic
pre-fork architecture on top of the existing transport:

* the **router** (parent) binds the unix/TCP listener sockets, forks N
  workers, then runs a tiny accept loop: every accepted connection's file
  descriptor is shipped to a worker over an ``SCM_RIGHTS`` unix socketpair
  (``socket.send_fds``), round-robin.  The router never reads a byte of the
  protocol — routing stays O(accept) while workers burn the cores.
* each **worker** runs its own event loop, :class:`MicroBatchScheduler` and
  :class:`PlanService` — the same single-process stack PR 4 shipped — and
  adopts routed descriptors via :meth:`PlanServer.adopt_connection`.  A
  worker that dies is reaped and respawned by the router on the next
  routing attempt, so the pool degrades by one connection, not permanently
  by one worker.
* **shared state** makes the fleet behave like one server: with a
  ``cache_store`` every worker opens the same SQLite WAL database through
  :func:`~repro.costmodel.cachestore.open_persistent_cache` (cache hits
  cross process boundaries and survive restarts), and admission control
  debits the store's shared token buckets via the scheduler's
  ``admission_controller`` hook — a client's rate limit holds fleet-wide,
  not per worker.  Fair-queuing weights are replicated into every worker
  from the same config, so relative service within any worker matches the
  configured ratios.

Shutdown is structured end to end: SIGTERM/SIGINT set the router's stop
event; the router closes its listeners, half-closes every worker channel
(the EOF is the worker's shutdown signal), and each worker drains — queued
requests fail with ``server-shutdown`` errors, the persistent cache flushes
its write-behind queue, and the process exits 0.

For tests the pool also runs with ``fork=False``: workers become daemon
threads running the identical ``run_worker`` coroutine, and descriptors
travel over the very same ``send_fds`` channels — the whole router/worker
protocol is exercised in one process (where coverage can see it) while
production uses real forked processes.
"""

from __future__ import annotations

import asyncio
import os
import signal
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from .. import faults
from ..costmodel.batch import EstimateCache, SharedEstimateCache
from ..costmodel.cachestore import PersistentEstimateCache, open_persistent_cache
from .scheduler import MicroBatchScheduler
from .server import PlanServer, clear_stale_unix_socket
from .service import PlanService

__all__ = [
    "PoolConfig",
    "WorkerPool",
    "install_stop_signals",
    "build_worker_server",
    "run_worker",
    "worker_main",
]

#: recv_fds ancillary capacity per message; the router sends one fd per
#: message but a slow worker may find several queued.
_MAX_FDS_PER_MESSAGE = 8


@dataclass
class PoolConfig:
    """Everything a worker needs to rebuild the serving stack post-fork.

    The scheduler knobs mirror :class:`MicroBatchScheduler`; ``cache_store``
    is the path of the shared SQLite estimate-cache database (``None`` gives
    every worker a private in-memory cache — fast, but hits stay
    per-process and die with it).
    """

    workers: int = 2
    unix_path: str | None = None
    tcp_host: str = "127.0.0.1"
    tcp_port: int | None = None
    cache_store: str | None = None
    window_s: float = 0.002
    max_batch: int = 64
    default_weight: float = 1.0
    weights: dict[str, float] = field(default_factory=dict)
    admission_rate: float | None = None
    admission_burst: float | None = None
    default_timeout_s: float | None = None
    listen_backlog: int = 128
    #: Crash-loop breaker: the first crash of a (recently healthy) worker
    #: respawns immediately; each *consecutive* crash after that doubles the
    #: respawn delay from ``respawn_backoff_s`` up to
    #: ``respawn_backoff_cap_s``, so a worker that dies at startup degrades
    #: the pool to fewer live workers instead of fork-spinning.  A worker
    #: that stays up ``respawn_reset_s`` clears its slot's crash history.
    respawn_backoff_s: float = 0.05
    respawn_backoff_cap_s: float = 2.0
    respawn_reset_s: float = 5.0


def build_worker_server(config: PoolConfig) -> tuple[PlanServer, PlanService]:
    """One worker's serving stack: cache, service, scheduler, server.

    With a ``cache_store`` the worker joins the shared persistent cache
    (falling back to a cold in-memory cache if the database is corrupt) and,
    when admission is configured, routes admission decisions through the
    store's fleet-wide token buckets instead of in-process ones.
    """
    cache: EstimateCache
    if config.cache_store:
        cache = open_persistent_cache(config.cache_store)
    else:
        cache = SharedEstimateCache()
    service = PlanService(cache=cache)
    kwargs: dict[str, Any] = {
        "window_s": config.window_s,
        "max_batch": config.max_batch,
        "default_weight": config.default_weight,
        "weights": dict(config.weights),
        "default_timeout_s": config.default_timeout_s,
    }
    if config.admission_rate is not None and isinstance(
        cache, PersistentEstimateCache
    ):
        store = cache.store
        rate = config.admission_rate
        burst = (
            config.admission_burst
            if config.admission_burst is not None
            else config.admission_rate
        )

        def admit(client: str) -> bool:
            return store.admission_acquire(client, rate, burst)

        kwargs["admission_controller"] = admit
    elif config.admission_rate is not None:
        kwargs["admission_rate"] = config.admission_rate
        kwargs["admission_burst"] = config.admission_burst
    scheduler = MicroBatchScheduler(service, **kwargs)
    return PlanServer(scheduler=scheduler), service


async def run_worker(
    channel: socket.socket,
    config: PoolConfig,
    index: int,
    *,
    install_signals: bool = False,
) -> dict[str, Any]:
    """One worker's serve loop: adopt routed descriptors until EOF/SIGTERM.

    ``channel`` is the worker's end of the router's socketpair.  Every
    ``SCM_RIGHTS`` message carries one accepted connection; EOF on the
    channel (the router shut its end) or SIGTERM/SIGINT (when
    ``install_signals`` and running on the main thread) starts the drain:
    the server closes (queued work fails with structured ``server-shutdown``
    errors) and the cache flushes to its backing store.  Returns the final
    server stats.
    """
    faults.check("worker.start", worker=index)
    server, service = build_worker_server(config)
    await server.scheduler.start()
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    adoptions: set["asyncio.Task[None]"] = set()
    channel.setblocking(False)

    def on_channel() -> None:
        while True:
            try:
                msg, fds, _, _ = socket.recv_fds(channel, 16, _MAX_FDS_PER_MESSAGE)
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                msg, fds = b"", []
            if not msg and not fds:
                loop.remove_reader(channel.fileno())
                stop.set()
                return
            for fd in fds:
                conn = socket.socket(fileno=fd)
                try:
                    conn.setblocking(False)
                except OSError:
                    conn.close()
                    continue
                task = loop.create_task(server.adopt_connection(conn))
                adoptions.add(task)
                task.add_done_callback(adoptions.discard)

    loop.add_reader(channel.fileno(), on_channel)
    signals_installed = install_stop_signals(loop, stop) if install_signals else []
    try:
        await stop.wait()
    finally:
        for signum in signals_installed:
            loop.remove_signal_handler(signum)
        loop.remove_reader(channel.fileno())
        if adoptions:
            await asyncio.gather(*adoptions, return_exceptions=True)
        await server.close()
        service.close()
        channel.close()
    return server.stats()


def install_stop_signals(
    loop: asyncio.AbstractEventLoop, stop: asyncio.Event
) -> list[int]:
    """Register SIGTERM/SIGINT to set ``stop``; returns what was installed.

    Signal handlers only work on the main thread (and not at all on some
    loops); callers running on worker threads simply skip them — their stop
    signal is channel EOF.
    """
    if threading.current_thread() is not threading.main_thread():
        return []
    installed: list[int] = []
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError, ValueError):
            continue
        installed.append(signum)
    return installed


def worker_main(
    channel: socket.socket, config: PoolConfig, index: int
) -> None:  # pragma: no cover - runs only in forked children
    """Forked-child entry point: serve, drain, ``os._exit``.

    ``os._exit`` (not ``sys.exit``) because a forked child must never run
    the parent's atexit hooks, flush the parent's inherited buffers twice,
    or unwind into the parent's stack frames.
    """
    code = 0
    try:
        asyncio.run(run_worker(channel, config, index, install_signals=True))
    except BaseException:
        code = 1
    os._exit(code)


@dataclass
class _Worker:
    """The router's handle on one worker: its channel and pid or thread.

    A slot whose worker crashed repeatedly and is waiting out its respawn
    backoff is represented by ``channel=None`` — the crash-loop breaker's
    "degraded" state: routing skips it until the backoff expires.
    """

    channel: socket.socket | None
    index: int
    pid: int | None = None
    thread: threading.Thread | None = None
    #: ``time.monotonic()`` at spawn; a worker alive longer than
    #: ``respawn_reset_s`` when it dies counts as a *fresh* crash, not a
    #: consecutive one.
    spawned_at: float = 0.0


class WorkerPool:
    """Router process: bind, fork N workers, route accepted connections.

    ``run_forever()`` binds the listeners and spawns the workers *before*
    creating the event loop (forking with no loop alive keeps the children
    free of inherited loop state), then runs the async accept/route loop
    until SIGTERM/SIGINT or :meth:`stop`.  ``fork=False`` swaps forked
    children for daemon threads running the identical worker coroutine —
    same channels, same fd passing — for in-process tests.
    """

    def __init__(self, config: PoolConfig, *, fork: bool = True) -> None:
        if config.workers < 1:
            raise ValueError("worker pool needs at least one worker")
        if not config.unix_path and config.tcp_port is None:
            raise ValueError("worker pool needs a unix path and/or a TCP port")
        self.config = config
        self.fork = fork
        self._workers: list[_Worker] = []
        self._listeners: list[socket.socket] = []
        self._rr = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self.connections_routed = 0
        self.connections_dropped = 0
        self.workers_respawned = 0
        #: Routing attempts that skipped a slot still in respawn backoff.
        self.respawns_suppressed = 0
        #: High-water mark of any slot's consecutive-crash count.
        self.max_consecutive_crashes = 0
        #: Per-slot consecutive crash counts (crash-loop breaker state).
        self._crashes: dict[int, int] = {}
        #: Per-slot earliest monotonic time the next respawn may happen.
        self._not_before: dict[int, float] = {}
        #: Resolved (host, port) once the TCP listener is bound.
        self.tcp_address: tuple[str, int] | None = None
        #: Bound unix socket path, until shutdown unlinks it.
        self.unix_path: str | None = None

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def run_forever(
        self, on_ready: Callable[["WorkerPool"], None] | None = None
    ) -> dict[str, Any]:
        """Bind, spawn, route until stopped; returns the final router stats.

        ``on_ready`` runs once the endpoints are bound and every worker is
        spawned — the moment a client may connect (the CLI prints its
        "listening on" lines from here; tests grab the resolved TCP port).
        """
        try:
            self._bind_listeners()
            for index in range(self.config.workers):
                self._workers.append(self._spawn_worker(index))
        except BaseException:
            self._close_listeners()
            self._stop_workers()
            raise
        return asyncio.run(self._serve(on_ready))

    def stop(self) -> None:
        """Request shutdown; safe to call from any thread (or a signal)."""
        loop, stop = self._loop, self._stop
        if loop is None or stop is None:
            return
        loop.call_soon_threadsafe(stop.set)

    async def _serve(
        self, on_ready: Callable[["WorkerPool"], None] | None
    ) -> dict[str, Any]:
        loop = asyncio.get_running_loop()
        self._loop = loop
        stop = self._stop = asyncio.Event()
        for listener in self._listeners:
            loop.add_reader(listener.fileno(), self._on_accept, listener)
        signals_installed = install_stop_signals(loop, stop)
        if on_ready is not None:
            on_ready(self)
        try:
            await stop.wait()
        finally:
            for signum in signals_installed:
                loop.remove_signal_handler(signum)
            for listener in self._listeners:
                loop.remove_reader(listener.fileno())
            self._close_listeners()
            self._stop_workers()
            self._loop = None
            self._stop = None
        return self.stats()

    # ------------------------------------------------------------------
    # Binding and spawning (synchronous: runs before the loop exists, so
    # forked children inherit no event-loop state).
    # ------------------------------------------------------------------
    def _bind_listeners(self) -> None:
        if self.config.unix_path:
            clear_stale_unix_socket(self.config.unix_path)
            unix_sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                unix_sock.bind(self.config.unix_path)
                unix_sock.listen(self.config.listen_backlog)
                unix_sock.setblocking(False)
            except OSError:
                unix_sock.close()
                raise
            self._listeners.append(unix_sock)
            self.unix_path = self.config.unix_path
        if self.config.tcp_port is not None:
            tcp_sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            try:
                tcp_sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
                tcp_sock.bind((self.config.tcp_host, self.config.tcp_port))
                tcp_sock.listen(self.config.listen_backlog)
                tcp_sock.setblocking(False)
            except OSError:
                tcp_sock.close()
                raise
            self._listeners.append(tcp_sock)
            sockname = tcp_sock.getsockname()
            self.tcp_address = (sockname[0], sockname[1])

    def _spawn_worker(self, index: int) -> _Worker:
        parent_end, child_end = socket.socketpair(socket.AF_UNIX, socket.SOCK_STREAM)
        if self.fork:
            pid = os.fork()
            if pid == 0:  # pragma: no cover - forked child
                # The child must hold exactly one inherited descriptor: its
                # own channel.  Everything else — the listeners, the parent
                # end, and crucially the *other* workers' parent ends
                # (keeping those open would hold their EOFs hostage) — is
                # closed before serving.
                parent_end.close()
                for listener in self._listeners:
                    listener.close()
                for other in self._workers:
                    if other.channel is None:  # slot degraded, nothing to close
                        continue
                    try:
                        other.channel.close()
                    except OSError:
                        pass
                worker_main(child_end, self.config, index)
                raise AssertionError("worker_main returned")
            child_end.close()
            return _Worker(
                channel=parent_end,
                index=index,
                pid=pid,
                spawned_at=time.monotonic(),
            )
        thread = threading.Thread(
            target=self._thread_worker_main,
            args=(child_end, index),
            name=f"plan-worker-{index}",
            daemon=True,
        )
        thread.start()
        return _Worker(
            channel=parent_end,
            index=index,
            thread=thread,
            spawned_at=time.monotonic(),
        )

    def _thread_worker_main(self, channel: socket.socket, index: int) -> None:
        try:
            asyncio.run(run_worker(channel, self.config, index))
        except Exception:
            # A crashed thread worker mirrors a crashed forked worker: its
            # channel dies and the router respawns on the next route.
            channel.close()

    # ------------------------------------------------------------------
    # Routing (event-loop callbacks; synchronous and non-blocking).
    # ------------------------------------------------------------------
    def _on_accept(self, listener: socket.socket) -> None:
        while True:
            try:
                conn, _ = listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return  # listener closed under us during shutdown
            self._route(conn)

    def _route(self, conn: socket.socket) -> None:
        """Ship one accepted connection to the next live worker.

        ``send_fds`` duplicates the descriptor into the worker at sendmsg
        time, so the router's copy is closed immediately either way.  A
        broken channel means a dead worker: the crash-loop breaker decides
        whether it respawns now (first crash: restart-warm when a cache
        store is configured) or sits out a doubling backoff (consecutive
        crashes: the pool degrades to fewer live workers instead of
        fork-spinning), and the connection tries the next slot; only a pool
        with every worker unreachable drops it.
        """
        with conn:
            for _ in range(len(self._workers)):
                worker = self._workers[self._rr % len(self._workers)]
                self._rr += 1
                if worker.channel is None:
                    revived = self._try_revive(worker)
                    if revived is None:
                        continue
                    worker = revived
                assert worker.channel is not None
                try:
                    socket.send_fds(worker.channel, [b"c"], [conn.fileno()])
                except OSError:
                    self._mark_crashed(worker)
                    continue
                self.connections_routed += 1
                # Fault-injection site: "kill worker k after N connections
                # routed to it" — fired after the send so the Nth request is
                # genuinely in flight when its worker dies.  The kill target
                # is the spec's selector (the worker just routed to, when
                # one is named).
                for spec in faults.fire("pool.route", worker=worker.index):
                    if spec.action == "kill":
                        self._kill_worker(
                            spec.worker if spec.worker is not None else worker.index
                        )
                return
            self.connections_dropped += 1

    def _try_revive(self, worker: _Worker) -> _Worker | None:
        """Respawn a degraded slot once its crash-loop backoff has expired."""
        if time.monotonic() < self._not_before.get(worker.index, 0.0):
            self.respawns_suppressed += 1
            return None
        replacement = self._spawn_worker(worker.index)
        self._workers[self._workers.index(worker)] = replacement
        self.workers_respawned += 1
        return replacement

    def _mark_crashed(self, worker: _Worker) -> None:
        """Reap a dead worker; respawn now or degrade the slot with backoff.

        The breaker: a worker that had been up at least ``respawn_reset_s``
        gets the benign interpretation (transient kill — respawn
        immediately, the pre-breaker behaviour).  Consecutive crashes mean
        the worker cannot hold (unwritable cache store, bad config): each
        one doubles the slot's backoff from ``respawn_backoff_s`` up to
        ``respawn_backoff_cap_s``, and until it expires the slot routes
        nothing — bounded respawn work no matter how fast crashes arrive.
        """
        if worker.channel is not None:
            try:
                worker.channel.close()
            except OSError:
                pass
        if worker.pid is not None:
            try:
                os.waitpid(worker.pid, os.WNOHANG)
            except ChildProcessError:
                pass
        now = time.monotonic()
        previous = self._crashes.get(worker.index, 0)
        healthy_run = now - worker.spawned_at >= self.config.respawn_reset_s
        crashes = 1 if previous == 0 or healthy_run else previous + 1
        self._crashes[worker.index] = crashes
        self.max_consecutive_crashes = max(self.max_consecutive_crashes, crashes)
        slot = self._workers.index(worker)
        if crashes == 1:
            self._workers[slot] = self._spawn_worker(worker.index)
            self.workers_respawned += 1
            return
        delay = min(
            self.config.respawn_backoff_cap_s,
            self.config.respawn_backoff_s * (2.0 ** (crashes - 2)),
        )
        self._not_before[worker.index] = now + delay
        self._workers[slot] = _Worker(
            channel=None, index=worker.index, spawned_at=now
        )

    def _kill_worker(self, index: int | None) -> None:
        """Fault-injection backend for ``pool.route`` kill specs.

        A forked worker dies for real (SIGKILL — no drain, in-flight
        requests lost); a thread worker cannot be killed, so its channel is
        torn down instead, which is detected identically by the router on
        the next route.  ``index=None`` kills the first live worker.
        """
        for worker in self._workers:
            if index is not None and worker.index != index:
                continue
            if worker.pid is not None:
                try:
                    os.kill(worker.pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass
            elif worker.channel is not None:
                try:
                    worker.channel.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
            return

    # ------------------------------------------------------------------
    # Shutdown (synchronous helpers driven from _serve's finally).
    # ------------------------------------------------------------------
    def _close_listeners(self) -> None:
        for listener in self._listeners:
            try:
                listener.close()
            except OSError:
                pass
        self._listeners.clear()
        if self.unix_path is not None:
            try:
                os.unlink(self.unix_path)
            except OSError:
                pass
            self.unix_path = None

    def _stop_workers(self, timeout_s: float = 10.0) -> None:
        """Half-close every channel (the workers' EOF), then reap/join.

        Workers drain on EOF: in-flight batches finish, queued requests get
        structured shutdown errors, persistent caches flush.  A forked
        worker that ignores the EOF past the deadline is killed — shutdown
        must terminate even if a worker wedged.
        """
        for worker in self._workers:
            if worker.channel is None:
                continue
            try:
                worker.channel.shutdown(socket.SHUT_WR)
            except OSError:
                pass
        deadline = time.monotonic() + timeout_s
        for worker in self._workers:
            if worker.pid is not None:
                self._reap(worker.pid, deadline)
            elif worker.thread is not None:
                worker.thread.join(timeout=max(0.1, deadline - time.monotonic()))
            if worker.channel is None:
                continue
            try:
                worker.channel.close()
            except OSError:
                pass
        self._workers.clear()

    @staticmethod
    def _reap(pid: int, deadline: float) -> None:
        while True:
            try:
                done, _ = os.waitpid(pid, os.WNOHANG)
            except ChildProcessError:
                return
            if done == pid:
                return
            if time.monotonic() >= deadline:
                break
            time.sleep(0.02)
        try:
            os.kill(pid, signal.SIGKILL)
            os.waitpid(pid, 0)
        except (ChildProcessError, ProcessLookupError):
            pass

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Router-side counters (per-worker stats live in the workers)."""
        return {
            "workers": self.config.workers,
            "mode": "fork" if self.fork else "thread",
            "connections_routed": self.connections_routed,
            "connections_dropped": self.connections_dropped,
            "workers_respawned": self.workers_respawned,
            "respawns_suppressed": self.respawns_suppressed,
            "max_consecutive_crashes": self.max_consecutive_crashes,
            "live_workers": sum(
                1 for worker in self._workers if worker.channel is not None
            ),
        }

