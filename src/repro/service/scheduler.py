"""Micro-batching scheduler with per-client fairness (ISSUE 4 tentpole).

The serving stack's throughput comes from one property of the engine: a
single ``plan_many(mixed=True)`` call over N requests costs roughly one
vectorized pass per *round*, not per request.  :class:`MicroBatchScheduler`
therefore never forwards requests one at a time — it coalesces everything
arriving within a configurable window (across all clients) into one
``plan_many`` micro-batch, and layers three serving policies on top:

* **weighted fair queuing** — every admitted request is tagged with a
  start-time-fair-queuing virtual finish time (``start = max(global vtime,
  client's last finish)``, ``finish = start + 1/weight``) and batches are
  formed in increasing tag order, so a backlogged weight-1 client cannot
  starve a weight-4 client: the heavier client gets ~4 batch slots for
  every 1 the light one gets while both have work queued;
* **token-bucket admission control** — per-client buckets (``rate`` tokens
  per second, ``burst`` capacity) reject floods *at submission time* with a
  structured ``admission-rejected`` error instead of letting them queue;
* **deadlines** — a request carries a relative timeout; if it is still
  queued when the deadline passes it is answered with a structured
  ``deadline-exceeded`` error and never reaches ``plan_many`` (so an
  expired request costs the shared :class:`EstimateCache` nothing).

The scheduler is transport-agnostic: :class:`~repro.service.server.PlanServer`
drives it from socket connections, tests and examples drive it directly with
:meth:`submit`.  Evaluation runs in a thread-pool executor by default so the
event loop keeps accepting (and coalescing) submissions while a batch
computes; answers are bit-identical to direct ``plan_many`` calls because the
scheduler only ever changes *which requests share a batch*, never how a task
is solved.
"""

from __future__ import annotations

import asyncio
import heapq
import math
import time
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Any, Callable

from .. import faults
from .api import PlanRequest
from .protocol import (
    ERROR_ADMISSION,
    ERROR_DEADLINE,
    ERROR_INTERNAL,
    ERROR_SHUTDOWN,
    PlanResult,
)
from .service import PlanService

__all__ = ["MicroBatchScheduler", "SchedulerError", "TokenBucket"]


class SchedulerError(Exception):
    """A structured scheduling failure (maps 1:1 onto an ``error`` reply)."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


class TokenBucket:
    """Per-client admission control: ``rate`` tokens/s, ``burst`` capacity.

    The bucket starts full, refills continuously and never exceeds its
    capacity, so a client may burst up to ``burst`` requests instantly but
    sustains only ``rate`` requests per second.
    """

    def __init__(
        self, rate: float, burst: float, clock: Callable[[], float] = time.monotonic
    ) -> None:
        # Explicit isfinite: NaN slips through a plain `<= 0` check and
        # would make every `tokens >= n` comparison False (reject all).
        if not (math.isfinite(rate) and rate > 0.0):
            raise ValueError("token bucket rate must be positive and finite")
        if not (math.isfinite(burst) and burst > 0.0):
            raise ValueError("token bucket burst must be positive and finite")
        self.rate = float(rate)
        self.capacity = float(burst)
        self.tokens = float(burst)
        self._clock = clock
        self._last = clock()

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; returns False (rejecting) otherwise."""
        now = self._clock()
        self.tokens = min(self.capacity, self.tokens + (now - self._last) * self.rate)
        self._last = now
        if self.tokens >= tokens:
            self.tokens -= tokens
            return True
        return False

    def is_full(self) -> bool:
        """True when the bucket has refilled to capacity.

        A full bucket is indistinguishable from a freshly created one, so
        its owner's admission state can be dropped without changing any
        future decision.
        """
        now = self._clock()
        self.tokens = min(self.capacity, self.tokens + (now - self._last) * self.rate)
        self._last = now
        return self.tokens >= self.capacity


@dataclass
class _Pending:
    """One queued request with its fairness tag and deadline."""

    request: PlanRequest
    client: str
    future: "asyncio.Future[PlanResult]"
    enqueued_at: float
    #: Absolute monotonic deadline, or None for no limit.
    deadline: float | None
    #: Start-time-fair-queuing virtual finish tag; batches form in tag order.
    vtime: float
    seq: int = field(default=0)


class MicroBatchScheduler:
    """Coalesce concurrent plan submissions into fair ``plan_many`` batches.

    Parameters
    ----------
    service:
        The :class:`PlanService` evaluating the batches (default: a fresh
        mixed-strategy service on the process-wide shared cache).
    window_s:
        Coalescing window: after a submission wakes an idle scheduler, it
        waits this long for more requests (from any client) before forming
        the batch.  ``0.0`` disables coalescing.
    max_batch:
        Hard cap on requests per ``plan_many`` call; ``max_batch=1`` with
        ``window_s=0.0`` degenerates to the naive one-request-per-call
        server the benchmark gate measures against.
    default_weight / weights:
        Fair-queuing weights; a weight-``w`` client gets ``w`` batch slots
        per slot of a weight-1 client while both are backlogged.
    admission_rate / admission_burst:
        Token-bucket admission per client; ``None`` disables admission
        control.
    admission_controller:
        Externalised admission: a callable mapping a client id to an
        admit/reject decision, replacing the in-process token buckets.
        The pre-fork worker pool injects the persistent store's shared
        bucket here so admission holds fleet-wide (every worker debits the
        same bucket), not per process.  It may block (e.g. on SQLite) —
        the scheduler calls it through the loop's thread-pool executor.
    default_timeout_s:
        Deadline applied to submissions that do not carry their own.
    use_executor:
        Evaluate batches in the event loop's thread-pool executor (default)
        so submissions keep landing — and coalescing — while a batch
        computes.  Disable for single-threaded determinism in tests.
    """

    def __init__(
        self,
        service: PlanService | None = None,
        *,
        window_s: float = 0.002,
        max_batch: int = 64,
        default_weight: float = 1.0,
        weights: dict[str, float] | None = None,
        admission_rate: float | None = None,
        admission_burst: float | None = None,
        admission_controller: Callable[[str], bool] | None = None,
        default_timeout_s: float | None = None,
        use_executor: bool = True,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        # All numeric knobs are validated with isfinite: NaN passes plain
        # `<= 0` checks and silently voids the policy it configures (NaN
        # finish tags make the fairness heap order arbitrary; a NaN-rate
        # bucket rejects every request).
        if not (math.isfinite(window_s) and window_s >= 0.0):
            raise ValueError("window_s must be non-negative")
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if not (math.isfinite(default_weight) and default_weight > 0.0):
            raise ValueError("default_weight must be positive")
        if admission_rate is not None and not (
            math.isfinite(admission_rate) and admission_rate > 0.0
        ):
            raise ValueError("admission_rate must be positive and finite")
        if admission_controller is not None and admission_rate is not None:
            raise ValueError(
                "pass either admission_controller (shared admission state) "
                "or admission_rate (in-process token buckets), not both"
            )
        if admission_burst is not None:
            if admission_rate is None:
                raise ValueError("admission_burst requires admission_rate")
            if not (math.isfinite(admission_burst) and admission_burst > 0.0):
                raise ValueError("admission_burst must be positive and finite")
        if not all(
            math.isfinite(weight) and weight > 0.0
            for weight in (weights or {}).values()
        ):
            raise ValueError("fair-queuing weights must be positive and finite")
        if default_timeout_s is not None and not (
            math.isfinite(default_timeout_s) and default_timeout_s > 0.0
        ):
            raise ValueError("default_timeout_s must be positive and finite")
        self.service = service if service is not None else PlanService()
        self.window_s = window_s
        self.max_batch = max_batch
        self.default_weight = default_weight
        self.weights: dict[str, float] = dict(weights or {})
        self.admission_rate = admission_rate
        self.admission_burst = admission_burst
        self._admission_controller = admission_controller
        self.default_timeout_s = default_timeout_s
        self.use_executor = use_executor
        self._clock = clock

        self._queues: dict[str, deque[_Pending]] = {}
        self._buckets: dict[str, TokenBucket] = {}
        self._finish_tags: dict[str, float] = {}
        self._vtime = 0.0
        self._seq = 0
        self._wakeup: asyncio.Event | None = None
        self._task: asyncio.Task | None = None
        self._closed = False

        self.requests_submitted = 0
        self.requests_completed = 0
        self.requests_rejected = 0
        self.requests_timed_out = 0
        self.batches_formed = 0
        self.batched_requests = 0
        #: Per-batch client composition (``Counter`` per formed batch), the
        #: observable the fairness tests pin down.  Bounded to the most
        #: recent 1024 batches so a long-lived server does not leak.
        self.batch_log: deque[Counter] = deque(maxlen=1024)

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Start the batching loop on the running event loop."""
        if self._task is not None:
            return
        self._closed = False
        self._wakeup = asyncio.Event()
        self._task = asyncio.get_running_loop().create_task(self._run())

    async def close(self) -> None:
        """Stop the loop; queued requests fail with ``server-shutdown``."""
        self._closed = True
        if self._task is not None:
            task, self._task = self._task, None
            if self._wakeup is not None:
                self._wakeup.set()
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
        abandoned: list[_Pending] = []
        for queue in self._queues.values():
            abandoned.extend(queue)
            queue.clear()
        self._queues.clear()
        for pending in abandoned:
            if not pending.future.done():
                pending.future.set_exception(
                    SchedulerError(ERROR_SHUTDOWN, "scheduler closed")
                )
                # Mark the exception retrieved: the awaiting submit may
                # itself have been cancelled by the shutdown, and an
                # orphaned future must not log a spurious traceback.
                pending.future.exception()

    def set_weight(self, client: str, weight: float) -> None:
        """Set one client's fair-queuing weight (takes effect on new submits)."""
        if not (math.isfinite(weight) and weight > 0.0):
            raise ValueError("weight must be positive and finite")
        self.weights[client] = weight

    # ------------------------------------------------------------------
    async def submit(
        self,
        request: PlanRequest,
        client_id: str = "",
        timeout_s: float | None = None,
    ) -> PlanResult:
        """Queue one request and await its micro-batched answer.

        Raises :class:`SchedulerError` with a structured code on admission
        rejection, deadline expiry or shutdown.
        """
        if self._task is None or self._closed:
            raise SchedulerError(ERROR_SHUTDOWN, "scheduler is not running")
        client = client_id or "anonymous"
        if self._admission_controller is not None:
            # Shared (fleet-wide) admission may hit disk: keep it off the
            # event loop.  Re-check liveness afterwards — the scheduler can
            # close while the decision is in flight.
            admitted = await asyncio.get_running_loop().run_in_executor(
                None, self._admission_controller, client
            )
            if self._task is None or self._closed:
                raise SchedulerError(ERROR_SHUTDOWN, "scheduler is not running")
            if not admitted:
                self.requests_rejected += 1
                raise SchedulerError(
                    ERROR_ADMISSION,
                    f"client {client!r} rejected by shared admission control; "
                    "retry later",
                )
        elif self.admission_rate is not None:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = self._buckets[client] = TokenBucket(
                    self.admission_rate,
                    self.admission_burst or self.admission_rate,
                    clock=self._clock,
                )
            if not bucket.try_acquire():
                self.requests_rejected += 1
                raise SchedulerError(
                    ERROR_ADMISSION,
                    f"client {client!r} exceeded {self.admission_rate:g} "
                    "requests/s; retry later",
                )

        now = self._clock()
        timeout = timeout_s if timeout_s is not None else self.default_timeout_s
        weight = self.weights.get(client, self.default_weight)
        start = max(self._vtime, self._finish_tags.get(client, 0.0))
        finish = start + 1.0 / weight
        self._finish_tags[client] = finish
        self._seq += 1
        pending = _Pending(
            request=request,
            client=client,
            future=asyncio.get_running_loop().create_future(),
            enqueued_at=now,
            deadline=None if timeout is None else now + timeout,
            vtime=finish,
            seq=self._seq,
        )
        self._queues.setdefault(client, deque()).append(pending)
        self.requests_submitted += 1
        assert self._wakeup is not None
        self._wakeup.set()
        return await pending.future

    # ------------------------------------------------------------------
    def _has_pending(self) -> bool:
        return any(self._queues.values())

    def _expire(self, now: float) -> None:
        """Fail every queued request whose deadline has passed.

        Expired requests never reach ``plan_many``: the shared cache sees no
        lookup, no insert — a timed-out question costs it nothing.
        """
        for queue in self._queues.values():
            alive: deque[_Pending] = deque()
            while queue:
                pending = queue.popleft()
                if pending.deadline is not None and now > pending.deadline:
                    self.requests_timed_out += 1
                    if not pending.future.done():
                        pending.future.set_exception(
                            SchedulerError(
                                ERROR_DEADLINE,
                                f"request {pending.request.request_id!r} "
                                f"missed its deadline after "
                                f"{now - pending.enqueued_at:.3f}s queued",
                            )
                        )
                else:
                    alive.append(pending)
            queue.extend(alive)

    def _form_batch(self, now: float) -> list[_Pending]:
        """Up to ``max_batch`` queued requests in fair virtual-time order.

        Per-client queues are FIFO and tags within a client increase, so a
        heap over the queue heads yields the globally tag-ordered merge.
        The global virtual time advances to the last dispatched tag, which
        is what lets a client that was idle jump ahead of a backlogged
        flood (its next start tag is ``max(vtime, own finish)``).
        """
        self._expire(now)
        heads = [
            (queue[0].vtime, queue[0].seq, client)
            for client, queue in self._queues.items()
            if queue
        ]
        heapq.heapify(heads)
        batch: list[_Pending] = []
        while heads and len(batch) < self.max_batch:
            _, _, client = heapq.heappop(heads)
            queue = self._queues[client]
            pending = queue.popleft()
            batch.append(pending)
            self._vtime = max(self._vtime, pending.vtime)
            if queue:
                heapq.heappush(heads, (queue[0].vtime, queue[0].seq, client))
        self._prune()
        return batch

    def _prune(self) -> None:
        """Drop per-client state that no longer influences any decision.

        Client identities are caller-supplied (hello handshake, or a fresh
        ``conn-N`` per anonymous connection), so on a long-lived server the
        per-client dicts would otherwise grow without bound.  Everything
        removed here is semantically inert: empty queues, finish tags
        already dominated by the global virtual time (``start = max(vtime,
        finish)`` yields the same tag with or without the entry), and
        admission buckets that have refilled to capacity.
        """
        for client in [c for c, queue in self._queues.items() if not queue]:
            del self._queues[client]
        for client in [
            c
            for c, finish in self._finish_tags.items()
            if finish <= self._vtime and c not in self._queues
        ]:
            del self._finish_tags[client]
        for client in [
            c
            for c, bucket in self._buckets.items()
            if c not in self._queues and bucket.is_full()
        ]:
            del self._buckets[client]

    async def _run(self) -> None:
        assert self._wakeup is not None
        while True:
            if not self._has_pending():
                self._wakeup.clear()
                await self._wakeup.wait()
            if self.window_s > 0.0:
                # The coalescing window: let concurrent clients' submissions
                # land before the batch is cut.
                await asyncio.sleep(self.window_s)
            else:
                # Yield once so submissions already scheduled on the loop
                # (e.g. pipelined lines from one connection) join the batch.
                await asyncio.sleep(0)
            batch = self._form_batch(self._clock())
            if not batch:
                continue
            await self._dispatch(batch)

    async def _dispatch(self, batch: list[_Pending]) -> None:
        requests = [pending.request for pending in batch]
        # Fault-injection site: slow batches (a GC pause, a cold cache, a
        # noisy neighbour) are *stretched time*, not failures — an async
        # sleep so the event loop keeps serving other connections, exactly
        # like a genuinely slow evaluation under use_executor.
        delay_s = faults.latency("scheduler.dispatch")
        if delay_s > 0.0:
            await asyncio.sleep(delay_s)
        try:
            if self.use_executor:
                responses = await asyncio.get_running_loop().run_in_executor(
                    None, self.service.plan_many, requests
                )
            else:
                responses = self.service.plan_many(requests)
        except asyncio.CancelledError:
            # close() cancelled the loop mid-batch.  These futures were
            # already popped off the queues, so the shutdown drain cannot
            # reach them — fail them here or their awaiters hang forever.
            for pending in batch:
                if not pending.future.done():
                    pending.future.set_exception(
                        SchedulerError(ERROR_SHUTDOWN, "scheduler closed mid-batch")
                    )
                    pending.future.exception()
            raise
        except Exception as exc:  # noqa: BLE001 - mapped to a structured error
            for pending in batch:
                if not pending.future.done():
                    pending.future.set_exception(
                        SchedulerError(ERROR_INTERNAL, f"plan evaluation failed: {exc}")
                    )
            return
        now = self._clock()
        self.batches_formed += 1
        self.batched_requests += len(batch)
        self.batch_log.append(Counter(pending.client for pending in batch))
        for pending, response in zip(batch, responses):
            self.requests_completed += 1
            if not pending.future.done():
                pending.future.set_result(
                    PlanResult(
                        response=response,
                        queued_s=now - pending.enqueued_at,
                        batch_size=len(batch),
                    )
                )

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Scheduler counters plus the underlying service's own stats."""
        return {
            "requests_submitted": self.requests_submitted,
            "requests_completed": self.requests_completed,
            "requests_rejected": self.requests_rejected,
            "requests_timed_out": self.requests_timed_out,
            "batches_formed": self.batches_formed,
            "batched_requests": self.batched_requests,
            "mean_batch_size": (
                self.batched_requests / self.batches_formed
                if self.batches_formed
                else 0.0
            ),
            "window_s": self.window_s,
            "max_batch": self.max_batch,
            "weights": dict(self.weights),
            "default_weight": self.default_weight,
            "shared_admission": self._admission_controller is not None,
            "service": self.service.stats(),
        }
