"""Asyncio JSON-lines plan server and client (ISSUE 4 tentpole).

:class:`PlanServer` is the transport layer of the serving stack: it accepts
connections on a TCP port and/or a unix domain socket, reads one
:class:`~repro.service.protocol.Envelope` per line, and feeds every
``plan.submit`` into the shared :class:`MicroBatchScheduler` — so requests
from *different connections* coalesce into the same ``plan_many``
micro-batches.  Replies are written back on the submitting connection,
tagged with the request's ``seq``, in completion order (a client may
pipeline any number of submissions and match answers by seq).

Malformed lines and unsupported protocol versions never tear a connection
down: they are answered with structured ``error`` envelopes and the
connection keeps serving.  Each connection's fair-queuing identity defaults
to a per-connection name and can be overridden by the ``hello`` handshake's
``client`` field (clients of one tenant may share an identity — and
therefore one fairness weight and admission bucket — across connections).

:func:`connect_plan_client` returns :class:`PlanClient`, the asyncio client
used by the tests, the benchmark gate, ``examples/plan_server.py`` and CI's
serve-gate; it raises :class:`PlanServerError` carrying the structured error
code when the server answers with one.
"""

from __future__ import annotations

import asyncio
import errno
import itertools
import os
import random
import socket
import stat
from dataclasses import dataclass
from typing import Any, Awaitable, Callable, Sequence

from .. import faults
from .api import PlanRequest
from .protocol import (
    ERROR_INTERNAL,
    ERROR_INVALID,
    ERROR_WORKER_LOST,
    KIND_ERROR,
    KIND_HELLO,
    KIND_HELLO_OK,
    KIND_PLAN_RESULT,
    KIND_PLAN_SUBMIT,
    KIND_STATS,
    KIND_STATS_REPLY,
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    Envelope,
    ErrorReply,
    PlanResult,
    PlanSubmit,
    ProtocolError,
    is_retryable,
    negotiate_version,
)
from .scheduler import MicroBatchScheduler, SchedulerError
from .service import PlanService

__all__ = [
    "PlanClient",
    "PlanServer",
    "PlanServerError",
    "RetryPolicy",
    "RetryingPlanClient",
    "clear_stale_unix_socket",
    "connect_plan_client",
    "connect_retrying_client",
]

#: Hard per-line bound; a line longer than this is a protocol violation, not
#: a workload (the largest legitimate submit is a few hundred steps).
MAX_LINE_BYTES = 4 * 1024 * 1024


def clear_stale_unix_socket(path: str) -> bool:
    """Unlink a dead predecessor's socket file so ``path`` can be re-bound.

    A crashed server (SIGKILL, OOM, power loss) leaves its unix socket file
    behind, and every restart then fails with ``EADDRINUSE`` until someone
    runs ``rm`` by hand.  The file alone does not prove a live server, so
    this probes it: a refused connection means nobody is listening and the
    file is stale garbage — unlink it.  A *successful* connection means the
    address genuinely is in use; the file is left alone and the caller's
    bind fails with the honest ``EADDRINUSE``.

    Returns True when a stale socket file was removed.  Non-socket files are
    never unlinked (a path collision with a regular file is a configuration
    error the bind should surface, not something to delete).
    """
    try:
        mode = os.lstat(path).st_mode
    except OSError:
        return False  # nothing there (or unreadable): let bind proceed
    if not stat.S_ISSOCK(mode):
        return False
    probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        probe.settimeout(0.5)
        probe.connect(path)
    except (ConnectionRefusedError, TimeoutError):
        pass  # dead socket: no listener behind the file
    except OSError as exc:
        if exc.errno not in (errno.ECONNREFUSED, errno.ENOENT):
            return False  # unexpected failure: do not guess, do not unlink
        if exc.errno == errno.ENOENT:
            return False  # raced away already
    else:
        return False  # a live server answered: the address is taken
    finally:
        probe.close()
    try:
        os.unlink(path)
    except OSError:
        return False
    return True


def _bind_unix_listener(path: str) -> socket.socket:
    """Probe-and-clear a stale predecessor, then bind ``path`` ourselves.

    Binding explicitly rather than letting asyncio do it matters: stdlib
    ``create_unix_server`` unlinks *any* pre-existing socket file at the
    path — including a live listener's — whereas a raw bind keeps the
    honest ``EADDRINUSE`` for a genuinely taken address.  (Socket creation
    and a unix-path bind are instantaneous syscalls, not blocking I/O.)
    """
    clear_stale_unix_socket(path)
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        sock.bind(path)
    except OSError:
        sock.close()
        raise
    return sock


def _unlink_unix_socket(path: str) -> None:
    """Best-effort removal of our own socket file on shutdown."""
    try:
        if stat.S_ISSOCK(os.lstat(path).st_mode):
            os.unlink(path)
    except OSError:
        pass


class PlanServerError(Exception):
    """Client-side mirror of a structured ``error`` reply.

    ``retryable`` is the code's classification in the protocol's error
    taxonomy — :class:`RetryingPlanClient` keys its bounded-retry decision
    off this flag and nothing else.
    """

    def __init__(self, code: str, message: str, request_id: str = "") -> None:
        super().__init__(message)
        self.code = code
        self.request_id = request_id
        self.retryable = is_retryable(code)


class PlanServer:
    """Serve plan requests over TCP and/or unix sockets via one scheduler.

    Either pass a preconfigured ``scheduler`` or let the server build one
    from the keyword knobs (which mirror
    :class:`~repro.service.scheduler.MicroBatchScheduler`).  One server may
    listen on several endpoints at once; all of them feed the same
    scheduler, cache and fairness state.
    """

    def __init__(
        self,
        service: PlanService | None = None,
        scheduler: MicroBatchScheduler | None = None,
        **scheduler_kwargs: Any,
    ) -> None:
        if scheduler is not None and (scheduler_kwargs or service is not None):
            raise ValueError(
                "pass either a preconfigured scheduler or service/scheduler "
                "knobs, not both"
            )
        self.scheduler = scheduler or MicroBatchScheduler(
            service if service is not None else PlanService(), **scheduler_kwargs
        )
        self._servers: list[asyncio.base_events.Server] = []
        self._conn_ids = itertools.count(1)
        self._handlers: set[asyncio.Task] = set()
        self._connections: set[asyncio.Task] = set()
        self.connections_served = 0
        #: (host, port) of the TCP endpoint once started (port resolved).
        self.tcp_address: tuple[str, int] | None = None
        #: Path of the unix endpoint once started.
        self.unix_path: str | None = None

    # ------------------------------------------------------------------
    async def start_unix(self, path: str) -> None:
        """Listen on a unix domain socket at ``path``.

        A stale socket file left by a crashed predecessor is probed and
        unlinked first (see :func:`clear_stale_unix_socket`), so an unclean
        restart binds cleanly; a path with a *live* listener still fails
        with ``EADDRINUSE``.
        """
        await self.scheduler.start()
        server = await asyncio.start_unix_server(
            self._handle_connection, sock=_bind_unix_listener(path),
            limit=MAX_LINE_BYTES,
        )
        self._servers.append(server)
        self.unix_path = path

    async def start_tcp(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Listen on TCP ``host:port`` (``port=0`` picks a free port)."""
        await self.scheduler.start()
        server = await asyncio.start_server(
            self._handle_connection, host, port, limit=MAX_LINE_BYTES
        )
        self._servers.append(server)
        sockname = server.sockets[0].getsockname()
        self.tcp_address = (sockname[0], sockname[1])

    async def adopt_connection(self, sock: "socket.socket") -> None:
        """Serve one already-accepted connection (pre-fork worker path).

        The worker pool's router accepts connections in the parent process
        and ships the connected file descriptors to workers over
        ``SCM_RIGHTS``; the worker wraps each adopted socket in asyncio
        streams here and serves it exactly like a connection accepted by
        :meth:`start_unix`/:meth:`start_tcp` — same handler, same scheduler,
        same ``close()`` cancellation path.  Returns once the handler task
        is spawned (not when the connection ends).
        """
        await self.scheduler.start()
        try:
            reader, writer = await asyncio.open_connection(
                sock=sock, limit=MAX_LINE_BYTES
            )
        except OSError:
            sock.close()
            return
        task = asyncio.get_running_loop().create_task(
            self._handle_connection(reader, writer)
        )
        # _handle_connection registers itself in _connections on first run,
        # but close() may win that race — track the task from birth so an
        # adopted connection can never outlive a closed server.
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)

    async def close(self) -> None:
        """Stop listening, drop connections, fail queued work structurally."""
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        self._servers.clear()
        # Connection handlers are spawned by asyncio's server machinery, not
        # by us — they must be cancelled explicitly or an already-connected
        # client would keep getting served by a "closed" server.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()
        for task in list(self._handlers):
            task.cancel()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)
        self._handlers.clear()
        await self.scheduler.close()
        if self.unix_path is not None:
            # Clean shutdowns must not leave the socket file behind — that
            # is exactly the stale-file mess start_unix has to mop up.
            _unlink_unix_socket(self.unix_path)
            self.unix_path = None

    async def __aenter__(self) -> "PlanServer":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections_served += 1
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        client_id = f"conn-{next(self._conn_ids)}"
        write_lock = asyncio.Lock()
        submits: set[asyncio.Task] = set()

        async def reply(envelope: Envelope) -> None:
            for spec in faults.fire("server.reply"):
                if spec.action == "reset":
                    # A mid-reply RST: the peer sees the connection torn down
                    # with the answer undelivered — the worker-lost failover
                    # path from the client's point of view.
                    writer.transport.abort()
                    raise ConnectionResetError("injected socket reset before reply")
            async with write_lock:
                writer.write(envelope.to_bytes())
                await writer.drain()

        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionError):
                    # Overlong line or a dropped peer: nothing sane to parse.
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                client_id = await self._handle_line(line, client_id, reply, submits)
        except asyncio.CancelledError:
            raise
        except (ConnectionError, OSError):
            pass  # the transport died under a reply; nothing left to serve
        finally:
            for task in submits:
                task.cancel()
            if submits:
                await asyncio.gather(*submits, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_line(
        self,
        line: bytes,
        client_id: str,
        reply: Any,
        submits: set[asyncio.Task],
    ) -> str:
        """Dispatch one wire line; returns the (possibly renamed) client id."""
        try:
            envelope = Envelope.from_json(line)
        except ProtocolError as exc:
            await reply(ErrorReply(code=exc.code, message=str(exc)).envelope())
            return client_id
        try:
            negotiate_version(envelope.version)
        except ProtocolError as exc:
            await reply(
                ErrorReply(
                    code=exc.code,
                    message=str(exc),
                    detail={"supported_versions": list(SUPPORTED_VERSIONS)},
                ).envelope(seq=envelope.seq)
            )
            return client_id

        if envelope.kind == KIND_HELLO:
            requested = envelope.payload.get("client")
            if isinstance(requested, str) and requested:
                client_id = requested
            await reply(
                Envelope(
                    kind=KIND_HELLO_OK,
                    payload={
                        "version": envelope.version,
                        "client": client_id,
                        "window_s": self.scheduler.window_s,
                        "max_batch": self.scheduler.max_batch,
                    },
                    seq=envelope.seq,
                )
            )
        elif envelope.kind == KIND_STATS:
            await reply(
                Envelope(
                    kind=KIND_STATS_REPLY, payload=self.stats(), seq=envelope.seq
                )
            )
        elif envelope.kind == KIND_PLAN_SUBMIT:
            try:
                submit = PlanSubmit.from_envelope(envelope)
            except ProtocolError as exc:
                await reply(
                    ErrorReply(code=exc.code, message=str(exc)).envelope(
                        seq=envelope.seq
                    )
                )
                return client_id
            # Served concurrently so one slow submit never blocks the
            # connection's read loop; the reply carries the submit's seq.
            task = asyncio.get_running_loop().create_task(
                self._serve_submit(submit, envelope.seq, client_id, reply)
            )
            submits.add(task)
            self._handlers.add(task)
            task.add_done_callback(submits.discard)
            task.add_done_callback(self._handlers.discard)
        else:
            await reply(
                ErrorReply(
                    code=ERROR_INVALID,
                    message=f"unknown envelope kind {envelope.kind!r}",
                ).envelope(seq=envelope.seq)
            )
        return client_id

    async def _serve_submit(
        self, submit: PlanSubmit, seq: int | None, client_id: str, reply: Any
    ) -> None:
        try:
            result = await self.scheduler.submit(
                submit.request, client_id=client_id, timeout_s=submit.timeout_s
            )
        except SchedulerError as exc:
            envelope = ErrorReply(
                code=exc.code,
                message=str(exc),
                request_id=submit.request.request_id,
            ).envelope(seq=seq)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - surfaced as structured error
            envelope = ErrorReply(
                code=ERROR_INTERNAL,
                message=f"unexpected serving failure: {exc}",
                request_id=submit.request.request_id,
            ).envelope(seq=seq)
        else:
            envelope = result.envelope(seq=seq)
        try:
            await reply(envelope)
        except (ConnectionError, OSError):
            pass  # the client went away; the answer has no recipient

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Server counters plus the scheduler's (which nest the service's)."""
        return {
            "connections_served": self.connections_served,
            "scheduler": self.scheduler.stats(),
        }


# ---------------------------------------------------------------------------
# Async client.
# ---------------------------------------------------------------------------
class PlanClient:
    """Pipelined asyncio client for :class:`PlanServer`.

    Every outgoing request gets a fresh ``seq``; a background reader task
    resolves the matching future when the reply lands, so any number of
    :meth:`submit` calls may be in flight concurrently on one connection.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        client_id: str = "",
        version: int = PROTOCOL_VERSION,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self.client_id = client_id
        self.version = version
        self._seq = itertools.count(1)
        self._pending: dict[int, asyncio.Future[Envelope]] = {}
        self._write_lock = asyncio.Lock()
        self._reader_task: asyncio.Task | None = None

    async def _start(self) -> None:
        self._reader_task = asyncio.get_running_loop().create_task(self._read_loop())

    async def _read_loop(self) -> None:
        try:
            while True:
                try:
                    line = await self._reader.readline()
                except ValueError:
                    break  # overlong server line; fail the pending futures
                if not line:
                    break
                try:
                    envelope = Envelope.from_json(line)
                except ProtocolError:
                    continue  # an unparseable server line matches no future
                if envelope.seq is None:
                    continue
                future = self._pending.pop(envelope.seq, None)
                if future is not None and not future.done():
                    future.set_result(envelope)
        except asyncio.CancelledError:
            raise
        except (ConnectionError, OSError):
            pass
        finally:
            # A connection that dies with requests in flight is the client's
            # view of a killed worker: fail the futures with the structured,
            # *retryable* worker-lost error so retry layers can resubmit
            # (plan requests are pure computation — idempotent by
            # construction) instead of surfacing a bare transport error.
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        PlanServerError(
                            ERROR_WORKER_LOST,
                            "connection closed with the request in flight",
                        )
                    )
            self._pending.clear()

    async def _request(self, envelope: Envelope) -> Envelope:
        assert envelope.seq is not None
        if self._reader_task is None or self._reader_task.done():
            # The read loop is gone (EOF, overlong line, closed socket): a
            # freshly registered future could never be resolved — fail fast
            # instead of letting the caller await forever on a half-open
            # connection whose write side still accepts bytes.
            raise PlanServerError(
                ERROR_WORKER_LOST, "plan server connection closed"
            )
        future: asyncio.Future[Envelope] = asyncio.get_running_loop().create_future()
        self._pending[envelope.seq] = future
        try:
            async with self._write_lock:
                self._writer.write(envelope.to_bytes())
                await self._writer.drain()
            return await future
        except BaseException:
            # The caller is taking an exception instead of the reply (write
            # failure, timeout cancellation): deregister the future so the
            # read loop's worker-lost fan-out never sets an exception nobody
            # retrieves.
            orphan = self._pending.pop(envelope.seq, None)
            if orphan is not None and not orphan.done():
                orphan.cancel()
            raise

    @staticmethod
    def _raise_on_error(envelope: Envelope) -> None:
        if envelope.kind == KIND_ERROR:
            error = ErrorReply.from_envelope(envelope)
            raise PlanServerError(error.code, error.message, error.request_id)

    # ------------------------------------------------------------------
    async def hello(self) -> dict[str, Any]:
        """Negotiate the protocol version and announce the client identity."""
        payload = {"client": self.client_id} if self.client_id else {}
        envelope = await self._request(
            Envelope(
                kind=KIND_HELLO,
                payload=payload,
                version=self.version,
                seq=next(self._seq),
            )
        )
        self._raise_on_error(envelope)
        return dict(envelope.payload)

    async def submit(
        self, request: PlanRequest, timeout_s: float | None = None
    ) -> PlanResult:
        """Submit one request; returns the result or raises the wire error."""
        envelope = await self._request(
            PlanSubmit(request=request, timeout_s=timeout_s).envelope(
                seq=next(self._seq), version=self.version
            )
        )
        self._raise_on_error(envelope)
        if envelope.kind != KIND_PLAN_RESULT:
            raise PlanServerError(
                ERROR_INVALID, f"expected plan.result, got {envelope.kind!r}"
            )
        return PlanResult.from_envelope(envelope)

    async def plan_many(
        self, requests: Sequence[PlanRequest], timeout_s: float | None = None
    ) -> list[PlanResult]:
        """Pipeline a whole batch on this connection; results in order."""
        return list(
            await asyncio.gather(
                *(self.submit(request, timeout_s=timeout_s) for request in requests)
            )
        )

    async def stats(self) -> dict[str, Any]:
        envelope = await self._request(
            Envelope(kind=KIND_STATS, version=self.version, seq=next(self._seq))
        )
        self._raise_on_error(envelope)
        return dict(envelope.payload)

    async def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
            self._reader_task = None
        # Take the write lock so an in-flight `_request` finishes its
        # write+drain before the transport goes away under it.
        async with self._write_lock:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass


async def connect_plan_client(
    path: str | None = None,
    *,
    host: str | None = None,
    port: int | None = None,
    client_id: str = "",
    version: int = PROTOCOL_VERSION,
    hello: bool = True,
) -> PlanClient:
    """Connect to a plan server over a unix socket (``path``) or TCP.

    Performs the ``hello`` handshake by default (raising
    :class:`PlanServerError` on version rejection); pass ``hello=False`` to
    skip it — the server then bills the connection under a per-connection
    identity.
    """
    if (path is None) == (host is None or port is None):
        raise ValueError("pass either a unix socket path or host and port")
    if path is not None:
        reader, writer = await asyncio.open_unix_connection(path, limit=MAX_LINE_BYTES)
    else:
        assert host is not None and port is not None
        reader, writer = await asyncio.open_connection(host, port, limit=MAX_LINE_BYTES)
    client = PlanClient(reader, writer, client_id=client_id, version=version)
    await client._start()
    if hello:
        try:
            await client.hello()
        except BaseException:
            await client.close()
            raise
    return client


# ---------------------------------------------------------------------------
# Bounded retry with exponential backoff + full jitter.
# ---------------------------------------------------------------------------
@dataclass
class RetryPolicy:
    """Bounded retry: exponential backoff with *full jitter*.

    The delay before retry ``n`` (counting from 0) is drawn uniformly from
    ``[0, min(cap_s, base_s * 2**n)]`` — the full-jitter variant, which
    decorrelates the retry storms of many clients failing over from the
    same killed worker at once.  ``seed`` pins the jitter stream for the
    deterministic chaos suite; leave it ``None`` in production.
    """

    max_attempts: int = 5
    base_s: float = 0.02
    cap_s: float = 1.0
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_s < 0.0 or self.cap_s < 0.0:
            raise ValueError("backoff delays must be non-negative")

    def make_rng(self) -> random.Random:
        return random.Random(self.seed)

    def backoff_s(self, retry: int, rng: random.Random) -> float:
        return rng.uniform(0.0, min(self.cap_s, self.base_s * (2.0 ** retry)))


class RetryingPlanClient:
    """A :class:`PlanClient` wrapper that survives worker loss.

    Failure handling is keyed *only* off the protocol's error taxonomy: a
    :class:`PlanServerError` whose ``retryable`` flag is False propagates
    immediately; retryable errors and bare transport errors are retried up
    to ``policy.max_attempts`` times with full-jitter backoff.  On
    ``worker-lost`` (or any transport-level failure) the underlying
    connection is dropped and the next attempt reconnects — the router then
    routes the new connection to a live worker.  Safe because plan requests
    are pure computation: a retried request returns the bit-identical plan.
    """

    def __init__(
        self,
        connect: Callable[[], Awaitable[PlanClient]],
        policy: RetryPolicy | None = None,
    ) -> None:
        self._connect = connect
        self.policy = policy if policy is not None else RetryPolicy()
        self._rng = self.policy.make_rng()
        self._client: PlanClient | None = None
        self._client_lock = asyncio.Lock()
        #: Submissions retried after a retryable failure.
        self.retries = 0
        #: Connections (re-)established, including the first.
        self.connects = 0

    async def _ensure_client(self) -> PlanClient:
        # The counters are advisory, event-loop-confined stats: bump them
        # outside the lock (which only serialises connection setup).
        created = False
        async with self._client_lock:
            if self._client is None:
                self._client = await self._connect()
                created = True
            client = self._client
        if created:
            self.connects += 1
        return client

    async def _drop_client(self, client: PlanClient) -> None:
        async with self._client_lock:
            if self._client is client:
                self._client = None
        try:
            await client.close()
        except (ConnectionError, OSError):
            pass

    async def submit(
        self, request: PlanRequest, timeout_s: float | None = None
    ) -> PlanResult:
        last_error: BaseException | None = None
        for attempt in range(self.policy.max_attempts):
            if attempt:
                self.retries += 1
                await asyncio.sleep(self.policy.backoff_s(attempt - 1, self._rng))
            client: PlanClient | None = None
            try:
                client = await self._ensure_client()
                return await client.submit(request, timeout_s=timeout_s)
            except PlanServerError as exc:
                if not exc.retryable:
                    raise
                last_error = exc
                if exc.code == ERROR_WORKER_LOST and client is not None:
                    await self._drop_client(client)
            except (ConnectionError, OSError) as exc:
                last_error = exc
                if client is not None:
                    await self._drop_client(client)
        assert last_error is not None
        raise last_error

    async def plan_many(
        self, requests: Sequence[PlanRequest], timeout_s: float | None = None
    ) -> list[PlanResult]:
        """Concurrent retried submissions; results in request order."""
        return list(
            await asyncio.gather(
                *(self.submit(request, timeout_s=timeout_s) for request in requests)
            )
        )

    async def close(self) -> None:
        async with self._client_lock:
            client, self._client = self._client, None
        if client is not None:
            try:
                await client.close()
            except (ConnectionError, OSError):
                pass

    def stats(self) -> dict[str, int]:
        return {"retries": self.retries, "connects": self.connects}


def connect_retrying_client(
    path: str | None = None,
    *,
    host: str | None = None,
    port: int | None = None,
    client_id: str = "",
    version: int = PROTOCOL_VERSION,
    policy: RetryPolicy | None = None,
) -> RetryingPlanClient:
    """A :class:`RetryingPlanClient` for a unix-socket or TCP plan server.

    Connects lazily (and re-connects after worker loss) via
    :func:`connect_plan_client`; note this is a plain function — the first
    connection is made by the first ``submit``.
    """

    async def factory() -> PlanClient:
        return await connect_plan_client(
            path, host=host, port=port, client_id=client_id, version=version
        )

    return RetryingPlanClient(factory, policy=policy)
