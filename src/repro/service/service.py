"""The multi-query plan service (ROADMAP: service layer over the batch engine).

:class:`PlanService` answers many optimisation/what-if requests against the
abstract cost model at once.  ``plan_many`` turns a batch of N requests into
~one vectorized engine invocation per *round*, regardless of how many step
series the batch mixes:

1. **Dedup** — requests with an identical task key (steps fingerprint,
   scheme, delta, what-if ratios) are solved once and share the answer.
2. **Mix** — every grid-shaped task contributes the exact candidate matrix
   its optimiser scans (the DD delta grid, OL's 0/1 enumeration) and every
   PL task contributes the next segment of its coordinate descent
   (:func:`~repro.costmodel.optimizer.pl_descent_plan`).  All segments of a
   round — across *different* fingerprints — are evaluated by a single
   mixed-series pass with per-row coefficient vectors: the grid round goes
   through ``cache.totals_mixed`` (so replayed workloads hit per-row), the
   descent rounds through the raw :func:`batch_totals_mixed` (descent rows
   rarely repeat; lockstep batching, not memoisation, is the PL win).  PL
   descents advance in lockstep until the last one converges.
3. **Solve** — grid-shaped tasks pick their answer straight from their
   mixed slice; PL tasks take their descent plan's result; WHAT-IF/CPU/GPU
   answers are one cached scalar estimate each.  Every answer is
   bit-identical to calling ``optimize_scheme`` per request.

``PlanService(mixed=False)`` keeps the PR 2 evaluation strategy (one engine
call per distinct step series, PL solved per task with the per-coordinate
descent on the raw engine) as a reference/benchmark baseline.

The cache defaults to the process-wide
:func:`~repro.costmodel.batch.shared_estimate_cache`, so repeated service
calls (and planner traffic outside the service) keep warming the same store.
With that default (or any :class:`SharedEstimateCache`) every entry point is
thread-safe: the cache serialises its own mutations and the service's
counters take a private lock, so concurrent ``plan`` calls from a thread
pool return exactly what the single-threaded path would.
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from ..costmodel.abstract import StepCost
from ..costmodel.batch import (
    EstimateCache,
    Fingerprint,
    batch_totals_mixed,
    shared_estimate_cache,
)
from ..costmodel.optimizer import (
    OL_ENUMERATION_LIMIT,
    OptimizationResult,
    SeriesEvaluator,
    dd_candidate_matrix,
    ol_candidate_matrix,
    optimize_pl,
    optimize_scheme,
    pl_descent_plan,
    validate_speculation,
)
from ..locking import make_lock
from .api import WHAT_IF, PlanRequest, PlanResponse, TaskKey, WorkloadError

__all__ = ["BatchFormer", "PlanService", "dedup_tasks"]

#: A batch-formation strategy: maps the validated request batch to the
#: ordered ``task_key -> representative request`` mapping the evaluation
#: strategies solve.  Injectable via ``PlanService(batch_former=...)``.
BatchFormer = Callable[[Sequence[PlanRequest]], "OrderedDict[TaskKey, PlanRequest]"]


def dedup_tasks(batch: Sequence[PlanRequest]) -> "OrderedDict[TaskKey, PlanRequest]":
    """Default batch formation: collapse requests with identical task keys.

    The first request with a given key represents the task; every sibling
    shares its answer.  Custom formers (the micro-batching scheduler's
    coalesced cross-client batches, sharded services, ...) must return an
    entry for every task key appearing in the batch — ``plan_many`` rejects
    a former that drops one, because a silent partial answer set would be
    indistinguishable from a solved batch.
    """
    tasks: OrderedDict[TaskKey, PlanRequest] = OrderedDict()
    for request in batch:
        tasks.setdefault(request.task_key, request)
    return tasks


class PlanService:
    """Serve batches of cost-model planning requests off one shared cache.

    ``cache`` defaults to the process-wide thread-safe
    :func:`shared_estimate_cache`.  The service is only as thread-safe as
    the cache it is given: pass a :class:`SharedEstimateCache` (or keep the
    default) when calling ``plan``/``plan_many`` from multiple threads — a
    plain :class:`EstimateCache` is fine for single-threaded use only.

    ``mixed`` selects the evaluation strategy: the default stacks candidate
    rows of *all* tasks — across different step series — into one
    mixed-series engine call per round; ``mixed=False`` restores the PR 2
    strategy (per-fingerprint stacking, one call per distinct series, PL
    solved per task with the per-coordinate descent) for comparison.  Both
    strategies return bit-identical plans.
    """

    def __init__(
        self,
        cache: EstimateCache | None = None,
        mixed: bool = True,
        batch_former: BatchFormer | None = None,
        speculation: str = "full",
    ) -> None:
        self.cache = cache if cache is not None else shared_estimate_cache()
        self.mixed = mixed
        #: Batch formation is injectable (ISSUE 4): the serving stack's
        #: micro-batching scheduler coalesces requests across clients and
        #: windows before they ever reach ``plan_many``, so the grouping
        #: step must be a strategy, not a baked-in loop.  The default is
        #: :func:`dedup_tasks`; any replacement must keep answers
        #: bit-identical (it may only change *which* requests share work).
        self.batch_former: BatchFormer = batch_former or dedup_tasks
        #: PL descent speculation mode handed to every descent plan:
        #: "full" emits whole rounds (fewest engine calls), "adaptive"
        #: emits round 1 per-coordinate (fewest evaluated rows on
        #: accept-heavy descents).  Answers are bit-identical either way.
        #: Validated here so a misconfigured service fails at construction,
        #: not on its first PL request.
        validate_speculation(speculation)
        self.speculation = speculation
        self._lock = make_lock("plan-service")
        self.requests_served = 0
        self.tasks_solved = 0
        self.requests_deduplicated = 0
        self.mixed_engine_calls = 0

    # ------------------------------------------------------------------
    def plan(self, request: PlanRequest) -> PlanResponse:
        """Answer one request (still batched through the shared cache)."""
        return self.plan_many([request])[0]

    def plan_many(self, requests: Iterable[PlanRequest]) -> list[PlanResponse]:
        """Answer a batch of requests; one response per request, in order."""
        batch = list(requests)
        for request in batch:
            if not isinstance(request, PlanRequest):
                raise WorkloadError(
                    f"expected PlanRequest, got {type(request).__name__}"
                )
        if not batch:
            return []

        # 1. Form the task batch (default: dedup identical task keys) and
        #    remember how many requests share each task.
        tasks = self.batch_former(batch)
        group_sizes = Counter(request.task_key for request in batch)
        missing = [k for k in group_sizes if k not in tasks]
        if missing:
            raise WorkloadError(
                f"batch former dropped {len(missing)} task(s) present in the "
                "request batch; a former may regroup requests but must keep "
                "an entry per task key"
            )

        # 2./3. Evaluate and solve every unique task.
        if self.mixed:
            answers, engine_calls = self._solve_mixed(tasks)
        else:
            answers = self._solve_per_fingerprint(tasks)
            engine_calls = 0

        responses: list[PlanResponse] = []
        charged: set[tuple] = set()
        for request in batch:
            result = answers[request.task_key]
            first = request.task_key not in charged
            charged.add(request.task_key)
            responses.append(
                PlanResponse(
                    request_id=request.request_id,
                    scheme=request.scheme,
                    ratios=list(result.ratios),
                    estimate=result.estimate.copy(),
                    evaluations=result.evaluations if first else 0,
                    group_size=group_sizes[request.task_key],
                )
            )

        with self._lock:
            self.requests_served += len(batch)
            self.tasks_solved += len(tasks)
            self.requests_deduplicated += len(batch) - len(tasks)
            self.mixed_engine_calls += engine_calls
        return responses

    # ------------------------------------------------------------------
    # Mixed-series strategy: one engine call per round for the whole batch.
    # ------------------------------------------------------------------
    def _solve_mixed(
        self, tasks: "OrderedDict[TaskKey, PlanRequest]"
    ) -> tuple[dict[tuple, OptimizationResult], int]:
        """Answer every unique task off lockstep mixed-series evaluation.

        Round 0 stacks the DD/OL candidate grids of every grid-shaped task
        (across all fingerprints) into one cached mixed call; each descent
        round stacks the still-active PL tasks' next segments into one raw
        mixed call.  The engine-call count is therefore ``1 + (descent
        segments of the slowest PL task)`` instead of one per fingerprint
        plus several per PL task.
        """
        grid_tasks: list[tuple[TaskKey, PlanRequest, np.ndarray]] = []
        plans: dict[tuple, Any] = {}
        pending: "OrderedDict[TaskKey, np.ndarray]" = OrderedDict()
        rows_charged: dict[tuple, int] = {}
        for key, task in tasks.items():
            matrix = self._candidate_matrix(task)
            if matrix is not None and matrix.size:
                grid_tasks.append((key, task, matrix))
            elif task.scheme == "PL":
                plan = pl_descent_plan(
                    list(task.steps), task.delta, speculation=self.speculation
                )
                first_matrix = next(plan)
                plans[key] = plan
                pending[key] = first_matrix
                rows_charged[key] = int(first_matrix.shape[0])

        engine_calls = 0

        # Round 0: every grid-shaped task's candidate matrix — across all
        # fingerprints — in one *cached* mixed call, so a replayed workload
        # is served from per-row hits instead of the engine.
        grid_totals: dict[tuple, np.ndarray] = {}
        if grid_tasks:
            totals = self.cache.totals_mixed(
                [(task.steps, matrix) for _, task, matrix in grid_tasks]
            )
            engine_calls += 1
            offset = 0
            for key, _, matrix in grid_tasks:
                grid_totals[key] = totals[offset : offset + matrix.shape[0]]
                offset += matrix.shape[0]

        # Descent rounds: all still-active PL tasks' next segments in one
        # *raw* mixed call per round.  Descent rows rarely repeat, so keying
        # them through the cache costs more than the vectorized recompute —
        # the PL win here is lockstep batching (and request dedup), not
        # memoisation.
        descent_results: dict[tuple, tuple[list[float], dict]] = {}
        while pending:
            segments: list[tuple[tuple[StepCost, ...], np.ndarray]] = [
                (tasks[key].steps, matrix) for key, matrix in pending.items()
            ]
            totals = batch_totals_mixed(segments, validate=False)
            engine_calls += 1

            offset = 0
            still_pending: "OrderedDict[TaskKey, np.ndarray]" = OrderedDict()
            for key, matrix in pending.items():
                block = totals[offset : offset + matrix.shape[0]]
                offset += matrix.shape[0]
                try:
                    next_matrix = plans[key].send(block)
                except StopIteration as stop:
                    descent_results[key] = stop.value
                else:
                    still_pending[key] = next_matrix
                    rows_charged[key] += int(next_matrix.shape[0])
            pending = still_pending

        answers: dict[tuple, OptimizationResult] = {}
        for key, task, matrix in grid_tasks:
            # First minimum of the slice, exactly like np.argmin over the
            # optimiser's own batch.
            ratios = matrix[int(np.argmin(grid_totals[key]))].tolist()
            answers[key] = OptimizationResult(
                ratios=ratios,
                estimate=self.cache.estimate(task.steps, ratios),
                evaluations=int(matrix.shape[0]),
                scheme=task.scheme,
            )
        for key, (ratios, stats) in descent_results.items():
            task = tasks[key]
            answers[key] = OptimizationResult(
                ratios=ratios,
                estimate=self.cache.estimate(task.steps, ratios),
                evaluations=rows_charged[key],
                scheme="PL",
                stats=stats,
            )
        for key, task in tasks.items():
            if key not in answers:  # WHAT-IF, CPU/GPU, OL beyond enumeration
                answers[key] = self._solve(task, None)
        return answers, engine_calls

    # ------------------------------------------------------------------
    # Per-fingerprint strategy (the PR 2 path, kept as reference baseline).
    # ------------------------------------------------------------------
    def _solve_per_fingerprint(
        self, tasks: "OrderedDict[TaskKey, PlanRequest]"
    ) -> dict[tuple, OptimizationResult]:
        """One stacked engine call per distinct step series, PL per task."""
        stacks: OrderedDict[
            Fingerprint, list[tuple[TaskKey, np.ndarray]]
        ] = OrderedDict()
        steps_for: dict[tuple, tuple[StepCost, ...]] = {}
        for key, task in tasks.items():
            matrix = self._candidate_matrix(task)
            if matrix is None or not matrix.size:
                continue
            stacks.setdefault(task.fingerprint, []).append((key, matrix))
            steps_for[task.fingerprint] = task.steps
        grids: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}
        for fingerprint, entries in stacks.items():
            stacked = np.vstack([matrix for _, matrix in entries])
            totals = self.cache.totals(steps_for[fingerprint], stacked)
            offset = 0
            for key, matrix in entries:
                grids[key] = (matrix, totals[offset : offset + matrix.shape[0]])
                offset += matrix.shape[0]
        return {key: self._solve(task, grids.get(key)) for key, task in tasks.items()}

    # ------------------------------------------------------------------
    def _candidate_matrix(self, task: PlanRequest) -> np.ndarray | None:
        """The task's up-front candidate ratio vectors, as an (m, n) matrix.

        These are exactly the rows the task's solver scans (built by the
        optimiser module's own candidate builders, so they cannot drift from
        ``optimize_dd``/``optimize_ol``), letting one mixed engine pass pay
        for every grid-shaped task of the batch.  Tasks whose answer does
        not read a totals grid return ``None``: PL contributes its descent
        segments round by round instead, and the WHAT-IF/CPU/GPU answers
        need one full scalar estimate, not grid totals.
        """
        n = len(task.steps)
        if task.scheme == "DD":
            return dd_candidate_matrix(n, task.delta)
        if task.scheme == "OL" and n <= OL_ENUMERATION_LIMIT:
            return ol_candidate_matrix(n)
        return None

    def _solve(
        self,
        task: PlanRequest,
        grid: tuple[np.ndarray, np.ndarray] | None,
    ) -> OptimizationResult:
        """One task's answer; bit-identical to the ``optimize_*`` reference.

        Grid-shaped tasks pick their answer from the stacked slice with the
        same first-minimum scan their optimiser would run over the same
        totals, so the chosen ratios (and tie-breaks) are identical.  In the
        per-fingerprint strategy PL runs the PR 2 per-coordinate descent per
        task on the raw batch engine — the baseline the mixed strategy's
        lockstep vectorized descent is gated against.
        """
        steps = task.steps
        scheme = task.scheme
        if scheme == WHAT_IF:
            ratios = list(task.ratios or ())
            estimate = self.cache.estimate(steps, ratios)
            return OptimizationResult(
                ratios=ratios, estimate=estimate, evaluations=1, scheme=WHAT_IF
            )
        if grid is not None:
            # DD's delta grid and OL's 0/1 enumeration: first minimum of the
            # slice, exactly like np.argmin over the optimiser's own batch.
            matrix, totals = grid
            ratios = matrix[int(np.argmin(totals))].tolist()
            return OptimizationResult(
                ratios=ratios,
                estimate=self.cache.estimate(steps, ratios),
                evaluations=int(matrix.shape[0]),
                scheme=scheme,
            )
        if scheme == "PL":
            return optimize_pl(
                steps,
                task.delta,
                evaluator=SeriesEvaluator(steps),
                vectorized=False,
            )
        evaluator = SeriesEvaluator(steps, cache=self.cache)
        return optimize_scheme(scheme, steps, task.delta, evaluator=evaluator)

    # ------------------------------------------------------------------
    def flush_cache(self) -> None:
        """Push the cache's write-behind queue to its backing store, if any.

        A plain in-memory cache has nothing to flush; a
        :class:`~repro.costmodel.cachestore.PersistentEstimateCache` commits
        its queued rows so a sibling worker (or a restarted process) can
        answer from them.  No-op for caches without a ``flush``.
        """
        flush = getattr(self.cache, "flush", None)
        if callable(flush):
            flush()

    def close(self) -> None:
        """Release the cache's backing store (part of a worker's drain).

        The serving tier calls this after the last batch of a shutdown so a
        persistent cache flushes its write-behind queue and closes its
        SQLite connection — the warm state the next boot restarts from.
        Caches without a ``close`` (the default shared in-memory cache) are
        left untouched; the process-wide cache must survive the service.
        """
        close = getattr(self.cache, "close", None)
        if callable(close):
            close()

    def stats(self) -> dict[str, Any]:
        """Service counters plus a consistent cache snapshot."""
        cache_stats = (
            self.cache.stats()
            if hasattr(self.cache, "stats")
            else {
                "entries": len(self.cache),
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "hit_rate": self.cache.hit_rate,
            }
        )
        with self._lock:
            return {
                "requests_served": self.requests_served,
                "tasks_solved": self.tasks_solved,
                "requests_deduplicated": self.requests_deduplicated,
                "mixed_engine_calls": self.mixed_engine_calls,
                "cache": cache_stats,
            }
