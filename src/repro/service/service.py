"""The multi-query plan service (ROADMAP: service layer over the batch engine).

:class:`PlanService` answers many optimisation/what-if requests against the
abstract cost model at once.  ``plan_many`` turns a batch of N requests into
~one vectorized engine invocation per distinct step series:

1. **Dedup** — requests with an identical task key (steps fingerprint,
   scheme, delta, what-if ratios) are solved once and share the answer.
2. **Stack** — every surviving grid-shaped task contributes the exact
   candidate matrix its optimiser scans (the DD delta grid, OL's 0/1
   enumeration); candidates of tasks over the same step series are stacked
   into one matrix and evaluated by a single ``SharedEstimateCache.totals``
   call, i.e. one ``batch_totals`` pass.
3. **Solve** — grid-shaped tasks pick their answer straight from their
   stacked slice; WHAT-IF/CPU/GPU answers are one cached scalar estimate
   each; PL tasks run their coordinate descent on the raw batch engine
   (descent rows rarely repeat, so dedup — not memoisation — is the PL
   win).

The cache defaults to the process-wide
:func:`~repro.costmodel.batch.shared_estimate_cache`, so repeated service
calls (and planner traffic outside the service) keep warming the same store.
With that default (or any :class:`SharedEstimateCache`) every entry point is
thread-safe: the cache serialises its own mutations and the service's
counters take a private lock, so concurrent ``plan`` calls from a thread
pool return exactly what the single-threaded path would.
"""

from __future__ import annotations

import threading
from collections import Counter, OrderedDict
from typing import Any, Iterable

import numpy as np

from ..costmodel.abstract import StepCost
from ..costmodel.batch import EstimateCache, shared_estimate_cache
from ..costmodel.optimizer import (
    OL_ENUMERATION_LIMIT,
    OptimizationResult,
    SeriesEvaluator,
    dd_candidate_matrix,
    ol_candidate_matrix,
    optimize_scheme,
)
from .api import WHAT_IF, PlanRequest, PlanResponse, WorkloadError

__all__ = ["PlanService"]


class PlanService:
    """Serve batches of cost-model planning requests off one shared cache.

    ``cache`` defaults to the process-wide thread-safe
    :func:`shared_estimate_cache`.  The service is only as thread-safe as
    the cache it is given: pass a :class:`SharedEstimateCache` (or keep the
    default) when calling ``plan``/``plan_many`` from multiple threads — a
    plain :class:`EstimateCache` is fine for single-threaded use only.
    """

    def __init__(self, cache: EstimateCache | None = None) -> None:
        self.cache = cache if cache is not None else shared_estimate_cache()
        self._lock = threading.Lock()
        self.requests_served = 0
        self.tasks_solved = 0
        self.requests_deduplicated = 0

    # ------------------------------------------------------------------
    def plan(self, request: PlanRequest) -> PlanResponse:
        """Answer one request (still batched through the shared cache)."""
        return self.plan_many([request])[0]

    def plan_many(self, requests: Iterable[PlanRequest]) -> list[PlanResponse]:
        """Answer a batch of requests; one response per request, in order."""
        batch = list(requests)
        for request in batch:
            if not isinstance(request, PlanRequest):
                raise WorkloadError(
                    f"expected PlanRequest, got {type(request).__name__}"
                )
        if not batch:
            return []

        # 1. Dedup identical tasks; remember how many requests share each.
        tasks: OrderedDict[tuple, PlanRequest] = OrderedDict()
        for request in batch:
            tasks.setdefault(request.task_key, request)
        group_sizes = Counter(request.task_key for request in batch)

        # 2. Stack every grid-shaped task's candidate matrix per step series
        #    and evaluate each stack with one engine call (through the shared
        #    cache, so repeated workloads hit instead of recomputing).
        stacks: OrderedDict[tuple, list[tuple[tuple, np.ndarray]]] = OrderedDict()
        steps_for: dict[tuple, tuple[StepCost, ...]] = {}
        for key, task in tasks.items():
            matrix = self._candidate_matrix(task)
            if matrix is None or not matrix.size:
                continue
            stacks.setdefault(task.fingerprint, []).append((key, matrix))
            steps_for[task.fingerprint] = task.steps
        grids: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}
        for fingerprint, entries in stacks.items():
            stacked = np.vstack([matrix for _, matrix in entries])
            totals = self.cache.totals(steps_for[fingerprint], stacked)
            offset = 0
            for key, matrix in entries:
                grids[key] = (matrix, totals[offset : offset + matrix.shape[0]])
                offset += matrix.shape[0]

        # 3. Solve each unique task (grid-shaped tasks straight from their
        #    stacked slice, PL through its optimiser).
        answers = {
            key: self._solve(task, grids.get(key)) for key, task in tasks.items()
        }

        responses: list[PlanResponse] = []
        charged: set[tuple] = set()
        for request in batch:
            result = answers[request.task_key]
            first = request.task_key not in charged
            charged.add(request.task_key)
            responses.append(
                PlanResponse(
                    request_id=request.request_id,
                    scheme=request.scheme,
                    ratios=list(result.ratios),
                    estimate=result.estimate.copy(),
                    evaluations=result.evaluations if first else 0,
                    group_size=group_sizes[request.task_key],
                )
            )

        with self._lock:
            self.requests_served += len(batch)
            self.tasks_solved += len(tasks)
            self.requests_deduplicated += len(batch) - len(tasks)
        return responses

    # ------------------------------------------------------------------
    def _candidate_matrix(self, task: PlanRequest) -> np.ndarray | None:
        """The task's up-front candidate ratio vectors, as an (m, n) matrix.

        These are exactly the rows the task's solver scans (built by the
        optimiser module's own candidate builders, so they cannot drift from
        ``optimize_dd``/``optimize_ol``), letting one ``batch_totals`` pass
        pay for every task of the series.  Tasks whose answer does not read
        a totals grid return ``None``: PL discovers its descent rows on the
        fly and runs on the raw engine (see :meth:`_solve`), and the
        WHAT-IF/CPU/GPU answers need one full scalar estimate, not grid
        totals.
        """
        n = len(task.steps)
        if task.scheme == "DD":
            return dd_candidate_matrix(n, task.delta)
        if task.scheme == "OL" and n <= OL_ENUMERATION_LIMIT:
            return ol_candidate_matrix(n)
        return None

    def _solve(
        self,
        task: PlanRequest,
        grid: tuple[np.ndarray, np.ndarray] | None,
    ) -> OptimizationResult:
        """One task's answer; bit-identical to the ``optimize_*`` reference.

        Grid-shaped tasks pick their answer from the stacked slice with the
        same first-minimum scan their optimiser would run over the same
        totals, so the chosen ratios (and tie-breaks) are identical.  PL runs
        its coordinate descent on the raw batch engine: descent rows almost
        never repeat, so per-row memoisation costs more than the vectorized
        recompute and the service's PL win comes from deduplication instead.
        """
        steps = task.steps
        scheme = task.scheme
        if scheme == WHAT_IF:
            ratios = list(task.ratios or ())
            estimate = self.cache.estimate(steps, ratios)
            return OptimizationResult(
                ratios=ratios, estimate=estimate, evaluations=1, scheme=WHAT_IF
            )
        if grid is not None:
            # DD's delta grid and OL's 0/1 enumeration: first minimum of the
            # slice, exactly like np.argmin over the optimiser's own batch.
            matrix, totals = grid
            ratios = matrix[int(np.argmin(totals))].tolist()
            return OptimizationResult(
                ratios=ratios,
                estimate=self.cache.estimate(steps, ratios),
                evaluations=int(matrix.shape[0]),
                scheme=scheme,
            )
        cache = None if scheme == "PL" else self.cache
        evaluator = SeriesEvaluator(steps, cache=cache)
        return optimize_scheme(scheme, steps, task.delta, evaluator=evaluator)

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Service counters plus a consistent cache snapshot."""
        cache_stats = (
            self.cache.stats()
            if hasattr(self.cache, "stats")
            else {
                "entries": len(self.cache),
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "hit_rate": self.cache.hit_rate,
            }
        )
        with self._lock:
            return {
                "requests_served": self.requests_served,
                "tasks_solved": self.tasks_solved,
                "requests_deduplicated": self.requests_deduplicated,
                "cache": cache_stats,
            }
