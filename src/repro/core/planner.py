"""Automatic tuning of the co-processing design space (Section 5.6).

The paper concludes that the fine-grained design space — scheme, workload
ratios, shared vs. separate hash tables, allocator block size, divergence
grouping — has too many knobs to tune by hand and that the cost model makes
the tuning automatic.  :class:`JoinPlanner` is that auto-tuner: given a
workload and a machine it evaluates the candidate configurations with the
cost model (plus cheap pilot executions for the knobs the model does not
capture) and returns the configuration it would run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..costmodel.batch import EstimateCache, shared_estimate_cache
from ..data.relation import Relation
from ..hardware.machine import Machine, coupled_machine
from ..hashjoin.simple import HashJoinConfig
from .joins import PHJ, SHJ, HashJoinVariant, JoinTiming, VariantConfig
from .schemes import Scheme

#: Allocator block sizes swept by the planner (Figure 11's x axis).
CANDIDATE_BLOCK_BYTES: tuple[int, ...] = (64, 256, 1024, 2048, 8192)


@dataclass
class PlanCandidate:
    """One evaluated configuration."""

    config: VariantConfig
    estimated_s: float
    measured_s: float

    @property
    def name(self) -> str:
        return self.config.name


@dataclass
class JoinPlan:
    """The planner's decision plus everything it considered."""

    chosen: PlanCandidate
    candidates: list[PlanCandidate] = field(default_factory=list)

    @property
    def config(self) -> VariantConfig:
        return self.chosen.config

    def ranking(self) -> list[PlanCandidate]:
        return sorted(self.candidates, key=lambda c: c.measured_s)


class JoinPlanner:
    """Pick algorithm, scheme and tuning knobs for one workload."""

    def __init__(
        self,
        machine: Machine | None = None,
        pilot_fraction: float = 0.05,
        min_pilot_tuples: int = 2_000,
        max_pilot_tuples: int = 100_000,
        cache: EstimateCache | None = None,
    ) -> None:
        if not 0.0 < pilot_fraction <= 1.0:
            raise ValueError("pilot_fraction must be in (0, 1]")
        self.machine = machine or coupled_machine()
        self.pilot_fraction = pilot_fraction
        self.min_pilot_tuples = min_pilot_tuples
        self.max_pilot_tuples = max_pilot_tuples
        #: Shared across every candidate evaluation this planner performs —
        #: and, by default, with every other planner/optimiser/service in the
        #: process (the thread-safe LRU from ``shared_estimate_cache``), so
        #: repeated planning of similar workloads warms up across instances.
        #: Cache keys are exact steps fingerprints, so sharing never changes
        #: a result.  Pass a private :class:`EstimateCache` to opt out.
        self.estimate_cache = cache if cache is not None else shared_estimate_cache()

    # ------------------------------------------------------------------
    def _pilot(self, relation: Relation) -> Relation:
        n = len(relation)
        size = int(n * self.pilot_fraction)
        size = max(min(size, self.max_pilot_tuples), min(self.min_pilot_tuples, n))
        return relation.slice(0, size, name=f"{relation.name}-pilot")

    def _evaluate(self, config: VariantConfig, build: Relation, probe: Relation) -> PlanCandidate:
        timing = HashJoinVariant(config).execute(
            build, probe, machine=self.machine, cache=self.estimate_cache
        )
        return PlanCandidate(
            config=config, estimated_s=timing.estimated_s, measured_s=timing.total_s
        )

    # ------------------------------------------------------------------
    def tune_allocator_block(
        self,
        build: Relation,
        probe: Relation,
        base: VariantConfig,
        candidates: tuple[int, ...] = CANDIDATE_BLOCK_BYTES,
    ) -> int:
        """Pick the allocator block size on a pilot workload (Figure 11)."""
        best_bytes = candidates[0]
        best_time = float("inf")
        for block in candidates:
            config = replace(
                base,
                join_config=replace(base.join_config, allocator_block_bytes=block),
            )
            candidate = self._evaluate(config, build, probe)
            if candidate.measured_s < best_time:
                best_time = candidate.measured_s
                best_bytes = block
        return best_bytes

    def choose_hash_table_sharing(
        self, build: Relation, probe: Relation, base: VariantConfig
    ) -> bool:
        """Shared vs. separate hash tables (Figure 10) on a pilot workload."""
        shared = self._evaluate(replace(base, shared_hash_table=True), build, probe)
        separate = self._evaluate(replace(base, shared_hash_table=False), build, probe)
        return shared.measured_s <= separate.measured_s

    # ------------------------------------------------------------------
    def plan(
        self,
        build: Relation,
        probe: Relation,
        algorithms: tuple[str, ...] = (SHJ, PHJ),
        schemes: tuple[Scheme, ...] = (
            Scheme.CPU_ONLY,
            Scheme.GPU_ONLY,
            Scheme.DATA_DIVIDING,
            Scheme.PIPELINED,
        ),
        tune_allocator: bool = True,
        tune_sharing: bool = True,
    ) -> JoinPlan:
        """Evaluate the design space on a pilot sample and pick a configuration."""
        pilot_build = self._pilot(build)
        pilot_probe = self._pilot(probe)

        base_join_config = HashJoinConfig()
        base = VariantConfig(algorithm=SHJ, scheme=Scheme.PIPELINED, join_config=base_join_config)

        if tune_allocator:
            block = self.tune_allocator_block(pilot_build, pilot_probe, base)
            base = replace(base, join_config=replace(base.join_config, allocator_block_bytes=block))
        if tune_sharing:
            shared = self.choose_hash_table_sharing(pilot_build, pilot_probe, base)
            base = replace(base, shared_hash_table=shared)

        candidates: list[PlanCandidate] = []
        for algorithm in algorithms:
            for scheme in schemes:
                config = replace(base, algorithm=algorithm, scheme=scheme)
                candidates.append(self._evaluate(config, pilot_build, pilot_probe))

        chosen = min(candidates, key=lambda c: c.measured_s)
        return JoinPlan(chosen=chosen, candidates=candidates)

    def plan_and_run(self, build: Relation, probe: Relation, **plan_kwargs) -> JoinTiming:
        """Plan on the pilot, then execute the chosen configuration in full."""
        plan = self.plan(build, probe, **plan_kwargs)
        return HashJoinVariant(plan.config).execute(
            build, probe, machine=self.machine, cache=self.estimate_cache
        )
