"""Co-processing executor: "measured" simulated time of a step series.

Given an executed step series (real data-structure side effects plus per-tuple
work), a machine model and a per-step workload-ratio vector, the executor
splits every step's tuples between the CPU and the GPU, charges each portion
on its device (including the effects the analytic cost model ignores: latch
contention, workload divergence, cache-miss differences of the actual tuple
ranges), adds the pipelined-execution delays of Eqs. 4/5, and — on the
emulated discrete architecture — the PCI-e transfers implied by the ratio
choices.  The result plays the role of a wall-clock measurement on the APU.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..data.relation import TUPLE_BYTES
from ..hardware.machine import CPU, GPU, Machine
from ..hardware.pcie import PCIeBus
from ..hardware.workstats import TimeBreakdown
from ..hashjoin.steps import StepExecution, StepSeries
from ..costmodel.abstract import pipeline_delays


class ExecutionError(ValueError):
    """Raised for inconsistent execution requests."""


@dataclass
class StepTiming:
    """Simulated timing of one step under one ratio split."""

    name: str
    ratio: float
    cpu: TimeBreakdown
    gpu: TimeBreakdown
    cpu_tuples: int
    gpu_tuples: int
    #: Bytes of intermediate results exchanged with the previous step because
    #: the ratio changed (moved over PCI-e on the discrete architecture).
    exchanged_bytes: float = 0.0

    @property
    def cpu_s(self) -> float:
        return self.cpu.total_s

    @property
    def gpu_s(self) -> float:
        return self.gpu.total_s


@dataclass
class PhaseTiming:
    """Simulated timing of one step series (one phase) under a ratio vector."""

    phase: str
    ratios: list[float]
    steps: list[StepTiming]
    cpu_delay_s: list[float] = field(default_factory=list)
    gpu_delay_s: list[float] = field(default_factory=list)
    transfer_s: float = 0.0
    merge_s: float = 0.0

    @property
    def cpu_total_s(self) -> float:
        return sum(s.cpu_s for s in self.steps) + sum(self.cpu_delay_s)

    @property
    def gpu_total_s(self) -> float:
        return sum(s.gpu_s for s in self.steps) + sum(self.gpu_delay_s)

    @property
    def compute_s(self) -> float:
        """Co-processing part of the phase: the slower device's time."""
        return max(self.cpu_total_s, self.gpu_total_s)

    @property
    def elapsed_s(self) -> float:
        """Phase wall time: co-processing + serial transfer and merge parts."""
        return self.compute_s + self.transfer_s + self.merge_s

    def breakdown(self) -> dict[str, float]:
        return {
            "phase": self.phase,
            "cpu_s": self.cpu_total_s,
            "gpu_s": self.gpu_total_s,
            "transfer_s": self.transfer_s,
            "merge_s": self.merge_s,
            "elapsed_s": self.elapsed_s,
        }


def _validate_ratios(series: StepSeries, ratios: Sequence[float]) -> list[float]:
    if len(ratios) != series.n_steps:
        raise ExecutionError(
            f"phase {series.phase!r} has {series.n_steps} steps "
            f"but {len(ratios)} ratios were given"
        )
    cleaned = []
    for r in ratios:
        if not 0.0 <= r <= 1.0:
            raise ExecutionError(f"ratio {r} outside [0, 1]")
        cleaned.append(float(r))
    return cleaned


class CoProcessingExecutor:
    """Runs step series on a simulated machine under arbitrary ratio vectors."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine

    # ------------------------------------------------------------------
    def execute_series(
        self,
        series: StepSeries,
        ratios: Sequence[float],
        pipelined: bool = True,
        transfer_input: bool = True,
        transfer_output: bool = True,
    ) -> PhaseTiming:
        """Measure one phase under the given per-step CPU ratios.

        ``pipelined`` enables the Eq. 4/5 delay accounting (PL); with identical
        ratios on every step (DD) or all-0/1 ratios (OL) the delays are zero
        anyway, so it is safe to leave it on.

        ``transfer_input`` / ``transfer_output`` control whether, on the
        discrete architecture, the GPU's share of the first step's input and
        of the last step's output are moved over the PCI-e bus.
        """
        ratios = _validate_ratios(series, ratios)
        timings: list[StepTiming] = []
        transfer_s = 0.0

        wavefront_width = self.machine.spec.gpu.wavefront_width
        for index, execution in enumerate(series):
            ratio = ratios[index]
            n = execution.n_tuples
            cut = int(round(n * ratio))
            cpu_stats = execution.stats_for_range(0, cut, CPU, wavefront_width=wavefront_width)
            gpu_stats = execution.stats_for_range(cut, n, GPU, wavefront_width=wavefront_width)
            cpu_time = self.machine.step_time(CPU, cpu_stats, execution.working_set)
            gpu_time = self.machine.step_time(GPU, gpu_stats, execution.working_set)

            exchanged = 0.0
            if index > 0:
                ratio_change = ratio - ratios[index - 1]
                moved_tuples = abs(ratio_change) * n
                exchanged = moved_tuples * execution.intermediate_bytes_per_tuple
                if not self.machine.is_coupled and exchanged:
                    # A growing CPU share pulls intermediate results produced
                    # on the GPU back to the host (d2h); a shrinking share
                    # pushes CPU-produced intermediates to the device (h2d).
                    direction = (
                        PCIeBus.DEVICE_TO_HOST
                        if ratio_change > 0
                        else PCIeBus.HOST_TO_DEVICE
                    )
                    transfer_s += self.machine.transfer_seconds(
                        int(exchanged), direction,
                        label=f"{series.phase}:{execution.step.name}:intermediate",
                    )

            timings.append(
                StepTiming(
                    name=execution.step.name,
                    ratio=ratio,
                    cpu=cpu_time,
                    gpu=gpu_time,
                    cpu_tuples=cut,
                    gpu_tuples=n - cut,
                    exchanged_bytes=exchanged,
                )
            )

        # Input / output movement of the GPU's share on the discrete machine.
        if not self.machine.is_coupled and series.n_steps:
            first, last = timings[0], timings[-1]
            if transfer_input and first.gpu_tuples:
                transfer_s += self.machine.transfer_seconds(
                    first.gpu_tuples * TUPLE_BYTES,
                    PCIeBus.HOST_TO_DEVICE,
                    label=f"{series.phase}:input",
                )
            if transfer_output and last.gpu_tuples:
                transfer_s += self.machine.transfer_seconds(
                    last.gpu_tuples * TUPLE_BYTES,
                    PCIeBus.DEVICE_TO_HOST,
                    label=f"{series.phase}:output",
                )

        cpu_step_s = [t.cpu_s for t in timings]
        gpu_step_s = [t.gpu_s for t in timings]
        if pipelined:
            cpu_delay, gpu_delay = pipeline_delays(cpu_step_s, gpu_step_s, ratios)
        else:
            cpu_delay = [0.0] * len(timings)
            gpu_delay = [0.0] * len(timings)

        return PhaseTiming(
            phase=series.phase,
            ratios=ratios,
            steps=timings,
            cpu_delay_s=cpu_delay,
            gpu_delay_s=gpu_delay,
            transfer_s=transfer_s,
        )

    # ------------------------------------------------------------------
    def execute_single_device(self, series: StepSeries, device: str) -> PhaseTiming:
        """Run a phase entirely on one device (CPU-only / GPU-only baselines)."""
        if device not in (CPU, GPU):
            raise ExecutionError(f"unknown device {device!r}")
        ratio = 1.0 if device == CPU else 0.0
        return self.execute_series(
            series,
            [ratio] * series.n_steps,
            pipelined=False,
            transfer_input=(device == GPU),
            transfer_output=(device == GPU),
        )

    def merge_cost(self, n_key_nodes: float, n_rid_nodes: float, table_bytes: float) -> float:
        """CPU-side cost of merging a partial hash table (separate tables / DD
        on the discrete architecture)."""
        from ..hardware.workstats import WorkStats

        # Merging is mostly a streaming copy of the partial table's nodes with
        # an occasional pointer fix-up, so only a fraction of the node visits
        # miss the cache.
        nodes = n_key_nodes + n_rid_nodes
        stats = WorkStats(
            tuples=int(nodes),
            instructions=15.0 * nodes,
            random_accesses=0.25 * nodes,
            sequential_bytes=2.0 * table_bytes,
        )
        return self.machine.step_seconds(CPU, stats, None)
