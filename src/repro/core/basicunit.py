"""The BasicUnit coarse-grained scheduling baseline (paper Appendix, Fig. 16-18).

BasicUnit dynamically hands out chunks of tuples to whichever device becomes
idle first; a device then performs *every* step of the phase on its chunk.
Compared with the fine-grained PL scheme it cannot give different steps
different ratios, so the CPU ends up executing GPU-friendly work (hash
computation) and vice versa; the paper measures SHJ-PL/PHJ-PL to be 31% / 25%
faster than their BasicUnit counterparts, and the resulting per-phase ratios
(Figures 17/18) differ markedly from the per-step optima (Figures 5/6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hardware.machine import CPU, GPU, Machine, coupled_machine
from ..hashjoin.steps import StepSeries
from .executor import PhaseTiming, StepTiming


class BasicUnitError(ValueError):
    """Raised for invalid BasicUnit configurations."""


@dataclass
class BasicUnitPhase:
    """Outcome of scheduling one phase with BasicUnit."""

    phase: str
    chunk_tuples: int
    cpu_chunks: int
    gpu_chunks: int
    cpu_s: float
    gpu_s: float
    scheduling_overhead_s: float
    cpu_tuples: int = 0
    gpu_tuples: int = 0

    @property
    def n_chunks(self) -> int:
        return self.cpu_chunks + self.gpu_chunks

    @property
    def cpu_ratio(self) -> float:
        """Fraction of the phase's tuples processed by the CPU (Figures 17/18)."""
        total = self.cpu_tuples + self.gpu_tuples
        if total == 0:
            return 0.0
        return self.cpu_tuples / total

    @property
    def elapsed_s(self) -> float:
        return max(self.cpu_s, self.gpu_s) + self.scheduling_overhead_s


@dataclass
class BasicUnitRun:
    """All phases of one join scheduled with BasicUnit."""

    phases: list[BasicUnitPhase]

    @property
    def total_s(self) -> float:
        return sum(p.elapsed_s for p in self.phases)

    def ratios_by_phase(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for phase in self.phases:
            # Later series of the same phase (multi-pass partitioning) average in.
            if phase.phase in out:
                out[phase.phase] = (out[phase.phase] + phase.cpu_ratio) / 2.0
            else:
                out[phase.phase] = phase.cpu_ratio
        return out


class BasicUnitScheduler:
    """Greedy earliest-finish chunk dispatcher over the two devices."""

    #: Fixed per-chunk dispatch cost (queue synchronisation, kernel launch).
    DEFAULT_DISPATCH_OVERHEAD_S = 40e-6

    def __init__(
        self,
        machine: Machine | None = None,
        cpu_chunk_tuples: int = 64_000,
        gpu_chunk_tuples: int = 256_000,
        dispatch_overhead_s: float = DEFAULT_DISPATCH_OVERHEAD_S,
    ) -> None:
        if cpu_chunk_tuples <= 0 or gpu_chunk_tuples <= 0:
            raise BasicUnitError("chunk sizes must be positive")
        self.machine = machine or coupled_machine()
        self.cpu_chunk_tuples = cpu_chunk_tuples
        self.gpu_chunk_tuples = gpu_chunk_tuples
        self.dispatch_overhead_s = dispatch_overhead_s

    # ------------------------------------------------------------------
    def _chunk_time(self, series: StepSeries, start: int, stop: int, device: str) -> float:
        """Time for one device to run *all* steps of the phase on one chunk."""
        total = 0.0
        width = self.machine.spec.gpu.wavefront_width
        for execution in series:
            stats = execution.stats_for_range(start, stop, device, wavefront_width=width)
            total += self.machine.step_seconds(device, stats, execution.working_set)
        return total

    def schedule_series(self, series: StepSeries) -> BasicUnitPhase:
        """Dispatch the phase's tuples chunk by chunk to the idle device."""
        n = series.n_tuples
        chunk = max(self.cpu_chunk_tuples, 1)
        cpu_busy_until = 0.0
        gpu_busy_until = 0.0
        cpu_chunks = 0
        gpu_chunks = 0
        cpu_tuples = 0
        gpu_tuples = 0
        overhead = 0.0
        position = 0
        while position < n:
            # The device that frees up first takes the next chunk; the chunk
            # size is tuned per device (larger launches amortise better on the
            # GPU).
            if cpu_busy_until <= gpu_busy_until:
                device = CPU
                size = min(self.cpu_chunk_tuples, n - position)
            else:
                device = GPU
                size = min(self.gpu_chunk_tuples, n - position)
            elapsed = self._chunk_time(series, position, position + size, device)
            overhead += self.dispatch_overhead_s
            if device == CPU:
                cpu_busy_until += elapsed
                cpu_chunks += 1
                cpu_tuples += size
            else:
                gpu_busy_until += elapsed
                gpu_chunks += 1
                gpu_tuples += size
            position += size

        return BasicUnitPhase(
            phase=series.phase,
            chunk_tuples=chunk,
            cpu_chunks=cpu_chunks,
            gpu_chunks=gpu_chunks,
            cpu_s=cpu_busy_until,
            gpu_s=gpu_busy_until,
            scheduling_overhead_s=overhead,
            cpu_tuples=cpu_tuples,
            gpu_tuples=gpu_tuples,
        )

    def schedule(self, series_list: list[StepSeries]) -> BasicUnitRun:
        return BasicUnitRun(phases=[self.schedule_series(s) for s in series_list])

    # ------------------------------------------------------------------
    def as_phase_timing(self, series: StepSeries) -> PhaseTiming:
        """Adapter producing the same :class:`PhaseTiming` shape as the executor.

        The chunk assignment is folded into an equivalent per-phase ratio so
        downstream reporting (time breakdowns) can treat BasicUnit uniformly.
        """
        outcome = self.schedule_series(series)
        ratio = outcome.cpu_ratio
        steps = [
            StepTiming(
                name=e.step.name,
                ratio=ratio,
                cpu=self.machine.step_time(
                    CPU, e.stats_for_range(0, int(round(e.n_tuples * ratio)), CPU), e.working_set
                ),
                gpu=self.machine.step_time(
                    GPU, e.stats_for_range(int(round(e.n_tuples * ratio)), e.n_tuples, GPU),
                    e.working_set,
                ),
                cpu_tuples=int(round(e.n_tuples * ratio)),
                gpu_tuples=e.n_tuples - int(round(e.n_tuples * ratio)),
            )
            for e in series
        ]
        return PhaseTiming(
            phase=series.phase,
            ratios=[ratio] * series.n_steps,
            steps=steps,
            cpu_delay_s=[0.0] * series.n_steps,
            gpu_delay_s=[0.0] * series.n_steps,
            transfer_s=0.0,
            merge_s=outcome.scheduling_overhead_s,
        )
