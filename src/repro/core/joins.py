"""End-to-end co-processed hash join variants (SHJ/PHJ x CPU/GPU/OL/DD/PL).

This module ties everything together the way Section 5 of the paper runs its
experiments:

1. execute the join algorithm (SHJ or radix PHJ) to obtain the real join
   result and the per-step work of every step series,
2. calibrate the cost model from the executed steps (Section 4.2),
3. let the requested co-processing scheme pick the workload ratios via the
   cost model (Section 3.2 / 4.1),
4. measure the chosen ratios on the simulated machine — coupled or emulated
   discrete — including pipelined delays, latch contention, divergence,
   PCI-e transfers and hash-table merge overheads.

The returned :class:`JoinTiming` carries both the measured phase breakdown
(Figure 3 style) and the cost model's estimate (Figures 7-9).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

from ..costmodel.batch import EstimateCache
from ..costmodel.calibration import CalibrationTable
from ..data.relation import Relation, TUPLE_BYTES
from ..hardware.cache import CacheStats
from ..hardware.machine import Machine, coupled_machine
from ..hardware.pcie import PCIeBus
from ..hashjoin.partition import PartitionConfig, PartitionedHashJoin
from ..hashjoin.result import JoinResult
from ..hashjoin.simple import HashJoinConfig, SimpleHashJoin
from ..hashjoin.steps import StepSeries
from .executor import CoProcessingExecutor, PhaseTiming
from .schemes import RatioPlan, Scheme, plan_ratios, variant_name

SHJ = "SHJ"
PHJ = "PHJ"
ALGORITHMS = (SHJ, PHJ)


class JoinVariantError(ValueError):
    """Raised for invalid variant requests."""


@dataclass
class JoinTiming:
    """Measured and estimated timing of one executed join variant."""

    variant: str
    algorithm: str
    scheme: Scheme
    architecture: str
    phases: list[PhaseTiming]
    plans: list[RatioPlan]
    result: JoinResult
    merge_s: float = 0.0
    estimated_s: float = 0.0
    cache_stats: CacheStats = field(default_factory=CacheStats)
    calibration: CalibrationTable | None = None

    # ------------------------------------------------------------------
    @property
    def total_s(self) -> float:
        """End-to-end measured elapsed time (phases are separated by barriers)."""
        return sum(p.elapsed_s for p in self.phases) + self.merge_s

    @property
    def transfer_s(self) -> float:
        return sum(p.transfer_s for p in self.phases)

    def phase_seconds(self, phase: str) -> float:
        """Total co-processing time of all series of one phase (e.g. 'partition')."""
        return sum(p.compute_s for p in self.phases if p.phase == phase)

    def ratios_by_phase(self) -> dict[str, list[float]]:
        out: dict[str, list[float]] = {}
        for plan in self.plans:
            out.setdefault(plan.phase, list(plan.ratios))
        return out

    def breakdown(self) -> dict[str, float]:
        """Figure 3 style breakdown of the measured time."""
        return {
            "data_transfer_s": self.transfer_s,
            "merge_s": self.merge_s,
            "partition_s": self.phase_seconds("partition"),
            "build_s": self.phase_seconds("build"),
            "probe_s": self.phase_seconds("probe"),
            "total_s": self.total_s,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"JoinTiming({self.variant!r} on {self.architecture}, "
            f"total={self.total_s:.4f}s, matches={self.result.match_count})"
        )


@dataclass(frozen=True)
class VariantConfig:
    """Everything needed to run one join variant."""

    algorithm: str = SHJ
    scheme: Scheme = Scheme.PIPELINED
    join_config: HashJoinConfig = field(default_factory=HashJoinConfig)
    partition_config: PartitionConfig | None = None
    target_partition_tuples: int = 64_000
    #: ``None`` = shared table on the coupled machine, separate on discrete.
    shared_hash_table: bool | None = None
    ratio_delta: float = 0.02
    #: Join PHJ partition pairs on the shared process pool (serial = reference).
    parallel: bool = False
    n_workers: int | None = None

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHMS:
            raise JoinVariantError(
                f"algorithm must be one of {ALGORITHMS}, got {self.algorithm!r}"
            )

    @property
    def name(self) -> str:
        return variant_name(self.algorithm, self.scheme)


class HashJoinVariant:
    """One named variant (e.g. SHJ-PL) executable on any simulated machine."""

    def __init__(self, config: VariantConfig) -> None:
        self.config = config

    @classmethod
    def named(cls, algorithm: str, scheme: Scheme | str, **kwargs) -> "HashJoinVariant":
        return cls(VariantConfig(algorithm=algorithm, scheme=Scheme.parse(scheme), **kwargs))

    # ------------------------------------------------------------------
    def execute(
        self,
        build: Relation,
        probe: Relation,
        machine: Machine | None = None,
        cache: EstimateCache | None = None,
    ) -> JoinTiming:
        """Run the variant; ``cache`` shares cost-model evaluations across calls."""
        machine = machine or coupled_machine()
        machine.reset_counters()
        config = self.config
        scheme = Scheme.parse(config.scheme)

        shared = config.shared_hash_table
        if shared is None:
            shared = machine.is_coupled
        join_config = replace(config.join_config, shared_hash_table=shared)

        # 1. Execute the algorithm for real.
        if config.algorithm == SHJ:
            run = SimpleHashJoin(join_config).run(build, probe)
            series_list: list[StepSeries] = [run.build.series, run.probe.series]
            result = run.result
            table_stats = (run.table.n_key_nodes, run.table.n_rid_nodes, run.table.nbytes)
        else:
            run = PartitionedHashJoin(
                config=join_config,
                partition_config=config.partition_config,
                target_partition_tuples=config.target_partition_tuples,
                parallel=config.parallel,
                n_workers=config.n_workers,
            ).run(build, probe)
            series_list = [*run.partition_phase.series_per_pass, run.build_series, run.probe_series]
            result = run.result
            table_stats = (
                len(build),  # distinct key nodes across all per-pair tables (upper bound)
                len(build),
                run.max_pair_table_bytes,
            )

        # 2. Calibrate the cost model from the executed steps — once per
        #    series (PHJ repeats step names across passes, so a name-keyed
        #    lookup over the whole join would be ambiguous); the whole-join
        #    table reuses the same calibrations instead of re-profiling.
        series_tables = [
            CalibrationTable.from_series([series], machine) for series in series_list
        ]
        calibration = CalibrationTable.merged(series_tables)

        # 3. Plan ratios per phase, 4. measure them.
        executor = CoProcessingExecutor(machine)
        phases: list[PhaseTiming] = []
        plans: list[RatioPlan] = []
        estimated_s = 0.0
        for series, series_table in zip(series_list, series_tables):
            steps = series_table.step_costs()
            plan = plan_ratios(
                scheme, series.phase, steps, delta=config.ratio_delta, cache=cache
            )
            timing = executor.execute_series(
                series,
                plan.ratios,
                pipelined=scheme.uses_pipelined_delays,
            )
            phases.append(timing)
            plans.append(plan)
            estimated_s += plan.estimated_s

        # Merge overhead of separate hash tables (DD-style co-processing).
        merge_s = 0.0
        if not shared and not scheme.is_single_device and scheme is not Scheme.OFFLOADING:
            merge_s = self._merge_overhead(executor, plans, table_stats, machine)

        return JoinTiming(
            variant=config.name,
            algorithm=config.algorithm,
            scheme=scheme,
            architecture="coupled" if machine.is_coupled else "discrete",
            phases=phases,
            plans=plans,
            result=result,
            merge_s=merge_s,
            estimated_s=estimated_s,
            cache_stats=CacheStats(
                accesses=machine.cache.stats.accesses,
                misses=machine.cache.stats.misses,
            ),
            calibration=calibration,
        )

    # ------------------------------------------------------------------
    def _merge_overhead(
        self,
        executor: CoProcessingExecutor,
        plans: list[RatioPlan],
        table_stats: tuple[int, int, int],
        machine: Machine,
    ) -> float:
        """Cost of merging the GPU-built partial structures into the CPU's.

        With separate hash tables each device builds a private partial table;
        the GPU's share (determined by the build ratios) must be merged back,
        and on the discrete architecture it additionally crosses the PCI-e bus.
        """
        build_plans = [p for p in plans if p.phase == "build"]
        partition_plans = [p for p in plans if p.phase == "partition"]
        n_keys, n_rids, table_bytes = table_stats
        merge_s = 0.0

        if build_plans:
            gpu_fraction = 1.0 - build_plans[0].ratios[-1]
            if 0.0 < gpu_fraction:
                merge_s += executor.merge_cost(
                    n_keys * gpu_fraction, n_rids * gpu_fraction, table_bytes * gpu_fraction
                )
                if not machine.is_coupled:
                    merge_s += machine.transfer_seconds(
                        int(table_bytes * gpu_fraction),
                        PCIeBus.DEVICE_TO_HOST,
                        label="build:partial-table",
                    )

        for plan in partition_plans:
            gpu_fraction = 1.0 - plan.ratios[-1]
            if gpu_fraction <= 0.0:
                continue
            moved_bytes = n_rids * TUPLE_BYTES * gpu_fraction
            merge_s += executor.merge_cost(0.0, n_rids * gpu_fraction * 0.5, moved_bytes)
        return merge_s


# ---------------------------------------------------------------------------
# Convenience entry points
# ---------------------------------------------------------------------------
def run_join(
    algorithm: str,
    scheme: Scheme | str,
    build: Relation,
    probe: Relation,
    machine: Machine | None = None,
    cache: EstimateCache | None = None,
    **config_kwargs,
) -> JoinTiming:
    """Execute one variant; the main public entry point of the library."""
    variant = HashJoinVariant.named(algorithm, scheme, **config_kwargs)
    return variant.execute(build, probe, machine=machine, cache=cache)


def run_all_variants(
    build: Relation,
    probe: Relation,
    machine: Machine | None = None,
    algorithms: tuple[str, ...] = (SHJ, PHJ),
    schemes: tuple[Scheme, ...] = (
        Scheme.CPU_ONLY,
        Scheme.GPU_ONLY,
        Scheme.DATA_DIVIDING,
        Scheme.OFFLOADING,
        Scheme.PIPELINED,
    ),
    **config_kwargs,
) -> dict[str, JoinTiming]:
    """Run a grid of variants and return them keyed by variant name."""
    machine = machine or coupled_machine()
    cache = EstimateCache()
    out: dict[str, JoinTiming] = {}
    for algorithm in algorithms:
        for scheme in schemes:
            timing = run_join(
                algorithm, scheme, build, probe, machine=machine, cache=cache,
                **config_kwargs,
            )
            out[f"{algorithm}-{Scheme.parse(scheme).value}"] = timing
    return out


def external_pair_joiner(
    algorithm: str = PHJ,
    scheme: Scheme | str = Scheme.PIPELINED,
    machine: Machine | None = None,
    machine_factory: Callable[[], Machine] | None = None,
    **config_kwargs,
):
    """Adapter for :class:`repro.hashjoin.external.ExternalHashJoin`.

    Returns a callable mapping one in-buffer partition pair to
    ``(simulated seconds, join result)``.  A shared ``machine`` carries
    mutable counters that ``run_join`` resets per call, so a joiner built on
    one is not thread-safe; for ``ExternalHashJoin(parallel=True)`` pass
    ``machine_factory`` instead — every invocation then measures against a
    fresh machine of its own.
    """
    if machine is not None and machine_factory is not None:
        raise ValueError("pass either machine or machine_factory, not both")

    def joiner(build: Relation, probe: Relation) -> tuple[float, JoinResult]:
        pair_machine = machine_factory() if machine_factory is not None else machine
        timing = run_join(
            algorithm, scheme, build, probe, machine=pair_machine, **config_kwargs
        )
        return timing.total_s, timing.result

    return joiner
