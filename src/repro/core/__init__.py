"""Co-processing core: schemes, executor, join variants, scheduler, planner."""

from .basicunit import BasicUnitPhase, BasicUnitRun, BasicUnitScheduler
from .executor import CoProcessingExecutor, ExecutionError, PhaseTiming, StepTiming
from .joins import (
    ALGORITHMS,
    PHJ,
    SHJ,
    HashJoinVariant,
    JoinTiming,
    JoinVariantError,
    VariantConfig,
    external_pair_joiner,
    run_all_variants,
    run_join,
)
from .planner import (
    CANDIDATE_BLOCK_BYTES,
    JoinPlan,
    JoinPlanner,
    PlanCandidate,
)
from .schemes import RatioPlan, Scheme, plan_ratios, variant_name

__all__ = [
    "ALGORITHMS",
    "BasicUnitPhase",
    "BasicUnitRun",
    "BasicUnitScheduler",
    "CANDIDATE_BLOCK_BYTES",
    "CoProcessingExecutor",
    "ExecutionError",
    "HashJoinVariant",
    "JoinPlan",
    "JoinPlanner",
    "JoinTiming",
    "JoinVariantError",
    "PHJ",
    "PhaseTiming",
    "PlanCandidate",
    "RatioPlan",
    "SHJ",
    "Scheme",
    "StepTiming",
    "VariantConfig",
    "external_pair_joiner",
    "plan_ratios",
    "run_all_variants",
    "run_join",
    "variant_name",
]
