"""Co-processing schemes: off-loading, data dividing and pipelined execution.

Section 3.2 of the paper revisits three mechanisms for splitting a step
series between the CPU and the GPU:

* **OL (off-loading)** — every step runs entirely on one device;
* **DD (data dividing)** — one workload ratio shared by every step of a
  series (parallel-database style horizontal partitioning);
* **PL (pipelined execution)** — an independent ratio per step, chosen by the
  cost model, with pipelined-delay accounting between steps.

``CPU-only`` and ``GPU-only`` are the degenerate single-device baselines.
Each scheme object turns a calibrated step series into a ratio vector; the
actual time measurement is done by
:class:`~repro.core.executor.CoProcessingExecutor`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Sequence

from ..costmodel.abstract import StepCost
from ..costmodel.batch import EstimateCache
from ..costmodel.optimizer import (
    DEFAULT_DELTA,
    OptimizationResult,
    optimize_dd,
    optimize_ol,
    optimize_pl,
)


class Scheme(str, Enum):
    """The co-processing schemes evaluated in the paper."""

    CPU_ONLY = "CPU-only"
    GPU_ONLY = "GPU-only"
    OFFLOADING = "OL"
    DATA_DIVIDING = "DD"
    PIPELINED = "PL"

    @classmethod
    def parse(cls, value: "Scheme | str") -> "Scheme":
        if isinstance(value, cls):
            return value
        normalized = str(value).strip().upper().replace("_", "-")
        aliases = {
            "CPU": cls.CPU_ONLY,
            "CPU-ONLY": cls.CPU_ONLY,
            "GPU": cls.GPU_ONLY,
            "GPU-ONLY": cls.GPU_ONLY,
            "OL": cls.OFFLOADING,
            "OFFLOADING": cls.OFFLOADING,
            "DD": cls.DATA_DIVIDING,
            "DATA-DIVIDING": cls.DATA_DIVIDING,
            "PL": cls.PIPELINED,
            "PIPELINED": cls.PIPELINED,
        }
        if normalized not in aliases:
            raise ValueError(f"unknown co-processing scheme {value!r}")
        return aliases[normalized]

    @property
    def is_single_device(self) -> bool:
        return self in (Scheme.CPU_ONLY, Scheme.GPU_ONLY)

    @property
    def uses_pipelined_delays(self) -> bool:
        return self is Scheme.PIPELINED


@dataclass(frozen=True)
class RatioPlan:
    """Chosen per-step CPU ratios for one phase, plus the model's estimate."""

    phase: str
    scheme: Scheme
    ratios: tuple[float, ...]
    estimated_s: float
    evaluations: int = 0

    def as_dict(self) -> dict[str, object]:
        return {
            "phase": self.phase,
            "scheme": self.scheme.value,
            "ratios": list(self.ratios),
            "estimated_s": self.estimated_s,
        }


def plan_ratios(
    scheme: Scheme | str,
    phase: str,
    steps: Sequence[StepCost],
    delta: float = DEFAULT_DELTA,
    cache: EstimateCache | None = None,
) -> RatioPlan:
    """Choose the ratio vector of one phase for one scheme via the cost model.

    ``cache`` (an :class:`~repro.costmodel.batch.EstimateCache`) lets callers
    that plan the same calibrated steps repeatedly — the planner's design-space
    sweep, the experiment figures — reuse identical cost-model evaluations.
    """
    scheme = Scheme.parse(scheme)
    n = len(steps)
    if n == 0:
        raise ValueError("cannot plan ratios for an empty step series")

    if scheme is Scheme.CPU_ONLY:
        result = _fixed_result(steps, 1.0, cache)
    elif scheme is Scheme.GPU_ONLY:
        result = _fixed_result(steps, 0.0, cache)
    elif scheme is Scheme.OFFLOADING:
        result = optimize_ol(steps, cache=cache)
    elif scheme is Scheme.DATA_DIVIDING:
        result = optimize_dd(steps, delta, cache=cache)
    elif scheme is Scheme.PIPELINED:
        result = optimize_pl(steps, delta, cache=cache)
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unhandled scheme {scheme}")

    return RatioPlan(
        phase=phase,
        scheme=scheme,
        ratios=tuple(result.ratios),
        estimated_s=result.total_s,
        evaluations=result.evaluations,
    )


def _fixed_result(
    steps: Sequence[StepCost], ratio: float, cache: EstimateCache | None = None
) -> OptimizationResult:
    from ..costmodel.abstract import estimate_series

    ratios = [ratio] * len(steps)
    estimate = (
        cache.estimate(steps, ratios) if cache is not None else estimate_series(steps, ratios)
    )
    return OptimizationResult(ratios=ratios, estimate=estimate)


#: Variant labels used throughout the evaluation section, e.g. ``"SHJ-PL"``.
def variant_name(algorithm: str, scheme: Scheme | str) -> str:
    scheme = Scheme.parse(scheme)
    if scheme.is_single_device:
        return scheme.value
    return f"{algorithm.upper()}-{scheme.value}"
