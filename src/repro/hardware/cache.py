"""Last-level data cache models.

Two models are provided:

* :class:`CacheModel` — an analytical model used at workload scale.  It
  estimates the miss ratio of random accesses from the working-set size of the
  accessed structure relative to the cache capacity and from whether the CPU
  and the GPU share the cache (cache reuse on the coupled architecture is one
  of the paper's central points; see Table 3 and Figure 10).
* :class:`SetAssociativeCache` — an exact LRU set-associative simulator used
  in unit tests and micro-benchmarks to validate the analytical model's
  qualitative behaviour on small traces.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from .specs import CacheSpec


@dataclass
class CacheStats:
    """Access counters of a cache (model or simulator)."""

    accesses: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_ratio(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def merge(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            accesses=self.accesses + other.accesses,
            misses=self.misses + other.misses,
        )


class CacheModel:
    """Analytical shared-cache model.

    The miss ratio of random accesses into a structure of ``working_set_bytes``
    is estimated as::

        miss = cold_miss                         if the working set fits
        miss = 1 - effective_capacity / ws       otherwise

    ``effective_capacity`` is the full cache when the structure is shared by
    both processors (coupled architecture, shared hash table) and a
    ``partition_fraction`` of it when each processor works on its own copy
    (separate hash tables, or the emulated discrete architecture where cross-
    device reuse is impossible).
    """

    def __init__(self, spec: CacheSpec, shared: bool = True) -> None:
        self.spec = spec
        self.shared = shared
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def miss_ratio(
        self,
        working_set_bytes: float,
        partition_fraction: float = 1.0,
    ) -> float:
        """Estimated miss ratio for random accesses into a working set.

        ``partition_fraction`` is the fraction of the cache effectively
        available to the accessing device (1.0 when the structure is shared
        and reused across devices, 0.5 when two devices compete with disjoint
        working sets).
        """
        if working_set_bytes < 0:
            raise ValueError("working_set_bytes must be non-negative")
        if not 0.0 < partition_fraction <= 1.0:
            raise ValueError("partition_fraction must be in (0, 1]")
        effective = self.spec.size_bytes * (partition_fraction if not self.shared else 1.0)
        # Even a shared cache is competed for when both devices stream
        # different structures; the caller expresses that via the fraction.
        effective = min(effective, self.spec.size_bytes * partition_fraction)
        if working_set_bytes <= 0:
            return self.spec.cold_miss_ratio
        if working_set_bytes <= effective:
            return self.spec.cold_miss_ratio
        capacity_miss = 1.0 - effective / working_set_bytes
        return min(1.0, max(self.spec.cold_miss_ratio, capacity_miss))

    def record_accesses(self, accesses: float, miss_ratio: float) -> None:
        """Accumulate access/miss counters (used for Table 3 style reporting)."""
        if accesses < 0 or not 0.0 <= miss_ratio <= 1.0:
            raise ValueError("invalid access count or miss ratio")
        self.stats.accesses += int(round(accesses))
        self.stats.misses += int(round(accesses * miss_ratio))

    def reset(self) -> None:
        self.stats = CacheStats()


class SetAssociativeCache:
    """Exact LRU set-associative cache simulator for byte-address traces."""

    def __init__(self, spec: CacheSpec) -> None:
        self.spec = spec
        self.stats = CacheStats()
        # One LRU-ordered dict of tags per set.
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(spec.n_sets)
        ]

    def access(self, address: int) -> bool:
        """Access one byte address; returns ``True`` on a hit."""
        if address < 0:
            raise ValueError("address must be non-negative")
        line = address // self.spec.line_bytes
        set_index = line % self.spec.n_sets
        tag = line // self.spec.n_sets
        cache_set = self._sets[set_index]
        self.stats.accesses += 1
        if tag in cache_set:
            cache_set.move_to_end(tag)
            return True
        self.stats.misses += 1
        cache_set[tag] = None
        if len(cache_set) > self.spec.associativity:
            cache_set.popitem(last=False)
        return False

    def access_range(self, start: int, n_bytes: int) -> int:
        """Access a contiguous byte range; returns the number of misses."""
        if n_bytes <= 0:
            return 0
        misses_before = self.stats.misses
        first_line = start // self.spec.line_bytes
        last_line = (start + n_bytes - 1) // self.spec.line_bytes
        for line in range(first_line, last_line + 1):
            self.access(line * self.spec.line_bytes)
        return self.stats.misses - misses_before

    def reset(self) -> None:
        self.stats = CacheStats()
        for cache_set in self._sets:
            cache_set.clear()

    @property
    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)


@dataclass
class WorkingSet:
    """Helper describing the structure a step's random accesses touch.

    The hash-join steps report their working set (hash table, partition
    headers...) so that the machine model can pick a miss ratio: shared
    structures get the whole cache, per-device copies get half of it.
    """

    bytes: float
    #: True when both devices access the *same* copy of the structure.
    shared_between_devices: bool = True

    def partition_fraction(self, machine_shares_cache: bool) -> float:
        if self.shared_between_devices and machine_shares_cache:
            return 1.0
        # Separate copies (or a discrete machine): each device effectively
        # owns half of the last-level cache capacity for this structure.
        return 0.5
