"""PCI-e bus model used by the emulated discrete architecture.

The paper (Section 5.1) emulates the discrete CPU-GPU machine by running on
the APU and *adding* a transfer delay ``latency + size / bandwidth`` for every
host <-> device data movement, with latency 0.015 ms and bandwidth 3 GB/s.
This module reproduces exactly that delay model and additionally keeps
per-direction accounting so experiments can report how much of the total time
was spent on the bus (Figure 3's "data-transfer" component).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .specs import PCIeSpec


@dataclass
class TransferRecord:
    """One logical transfer over the bus."""

    bytes: int
    direction: str  # "h2d" or "d2h"
    seconds: float
    label: str = ""


class PCIeBus:
    """Latency + bandwidth bus with transfer accounting."""

    HOST_TO_DEVICE = "h2d"
    DEVICE_TO_HOST = "d2h"

    def __init__(self, spec: PCIeSpec | None = None) -> None:
        self.spec = spec or PCIeSpec()
        self.transfers: list[TransferRecord] = []

    # ------------------------------------------------------------------
    def transfer_time(self, n_bytes: float) -> float:
        """Delay of a single transfer of ``n_bytes`` (Section 5.1 formula)."""
        if n_bytes < 0:
            raise ValueError("n_bytes must be non-negative")
        if n_bytes == 0:
            return 0.0
        return self.spec.latency_s + n_bytes / self.spec.bandwidth_bytes_per_s

    def transfer(self, n_bytes: int, direction: str, label: str = "") -> float:
        """Record a transfer and return its simulated delay."""
        if direction not in (self.HOST_TO_DEVICE, self.DEVICE_TO_HOST):
            raise ValueError(f"direction must be 'h2d' or 'd2h', got {direction!r}")
        seconds = self.transfer_time(n_bytes)
        self.transfers.append(
            TransferRecord(bytes=int(n_bytes), direction=direction, seconds=seconds, label=label)
        )
        return seconds

    # ------------------------------------------------------------------
    @property
    def total_seconds(self) -> float:
        return sum(t.seconds for t in self.transfers)

    @property
    def total_bytes(self) -> int:
        return sum(t.bytes for t in self.transfers)

    def seconds_by_direction(self) -> dict[str, float]:
        out = {self.HOST_TO_DEVICE: 0.0, self.DEVICE_TO_HOST: 0.0}
        for t in self.transfers:
            out[t.direction] += t.seconds
        return out

    def reset(self) -> None:
        self.transfers.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PCIeBus(latency={self.spec.latency_s * 1e3:.3f} ms, "
            f"bandwidth={self.spec.bandwidth_bytes_per_s / 2**30:.1f} GiB/s, "
            f"transfers={len(self.transfers)})"
        )
