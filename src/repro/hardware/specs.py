"""Hardware specifications (paper Table 1) and timing-model parameters.

The reproduction replaces the physical AMD A8-3870K APU with a calibrated
analytical device model.  The *structural* parameters (core counts, clock
frequencies, cache and buffer sizes) come straight from Table 1 of the paper;
the *timing* parameters (memory latencies, bandwidths, atomic costs,
divergence penalties) are calibration constants chosen so that the per-step
unit costs of the simulator match the shape of Figure 4 (GPU ≈ 15x faster on
hash computation, roughly equal on pointer-chasing steps).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


class SpecError(ValueError):
    """Raised when a hardware specification is inconsistent."""


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of one compute device (CPU or GPU).

    Structural fields mirror Table 1; the remaining fields parameterise the
    analytical timing model in :mod:`repro.hardware.device`.
    """

    name: str
    kind: str  # "cpu" or "gpu"
    cores: int
    clock_ghz: float
    #: Effective instructions per cycle per core (used by Eq. 3 of the paper).
    ipc: float
    #: SIMD execution width: AMD wavefront = 64 work items, CPUs execute
    #: work items independently (width 1 for divergence purposes).
    wavefront_width: int
    #: OpenCL local memory per compute unit (bytes) — 32 KB on both devices.
    local_memory_bytes: int
    #: Cost of one cache-missing random memory access, already folded with the
    #: device's memory-level parallelism (seconds per access).
    dram_random_access_s: float
    #: Cost of one cache-hitting access (seconds per access).
    cache_hit_access_s: float
    #: Sequential (streaming) bandwidth available to the device (bytes/s).
    sequential_bandwidth: float
    #: Cost of an uncontended global-memory atomic operation (seconds).
    atomic_global_s: float
    #: Cost of an uncontended local-memory atomic operation (seconds).
    atomic_local_s: float
    #: Additional penalty factor applied per unit of workload divergence.
    #: The GPU executes a wavefront in lock-step, so divergence is expensive;
    #: the CPU has branch prediction and independent lanes.
    divergence_penalty: float
    #: Multiplier for contended atomics (models serialisation of a latch).
    atomic_contention_factor: float

    def __post_init__(self) -> None:
        if self.kind not in ("cpu", "gpu"):
            raise SpecError(f"kind must be 'cpu' or 'gpu', got {self.kind!r}")
        if self.cores <= 0 or self.clock_ghz <= 0 or self.ipc <= 0:
            raise SpecError("cores, clock_ghz and ipc must be positive")
        if self.wavefront_width <= 0:
            raise SpecError("wavefront_width must be positive")

    @property
    def instruction_throughput(self) -> float:
        """Peak instructions per second across the whole device."""
        return self.cores * self.ipc * self.clock_ghz * 1e9

    @property
    def is_gpu(self) -> bool:
        return self.kind == "gpu"

    def scaled(self, **overrides: float) -> "DeviceSpec":
        """Return a copy with some fields overridden (for what-if studies)."""
        return replace(self, **overrides)


@dataclass(frozen=True)
class CacheSpec:
    """Description of the (shared) last-level data cache."""

    size_bytes: int
    line_bytes: int = 64
    associativity: int = 16
    #: Miss ratio floor even for resident working sets (cold/conflict misses).
    cold_miss_ratio: float = 0.02

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0 or self.associativity <= 0:
            raise SpecError("cache size, line size and associativity must be positive")
        if self.size_bytes % self.line_bytes:
            raise SpecError("cache size must be a multiple of the line size")

    @property
    def n_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def n_sets(self) -> int:
        return max(self.n_lines // self.associativity, 1)


@dataclass(frozen=True)
class PCIeSpec:
    """PCI-e bus parameters used for the emulated discrete architecture.

    The paper emulates a bus with latency 0.015 ms and bandwidth 3 GB/s
    (Section 5.1); the transfer delay of one message is
    ``latency + size / bandwidth``.
    """

    latency_s: float = 0.015e-3
    bandwidth_bytes_per_s: float = 3.0 * GB

    def __post_init__(self) -> None:
        if self.latency_s < 0 or self.bandwidth_bytes_per_s <= 0:
            raise SpecError("PCI-e latency must be >= 0 and bandwidth > 0")


@dataclass(frozen=True)
class MachineSpec:
    """A complete machine: two devices plus the memory system."""

    name: str
    cpu: DeviceSpec
    gpu: DeviceSpec
    cache: CacheSpec
    zero_copy_buffer_bytes: int
    #: None on the coupled architecture (no bus); a PCIeSpec on the discrete one.
    pcie: PCIeSpec | None = None
    #: Whether the CPU and GPU share the last-level cache.
    shared_cache: bool = True

    @property
    def is_coupled(self) -> bool:
        return self.pcie is None

    def device(self, kind: str) -> DeviceSpec:
        if kind == "cpu":
            return self.cpu
        if kind == "gpu":
            return self.gpu
        raise SpecError(f"unknown device kind {kind!r}")


# ---------------------------------------------------------------------------
# Calibrated specifications (Table 1 + Figure 4 calibration)
# ---------------------------------------------------------------------------

#: The CPU of the AMD A8-3870K APU: 4 cores at 3.0 GHz.
APU_CPU = DeviceSpec(
    name="A8-3870K CPU",
    kind="cpu",
    cores=4,
    clock_ghz=3.0,
    ipc=1.0,
    wavefront_width=1,
    local_memory_bytes=32 * KB,
    dram_random_access_s=12.0e-9,
    cache_hit_access_s=1.0e-9,
    sequential_bandwidth=20.0 * GB,
    atomic_global_s=2.0e-9,
    atomic_local_s=1.0e-9,
    divergence_penalty=0.15,
    atomic_contention_factor=4.0,
)

#: The integrated GPU of the AMD A8-3870K APU: 400 cores at 0.6 GHz.
APU_GPU = DeviceSpec(
    name="A8-3870K GPU",
    kind="gpu",
    cores=400,
    clock_ghz=0.6,
    ipc=1.0,
    wavefront_width=64,
    local_memory_bytes=32 * KB,
    dram_random_access_s=13.0e-9,
    cache_hit_access_s=1.8e-9,
    sequential_bandwidth=22.0 * GB,
    atomic_global_s=1.8e-9,
    atomic_local_s=0.8e-9,
    divergence_penalty=0.5,
    atomic_contention_factor=8.0,
)

#: The discrete AMD Radeon HD 7970, shown for reference in Table 1.
DISCRETE_HD7970 = DeviceSpec(
    name="Radeon HD 7970",
    kind="gpu",
    cores=2048,
    clock_ghz=0.925,
    ipc=1.0,
    wavefront_width=64,
    local_memory_bytes=32 * KB,
    dram_random_access_s=1.2e-9,
    cache_hit_access_s=0.6e-9,
    sequential_bandwidth=264.0 * GB,
    atomic_global_s=1.5e-9,
    atomic_local_s=0.5e-9,
    divergence_penalty=0.9,
    atomic_contention_factor=10.0,
)

#: Shared 4 MB L2 data cache of the APU (Table 1).
APU_CACHE = CacheSpec(size_bytes=4 * MB)

#: Zero-copy buffer size of the APU (Table 1): 512 MB shared.
APU_ZERO_COPY_BYTES = 512 * MB

#: The coupled machine used throughout the paper's evaluation.
COUPLED_A8_3870K = MachineSpec(
    name="AMD A8-3870K (coupled)",
    cpu=APU_CPU,
    gpu=APU_GPU,
    cache=APU_CACHE,
    zero_copy_buffer_bytes=APU_ZERO_COPY_BYTES,
    pcie=None,
    shared_cache=True,
)

#: The emulated discrete machine: same devices, PCI-e transfers, no cache sharing
#: benefits between devices (the paper notes its emulation still physically
#: shares the cache; we model the bus and merge overheads it adds).
EMULATED_DISCRETE = MachineSpec(
    name="Emulated discrete CPU-GPU",
    cpu=APU_CPU,
    gpu=APU_GPU,
    cache=APU_CACHE,
    zero_copy_buffer_bytes=APU_ZERO_COPY_BYTES,
    pcie=PCIeSpec(),
    shared_cache=False,
)


def table1_rows() -> list[dict[str, object]]:
    """Rows of Table 1 of the paper, regenerated from the spec constants."""
    return [
        {
            "metric": "# Cores",
            "CPU (APU)": APU_CPU.cores,
            "GPU (APU)": APU_GPU.cores,
            "GPU (Discrete)": DISCRETE_HD7970.cores,
        },
        {
            "metric": "Core frequency (GHz)",
            "CPU (APU)": APU_CPU.clock_ghz,
            "GPU (APU)": APU_GPU.clock_ghz,
            "GPU (Discrete)": DISCRETE_HD7970.clock_ghz,
        },
        {
            "metric": "Zero copy buffer (MB)",
            "CPU (APU)": APU_ZERO_COPY_BYTES // MB,
            "GPU (APU)": "shared",
            "GPU (Discrete)": "-",
        },
        {
            "metric": "Local memory size (KB)",
            "CPU (APU)": APU_CPU.local_memory_bytes // KB,
            "GPU (APU)": APU_GPU.local_memory_bytes // KB,
            "GPU (Discrete)": DISCRETE_HD7970.local_memory_bytes // KB,
        },
        {
            "metric": "Cache size (MB)",
            "CPU (APU)": APU_CACHE.size_bytes // MB,
            "GPU (APU)": "shared",
            "GPU (Discrete)": "-",
        },
    ]
