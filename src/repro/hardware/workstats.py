"""Work accounting shared between the join operators and the device model.

Every fine-grained join step reports *what it did* (instructions executed,
memory touched, atomics issued, how divergent the per-tuple work was) as a
:class:`WorkStats` record.  The device model then converts a ``WorkStats``
into simulated seconds for a particular processor.  This is the boundary that
replaces wall-clock measurement on the physical APU.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass(frozen=True)
class WorkStats:
    """Aggregate work performed by (part of) a step execution."""

    #: Number of input items processed (tuples, or partition pairs for the
    #: coarse-grained step definition).
    tuples: int = 0
    #: Total dynamic instruction count.
    instructions: float = 0.0
    #: Bytes read/written with streaming (sequential) access patterns.
    sequential_bytes: float = 0.0
    #: Number of cache-line-sized random accesses (hash bucket headers, key
    #: list nodes, rid list nodes, build tuples...).
    random_accesses: float = 0.0
    #: Global-memory atomic operations (latches, allocator pointer bumps).
    global_atomics: float = 0.0
    #: Local-memory atomic operations (the optimised allocator's local pointer).
    local_atomics: float = 0.0
    #: Workload divergence in [0, 1]: 0 = perfectly uniform per-tuple work,
    #: 1 = highly varying work within a wavefront (e.g. skewed key lists).
    divergence: float = 0.0
    #: Fraction of concurrent atomic operations that target the same object
    #: (drives latch-contention serialisation).
    atomic_conflict_ratio: float = 0.0

    def __add__(self, other: "WorkStats") -> "WorkStats":
        if not isinstance(other, WorkStats):
            return NotImplemented
        total_tuples = self.tuples + other.tuples
        return WorkStats(
            tuples=total_tuples,
            instructions=self.instructions + other.instructions,
            sequential_bytes=self.sequential_bytes + other.sequential_bytes,
            random_accesses=self.random_accesses + other.random_accesses,
            global_atomics=self.global_atomics + other.global_atomics,
            local_atomics=self.local_atomics + other.local_atomics,
            divergence=_weighted(self.divergence, self.tuples, other.divergence, other.tuples),
            atomic_conflict_ratio=_weighted(
                self.atomic_conflict_ratio, self.tuples,
                other.atomic_conflict_ratio, other.tuples,
            ),
        )

    def scaled(self, factor: float) -> "WorkStats":
        """Scale every extensive quantity by ``factor`` (ratios unchanged)."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return WorkStats(
            tuples=int(round(self.tuples * factor)),
            instructions=self.instructions * factor,
            sequential_bytes=self.sequential_bytes * factor,
            random_accesses=self.random_accesses * factor,
            global_atomics=self.global_atomics * factor,
            local_atomics=self.local_atomics * factor,
            divergence=self.divergence,
            atomic_conflict_ratio=self.atomic_conflict_ratio,
        )

    def is_empty(self) -> bool:
        return self.tuples == 0 and self.instructions == 0 and self.random_accesses == 0

    def as_dict(self) -> dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


def _weighted(a: float, wa: float, b: float, wb: float) -> float:
    """Tuple-count weighted average of an intensive quantity."""
    total = wa + wb
    if total <= 0:
        return max(a, b)
    return (a * wa + b * wb) / total


@dataclass(frozen=True)
class WorkProfile:
    """Per-tuple work profile of one step (the cost model's unit costs).

    A profile is either declared analytically (for the cost model) or obtained
    by dividing a measured :class:`WorkStats` by its tuple count (profiling,
    the role AMD CodeXL plays in the paper).
    """

    instructions_per_tuple: float = 0.0
    sequential_bytes_per_tuple: float = 0.0
    random_accesses_per_tuple: float = 0.0
    global_atomics_per_tuple: float = 0.0
    local_atomics_per_tuple: float = 0.0
    divergence: float = 0.0
    atomic_conflict_ratio: float = 0.0

    def stats_for(self, n_tuples: int) -> WorkStats:
        """Expand the per-tuple profile into a :class:`WorkStats` total."""
        if n_tuples < 0:
            raise ValueError("n_tuples must be non-negative")
        return WorkStats(
            tuples=n_tuples,
            instructions=self.instructions_per_tuple * n_tuples,
            sequential_bytes=self.sequential_bytes_per_tuple * n_tuples,
            random_accesses=self.random_accesses_per_tuple * n_tuples,
            global_atomics=self.global_atomics_per_tuple * n_tuples,
            local_atomics=self.local_atomics_per_tuple * n_tuples,
            divergence=self.divergence,
            atomic_conflict_ratio=self.atomic_conflict_ratio,
        )

    @classmethod
    def from_stats(cls, stats: WorkStats) -> "WorkProfile":
        """Per-tuple profile observed from an executed step."""
        n = max(stats.tuples, 1)
        return cls(
            instructions_per_tuple=stats.instructions / n,
            sequential_bytes_per_tuple=stats.sequential_bytes / n,
            random_accesses_per_tuple=stats.random_accesses / n,
            global_atomics_per_tuple=stats.global_atomics / n,
            local_atomics_per_tuple=stats.local_atomics / n,
            divergence=stats.divergence,
            atomic_conflict_ratio=stats.atomic_conflict_ratio,
        )


@dataclass
class TimeBreakdown:
    """Simulated execution time of one step on one device, by component."""

    compute_s: float = 0.0
    memory_s: float = 0.0
    atomic_s: float = 0.0
    divergence_s: float = 0.0
    #: Pipelined-execution delay (Eq. 4/5); filled in by the PL executor.
    pipeline_delay_s: float = 0.0
    #: PCI-e transfer time (discrete architecture only).
    transfer_s: float = 0.0

    @property
    def total_s(self) -> float:
        return (
            self.compute_s
            + self.memory_s
            + self.atomic_s
            + self.divergence_s
            + self.pipeline_delay_s
            + self.transfer_s
        )

    def __add__(self, other: "TimeBreakdown") -> "TimeBreakdown":
        if not isinstance(other, TimeBreakdown):
            return NotImplemented
        return TimeBreakdown(
            compute_s=self.compute_s + other.compute_s,
            memory_s=self.memory_s + other.memory_s,
            atomic_s=self.atomic_s + other.atomic_s,
            divergence_s=self.divergence_s + other.divergence_s,
            pipeline_delay_s=self.pipeline_delay_s + other.pipeline_delay_s,
            transfer_s=self.transfer_s + other.transfer_s,
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "compute_s": self.compute_s,
            "memory_s": self.memory_s,
            "atomic_s": self.atomic_s,
            "divergence_s": self.divergence_s,
            "pipeline_delay_s": self.pipeline_delay_s,
            "transfer_s": self.transfer_s,
            "total_s": self.total_s,
        }
