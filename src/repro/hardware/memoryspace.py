"""Memory spaces of the coupled architecture.

On current AMD APUs the system memory is split into host memory (CPU) and
device memory (GPU); both can be accessed by either processor through the
*zero copy buffer*, which is relatively small (512 MB on the A8-3870K, Table
1).  The paper stores all join data in the zero copy buffer, and falls back to
an external-partitioning scheme when the data does not fit (Appendix,
Figure 19).  This module tracks allocations in those spaces so the join
operators can (a) check whether a workload fits and (b) account the copy time
between system memory and the zero copy buffer.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class OutOfMemoryError(RuntimeError):
    """Raised when an allocation does not fit into a memory space."""


@dataclass
class Allocation:
    """One live allocation inside a memory space."""

    label: str
    nbytes: int
    offset: int


class MemorySpace:
    """A bump-allocated memory space with capacity accounting."""

    def __init__(self, name: str, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.allocations: dict[str, Allocation] = {}
        self._next_offset = 0
        self.peak_usage = 0

    # ------------------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        return sum(a.nbytes for a in self.allocations.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def fits(self, nbytes: int) -> bool:
        return nbytes <= self.free_bytes

    def allocate(self, label: str, nbytes: int) -> Allocation:
        """Reserve ``nbytes`` under ``label``; raises when it does not fit."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if label in self.allocations:
            raise ValueError(f"allocation {label!r} already exists in {self.name}")
        if not self.fits(nbytes):
            raise OutOfMemoryError(
                f"{self.name}: cannot allocate {nbytes} bytes "
                f"({self.free_bytes} bytes free of {self.capacity_bytes})"
            )
        allocation = Allocation(label=label, nbytes=nbytes, offset=self._next_offset)
        self._next_offset += nbytes
        self.allocations[label] = allocation
        self.peak_usage = max(self.peak_usage, self.used_bytes)
        return allocation

    def release(self, label: str) -> None:
        if label not in self.allocations:
            raise KeyError(f"no allocation named {label!r} in {self.name}")
        del self.allocations[label]

    def release_all(self) -> None:
        self.allocations.clear()
        self._next_offset = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MemorySpace({self.name!r}, used={self.used_bytes}, "
            f"capacity={self.capacity_bytes})"
        )


class ZeroCopyBuffer(MemorySpace):
    """The APU's zero copy buffer: visible to both the CPU and the GPU."""

    def __init__(self, capacity_bytes: int) -> None:
        super().__init__(name="zero-copy-buffer", capacity_bytes=capacity_bytes)

    def can_hold_join(self, build_bytes: int, probe_bytes: int, overhead_factor: float = 2.0) -> bool:
        """Whether an in-buffer join of the given relations is possible.

        ``overhead_factor`` accounts for the hash table and result buffers the
        join allocates on top of the raw relations.
        """
        required = int((build_bytes + probe_bytes) * overhead_factor)
        return required <= self.capacity_bytes


@dataclass
class MemorySystem:
    """System memory plus the zero copy buffer, with copy-time accounting."""

    zero_copy: ZeroCopyBuffer
    system_memory: MemorySpace
    #: Bandwidth of copies between system memory and the zero copy buffer.
    copy_bandwidth_bytes_per_s: float = 8.0 * 2**30
    copied_bytes: int = field(default=0)

    def copy_time(self, nbytes: int) -> float:
        """Simulated time to move ``nbytes`` between the spaces."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self.copied_bytes += nbytes
        return nbytes / self.copy_bandwidth_bytes_per_s

    def reset(self) -> None:
        self.copied_bytes = 0
        self.zero_copy.release_all()
        self.system_memory.release_all()
