"""Analytical device timing model.

A :class:`DeviceModel` converts the :class:`~repro.hardware.workstats.WorkStats`
reported by an executed step into simulated seconds on one processor.  The
model mirrors the structure of the paper's cost model (Section 4): execution
time of a step is computation time plus memory time (plus atomic/latch and
divergence overheads, which the paper's analytic model deliberately omits and
which therefore show up as the difference between "estimated" and "measured"
time in Figures 7–9 and 11).
"""

from __future__ import annotations

from dataclasses import dataclass

from .specs import DeviceSpec
from .workstats import TimeBreakdown, WorkProfile, WorkStats


@dataclass(frozen=True)
class MemoryEnvironment:
    """Memory-system context for a step execution.

    ``miss_ratio`` is the last-level-cache miss ratio of the step's random
    accesses, produced by the machine's :class:`~repro.hardware.cache.CacheModel`.
    """

    miss_ratio: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.miss_ratio <= 1.0:
            raise ValueError(f"miss_ratio must be in [0, 1], got {self.miss_ratio}")


class DeviceModel:
    """Converts work statistics into simulated time for one device."""

    def __init__(self, spec: DeviceSpec) -> None:
        self.spec = spec

    # ------------------------------------------------------------------
    # Component models
    # ------------------------------------------------------------------
    def compute_time(self, stats: WorkStats) -> float:
        """Instruction execution time assuming the peak-IPC pipeline (Eq. 3)."""
        return stats.instructions / self.spec.instruction_throughput

    def memory_time(self, stats: WorkStats, env: MemoryEnvironment) -> float:
        """Sequential streaming plus random access stalls."""
        sequential = stats.sequential_bytes / self.spec.sequential_bandwidth
        per_access = (
            env.miss_ratio * self.spec.dram_random_access_s
            + (1.0 - env.miss_ratio) * self.spec.cache_hit_access_s
        )
        random = stats.random_accesses * per_access
        return sequential + random

    def atomic_time(self, stats: WorkStats) -> float:
        """Latch / atomic-operation cost including contention serialisation."""
        contention = 1.0 + stats.atomic_conflict_ratio * (
            self.spec.atomic_contention_factor - 1.0
        )
        global_cost = stats.global_atomics * self.spec.atomic_global_s * contention
        local_cost = stats.local_atomics * self.spec.atomic_local_s
        return global_cost + local_cost

    def divergence_time(self, stats: WorkStats, compute_s: float, memory_s: float) -> float:
        """Extra time lost to intra-wavefront workload divergence.

        A wavefront finishes only when its slowest work item does, so divergent
        work inflates both the compute and memory components.  The CPU executes
        work items independently and pays almost nothing.
        """
        if stats.divergence <= 0.0:
            return 0.0
        lockstep_exposure = min(1.0, (self.spec.wavefront_width - 1) / 63.0)
        penalty = self.spec.divergence_penalty * stats.divergence * lockstep_exposure
        return (compute_s + memory_s) * penalty

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def elapsed(
        self,
        stats: WorkStats,
        env: MemoryEnvironment | None = None,
    ) -> TimeBreakdown:
        """Full simulated time breakdown for executing ``stats`` on this device."""
        env = env or MemoryEnvironment()
        compute_s = self.compute_time(stats)
        memory_s = self.memory_time(stats, env)
        atomic_s = self.atomic_time(stats)
        divergence_s = self.divergence_time(stats, compute_s, memory_s)
        return TimeBreakdown(
            compute_s=compute_s,
            memory_s=memory_s,
            atomic_s=atomic_s,
            divergence_s=divergence_s,
        )

    def elapsed_seconds(
        self,
        stats: WorkStats,
        env: MemoryEnvironment | None = None,
    ) -> float:
        return self.elapsed(stats, env).total_s

    def unit_cost(
        self,
        profile: WorkProfile,
        env: MemoryEnvironment | None = None,
    ) -> float:
        """Simulated seconds per tuple for a per-tuple work profile.

        This is what Figure 4 of the paper reports (nanoseconds per tuple per
        step on each device).
        """
        stats = profile.stats_for(1)
        return self.elapsed_seconds(stats, env)

    def estimated_time(
        self,
        profile: WorkProfile,
        n_tuples: float,
        env: MemoryEnvironment | None = None,
    ) -> float:
        """Cost-model style estimate: computation + memory only (Eq. 2 terms
        ``C`` and ``M``), excluding latch contention and divergence, which the
        paper's model does not capture."""
        env = env or MemoryEnvironment()
        stats = profile.stats_for(1)
        compute_s = self.compute_time(stats)
        memory_s = self.memory_time(stats, env)
        return (compute_s + memory_s) * n_tuples

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DeviceModel({self.spec.name!r})"
