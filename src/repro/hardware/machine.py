"""Machine models: the coupled APU and the emulated discrete architecture.

A :class:`Machine` bundles the two device timing models with the shared-cache
model, the memory system (zero copy buffer) and, for the discrete
architecture, the PCI-e bus.  The join executors only talk to a ``Machine``:
they ask it how long a given amount of work takes on a given device and how
long data movement takes, so the *same* join code runs on both architectures
— exactly the property the paper gets from OpenCL.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cache import CacheModel, WorkingSet
from .device import DeviceModel, MemoryEnvironment
from .memoryspace import MemorySpace, MemorySystem, ZeroCopyBuffer
from .pcie import PCIeBus
from .specs import COUPLED_A8_3870K, EMULATED_DISCRETE, GB, MachineSpec
from .workstats import TimeBreakdown, WorkStats

CPU = "cpu"
GPU = "gpu"
DEVICE_KINDS = (CPU, GPU)


class Machine:
    """A simulated CPU-GPU machine (coupled or discrete)."""

    def __init__(self, spec: MachineSpec) -> None:
        self.spec = spec
        self._models = {
            CPU: DeviceModel(spec.cpu),
            GPU: DeviceModel(spec.gpu),
        }
        self.cache = CacheModel(spec.cache, shared=spec.shared_cache)
        self.bus = PCIeBus(spec.pcie) if spec.pcie is not None else None
        self.memory = MemorySystem(
            zero_copy=ZeroCopyBuffer(spec.zero_copy_buffer_bytes),
            system_memory=MemorySpace("system-memory", capacity_bytes=16 * GB),
        )

    # ------------------------------------------------------------------
    # Device access
    # ------------------------------------------------------------------
    @property
    def is_coupled(self) -> bool:
        return self.bus is None

    def device_model(self, kind: str) -> DeviceModel:
        if kind not in self._models:
            raise ValueError(f"unknown device kind {kind!r}; expected one of {DEVICE_KINDS}")
        return self._models[kind]

    @property
    def cpu(self) -> DeviceModel:
        return self._models[CPU]

    @property
    def gpu(self) -> DeviceModel:
        return self._models[GPU]

    # ------------------------------------------------------------------
    # Memory environment
    # ------------------------------------------------------------------
    def memory_environment(self, working_set: WorkingSet | None) -> MemoryEnvironment:
        """Translate a step's working set into a cache miss ratio."""
        if working_set is None:
            return MemoryEnvironment(miss_ratio=1.0)
        fraction = working_set.partition_fraction(self.spec.shared_cache)
        miss = self.cache.miss_ratio(working_set.bytes, partition_fraction=fraction)
        return MemoryEnvironment(miss_ratio=miss)

    # ------------------------------------------------------------------
    # Timing entry points
    # ------------------------------------------------------------------
    def step_time(
        self,
        device: str,
        stats: WorkStats,
        working_set: WorkingSet | None = None,
        record_cache: bool = True,
    ) -> TimeBreakdown:
        """Simulated time of executing ``stats`` on ``device``.

        Cache accesses are recorded against the machine-wide cache counters so
        experiments can report miss counts (Table 3).
        """
        env = self.memory_environment(working_set)
        if record_cache and stats.random_accesses:
            self.cache.record_accesses(stats.random_accesses, env.miss_ratio)
        return self.device_model(device).elapsed(stats, env)

    def step_seconds(
        self,
        device: str,
        stats: WorkStats,
        working_set: WorkingSet | None = None,
    ) -> float:
        return self.step_time(device, stats, working_set).total_s

    def transfer_seconds(self, n_bytes: int, direction: str, label: str = "") -> float:
        """Data-movement cost between host and device memory.

        Zero on the coupled architecture (the point of the paper); the PCI-e
        delay formula on the discrete architecture.
        """
        if self.bus is None:
            return 0.0
        return self.bus.transfer(n_bytes, direction, label=label)

    # ------------------------------------------------------------------
    def reset_counters(self) -> None:
        self.cache.reset()
        if self.bus is not None:
            self.bus.reset()
        self.memory.reset()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Machine({self.spec.name!r}, coupled={self.is_coupled})"


def coupled_machine() -> Machine:
    """The default coupled AMD A8-3870K machine used in the paper."""
    return Machine(COUPLED_A8_3870K)


def discrete_machine() -> Machine:
    """The emulated discrete CPU-GPU machine (PCI-e 3 GB/s, 0.015 ms latency)."""
    return Machine(EMULATED_DISCRETE)
