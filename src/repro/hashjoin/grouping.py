"""Workload-divergence grouping (Section 3.3, "Workload divergence").

Data skew makes the per-tuple work of steps ``b3``/``p3`` (key-list length)
and ``p4`` (number of matches) vary widely inside one wavefront, and a
wavefront only retires when its slowest work item does.  The paper reduces the
penalty by grouping the input by expected workload before forming wavefronts
(borrowed from [18]), reporting a 5-10% end-to-end gain.

This module exposes the grouping decision as a standalone, testable unit: it
estimates the divergence of a step with and without grouping and tells the
caller whether paying the grouping pass is worthwhile.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..opencl.ndrange import AMD_WAVEFRONT_WIDTH
from ..opencl.wavefront import grouped_divergence, wavefront_divergence
from .steps import PerTupleWork, StepExecution


@dataclass(frozen=True)
class GroupingDecision:
    """Outcome of evaluating the grouping optimisation for one step."""

    divergence_ungrouped: float
    divergence_grouped: float
    #: Per-tuple overhead of the grouping pass relative to the step's work.
    relative_overhead: float
    n_groups: int

    @property
    def divergence_reduction(self) -> float:
        return max(0.0, self.divergence_ungrouped - self.divergence_grouped)

    @property
    def worthwhile(self) -> bool:
        """Group when the saved divergence exceeds the grouping overhead."""
        return self.divergence_reduction > self.relative_overhead


def evaluate_grouping(
    work: PerTupleWork,
    n_groups: int = 32,
    wavefront_width: int = AMD_WAVEFRONT_WIDTH,
    grouping_cost_per_tuple: float = 6.0,
) -> GroupingDecision:
    """Estimate divergence with/without grouping for a step's per-tuple work."""
    if n_groups <= 0:
        raise ValueError("n_groups must be positive")
    proxy = work.workload_proxy()
    if proxy.shape[0] == 0:
        return GroupingDecision(0.0, 0.0, 0.0, n_groups)
    ungrouped = wavefront_divergence(proxy, width=wavefront_width).divergence
    grouped_report, _ = grouped_divergence(proxy, width=wavefront_width, n_groups=n_groups)
    mean_work = float(proxy.mean()) if proxy.shape[0] else 1.0
    relative_overhead = grouping_cost_per_tuple / max(mean_work, 1e-9)
    return GroupingDecision(
        divergence_ungrouped=ungrouped,
        divergence_grouped=grouped_report.divergence,
        relative_overhead=relative_overhead,
        n_groups=n_groups,
    )


def evaluate_step_grouping(
    execution: StepExecution,
    n_groups: int = 32,
    wavefront_width: int = AMD_WAVEFRONT_WIDTH,
) -> GroupingDecision:
    """Convenience wrapper taking an executed step."""
    return evaluate_grouping(
        execution.work, n_groups=n_groups, wavefront_width=wavefront_width
    )


def tune_group_count(
    work: PerTupleWork,
    candidates: tuple[int, ...] = (4, 8, 16, 32, 64, 128),
    wavefront_width: int = AMD_WAVEFRONT_WIDTH,
) -> int:
    """Pick the group count trading grouping overhead against divergence.

    The paper notes the number of groups is "tuned for the tradeoff between
    the grouping overhead and the gain of reduced workload divergence"; the
    overhead grows (mildly) with the group count while the residual divergence
    shrinks, so we minimise their sum.
    """
    proxy = work.workload_proxy()
    if proxy.shape[0] == 0:
        return candidates[0]
    best_count = candidates[0]
    best_score = float("inf")
    mean_work = max(float(proxy.mean()), 1e-9)
    for count in candidates:
        report, _ = grouped_divergence(proxy, width=wavefront_width, n_groups=count)
        overhead = (6.0 + 0.05 * count) / mean_work
        score = report.divergence + overhead
        if score < best_score:
            best_score = score
            best_count = count
    return best_count
