"""The chained hash table used by all hash-join variants (Section 3.1).

The structure follows the implementation adopted from previous studies
[4, 17, 22]:

* an array of **bucket headers**, each holding the number of tuples in the
  bucket and a pointer to its key list;
* a **key list** of nodes, one per distinct key hashing into the bucket, each
  pointing at a **rid list** of all record ids carrying that key.

All nodes live inside a pre-allocated arena served by one of the software
memory allocators of :mod:`repro.opencl.allocator`, so the allocator's atomic
behaviour (basic vs. block) directly shows up in the build cost.

The table offers both a per-tuple reference path (:meth:`HashTable.insert`
and :meth:`HashTable.probe_one`) used by unit tests and small runs, and bulk
vectorised paths (:meth:`HashTable.bulk_insert`, :meth:`HashTable.bulk_probe`)
used at experiment scale.  Both paths maintain the identical node-array
structure and report the identical per-tuple work quantities.
"""

from __future__ import annotations

# repro: kernel
from dataclasses import dataclass, field

import numpy as np

from ..hardware.cache import WorkingSet
from ..opencl.allocator import Arena, MemoryAllocator, make_allocator
from ..opencl.atomics import LatchTable, concurrent_hardware_threads
from .result import JoinResult

#: Bytes of one bucket header (tuple count + key-list pointer).
BUCKET_HEADER_BYTES = 8
#: Bytes of one key-list node (key, next pointer, rid head, rid count).
KEY_NODE_BYTES = 16
#: Bytes of one rid-list node (rid, next pointer).
RID_NODE_BYTES = 8

# Instruction-count constants per step, calibrated to the profile granularity
# the paper obtains from AMD CodeXL (Section 4.2).  Hash computation costs are
# in murmur.MURMUR_INSTRUCTIONS_PER_KEY.
HEADER_VISIT_INSTRUCTIONS = 15.0
KEY_SEARCH_BASE_INSTRUCTIONS = 12.0
KEY_SEARCH_PER_NODE_INSTRUCTIONS = 22.0
RID_INSERT_INSTRUCTIONS = 20.0
MATCH_VISIT_BASE_INSTRUCTIONS = 10.0
MATCH_VISIT_PER_MATCH_INSTRUCTIONS = 18.0


class HashTableError(RuntimeError):
    """Raised on inconsistent hash-table usage."""


@dataclass
class BuildWork:
    """Per-tuple work of the build steps ``b2``–``b4`` (original tuple order)."""

    n_tuples: int
    #: b3: number of key-list nodes visited by each tuple.
    key_nodes_visited: np.ndarray
    #: b3: 1.0 where the tuple created a new key node, else 0.0.
    new_key_created: np.ndarray
    #: Contention ratio of the bucket latches per device kind.
    latch_conflict: dict[str, float] = field(default_factory=dict)


@dataclass
class ProbeWork:
    """Per-tuple work of the probe steps ``p2``–``p4`` (original tuple order)."""

    n_tuples: int
    #: p3: number of key-list nodes visited by each probe tuple.
    key_nodes_visited: np.ndarray
    #: p4: number of matching build tuples for each probe tuple.
    matches: np.ndarray


def default_bucket_count(expected_keys: int) -> int:
    """Power-of-two bucket count giving about one distinct key per bucket."""
    n = max(int(expected_keys), 16)
    return 1 << int(np.ceil(np.log2(n)))


class HashTable:
    """Bucket headers -> key lists -> rid lists, backed by a software allocator."""

    def __init__(
        self,
        n_buckets: int,
        allocator: MemoryAllocator | None = None,
        shared_between_devices: bool = True,
        initial_capacity: int = 1024,
    ) -> None:
        if n_buckets <= 0:
            raise HashTableError("n_buckets must be positive")
        self.n_buckets = int(n_buckets)
        self.allocator = allocator or make_allocator("block")
        self.shared_between_devices = shared_between_devices

        # Bucket headers.
        self.bucket_tuple_count = np.zeros(self.n_buckets, dtype=np.int64)
        self.bucket_key_count = np.zeros(self.n_buckets, dtype=np.int64)
        self.bucket_head = np.full(self.n_buckets, -1, dtype=np.int64)
        self.bucket_tail = np.full(self.n_buckets, -1, dtype=np.int64)
        self.latches = LatchTable(self.n_buckets)

        # Key-list nodes.
        capacity = max(int(initial_capacity), 16)
        self.key_node_key = np.empty(capacity, dtype=np.int64)
        self.key_node_next = np.empty(capacity, dtype=np.int64)
        self.key_node_rid_head = np.empty(capacity, dtype=np.int64)
        self.key_node_rid_count = np.empty(capacity, dtype=np.int64)
        self.key_node_chain_pos = np.empty(capacity, dtype=np.int64)
        self.key_node_bucket = np.empty(capacity, dtype=np.int64)
        self.n_key_nodes = 0

        # Rid-list nodes.
        self.rid_node_rid = np.empty(capacity, dtype=np.int64)
        self.rid_node_next = np.empty(capacity, dtype=np.int64)
        self.rid_node_owner = np.empty(capacity, dtype=np.int64)
        self.n_rid_nodes = 0

        # Lazily built CSR view of the rid lists for vectorised probing.
        self._csr_dirty = True
        self._csr_offsets: np.ndarray | None = None
        self._csr_rids: np.ndarray | None = None

        # Lazily sorted key-node keys shared by lookups and probes.
        self._key_order_dirty = True
        self._key_order: np.ndarray | None = None
        self._sorted_keys: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Capacity management
    # ------------------------------------------------------------------
    def _ensure_key_capacity(self, extra: int) -> None:
        needed = self.n_key_nodes + extra
        capacity = self.key_node_key.shape[0]
        if needed <= capacity:
            return
        new_capacity = max(needed, capacity * 2)
        for name in (
            "key_node_key",
            "key_node_next",
            "key_node_rid_head",
            "key_node_rid_count",
            "key_node_chain_pos",
            "key_node_bucket",
        ):
            old = getattr(self, name)
            # Amortised doubling: this loop runs once per capacity level,
            # not per tuple, and the new buffer *is* the workspace.
            grown = np.empty(new_capacity, dtype=np.int64)  # repro: ignore[numpy-hygiene]
            grown[: self.n_key_nodes] = old[: self.n_key_nodes]
            setattr(self, name, grown)

    def _ensure_rid_capacity(self, extra: int) -> None:
        needed = self.n_rid_nodes + extra
        capacity = self.rid_node_rid.shape[0]
        if needed <= capacity:
            return
        new_capacity = max(needed, capacity * 2)
        for name in ("rid_node_rid", "rid_node_next", "rid_node_owner"):
            old = getattr(self, name)
            # Amortised doubling, as in _ensure_key_capacity above.
            grown = np.empty(new_capacity, dtype=np.int64)  # repro: ignore[numpy-hygiene]
            grown[: self.n_rid_nodes] = old[: self.n_rid_nodes]
            setattr(self, name, grown)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_tuples(self) -> int:
        return self.n_rid_nodes

    @property
    def nbytes(self) -> int:
        """Size of the logical structure (what occupies cache and buffer)."""
        return (
            self.n_buckets * BUCKET_HEADER_BYTES
            + self.n_key_nodes * KEY_NODE_BYTES
            + self.n_rid_nodes * RID_NODE_BYTES
        )

    def working_set(self) -> WorkingSet:
        return WorkingSet(
            bytes=float(self.nbytes),
            shared_between_devices=self.shared_between_devices,
        )

    def chain_length(self, bucket: int) -> int:
        """Number of key nodes in one bucket's key list."""
        return int(self.bucket_key_count[bucket])

    def bucket_of_key(self, key: int) -> int | None:
        nodes = self._lookup_nodes(np.asarray([int(key)], dtype=np.int64))
        if nodes[0] < 0:
            return None
        return int(self.key_node_bucket[int(nodes[0])])

    def latch_conflict_ratio(self, device_kind: str) -> float:
        """Bucket-latch contention observed so far on one device kind."""
        threads = concurrent_hardware_threads(device_kind)
        return self.latches.conflict_ratio(threads)

    # ------------------------------------------------------------------
    # Per-tuple reference path
    # ------------------------------------------------------------------
    def insert(self, key: int, rid: int, bucket: int) -> tuple[int, bool]:
        """Insert one tuple; returns (key nodes visited, created new key node).

        This is the literal Algorithm 1 build loop (steps b2-b4 for one tuple)
        and is used by tests and the reference executor.
        """
        if not 0 <= bucket < self.n_buckets:
            raise HashTableError(f"bucket {bucket} out of range")
        key = int(key)
        rid = int(rid)

        # b2: visit the bucket header.
        self.latches.acquire_release(bucket)
        self.bucket_tuple_count[bucket] += 1

        # b3: walk the key list looking for the key.
        visited = 0
        node = self.bucket_head[bucket]
        found = -1
        last = -1
        while node != -1:
            visited += 1
            if self.key_node_key[node] == key:
                found = node
                break
            last = node
            node = self.key_node_next[node]

        created = False
        if found == -1:
            created = True
            visited += 1 if self.bucket_key_count[bucket] > 0 else 1
            self._ensure_key_capacity(1)
            self.allocator.allocate(KEY_NODE_BYTES, group_id=bucket % 64)
            found = self.n_key_nodes
            self.key_node_key[found] = key
            self.key_node_next[found] = -1
            self.key_node_rid_head[found] = -1
            self.key_node_rid_count[found] = 0
            self.key_node_chain_pos[found] = self.bucket_key_count[bucket]
            self.key_node_bucket[found] = bucket
            self.n_key_nodes += 1
            self._key_order_dirty = True
            if last == -1 and self.bucket_head[bucket] == -1:
                self.bucket_head[bucket] = found
            else:
                tail = self.bucket_tail[bucket]
                self.key_node_next[tail] = found
            self.bucket_tail[bucket] = found
            self.bucket_key_count[bucket] += 1

        # b4: insert the record id into the rid list (prepend).
        self._ensure_rid_capacity(1)
        self.allocator.allocate(RID_NODE_BYTES, group_id=bucket % 64)
        rid_node = self.n_rid_nodes
        self.rid_node_rid[rid_node] = rid
        self.rid_node_next[rid_node] = self.key_node_rid_head[found]
        self.rid_node_owner[rid_node] = found
        self.key_node_rid_head[found] = rid_node
        self.key_node_rid_count[found] += 1
        self.n_rid_nodes += 1
        self._csr_dirty = True
        return visited, created

    def probe_one(self, key: int, bucket: int) -> tuple[list[int], int]:
        """Probe one key; returns (matching build rids, key nodes visited)."""
        if not 0 <= bucket < self.n_buckets:
            raise HashTableError(f"bucket {bucket} out of range")
        visited = 0
        node = self.bucket_head[bucket]
        while node != -1:
            visited += 1
            if self.key_node_key[node] == int(key):
                rids: list[int] = []
                rid_node = self.key_node_rid_head[node]
                while rid_node != -1:
                    rids.append(int(self.rid_node_rid[rid_node]))
                    rid_node = self.rid_node_next[rid_node]
                return rids, visited
            node = self.key_node_next[node]
        return [], visited

    # ------------------------------------------------------------------
    # Bulk (vectorised) path
    # ------------------------------------------------------------------
    def _sorted_key_view(self) -> tuple[np.ndarray, np.ndarray]:
        """(sorted live key-node keys, argsort order), cached until inserts."""
        if self._key_order_dirty or self._key_order is None:
            table_keys = self.key_node_key[: self.n_key_nodes]
            self._key_order = np.argsort(table_keys, kind="stable")
            self._sorted_keys = table_keys[self._key_order]
            self._key_order_dirty = False
        return self._sorted_keys, self._key_order

    def _lookup_nodes(self, keys: np.ndarray) -> np.ndarray:
        """Key-node index per key (-1 when absent), fully vectorised.

        Binary-searches the queries against the cached sorted key view, the
        same technique :meth:`bulk_probe` uses; the common build path (bulk
        inserts into a fresh table) skips it entirely via the empty check.
        """
        if self.n_key_nodes == 0:
            return np.full(keys.shape[0], -1, dtype=np.int64)
        sorted_table_keys, key_order = self._sorted_key_view()
        positions = np.searchsorted(sorted_table_keys, keys)
        positions_clipped = np.minimum(positions, self.n_key_nodes - 1)
        found = (positions < self.n_key_nodes) & (
            sorted_table_keys[positions_clipped] == keys
        )
        return np.where(found, key_order[positions_clipped], -1)

    def bulk_insert(
        self,
        keys: np.ndarray,
        rids: np.ndarray,
        buckets: np.ndarray,
    ) -> BuildWork:
        """Insert a batch of tuples; returns per-tuple work in input order.

        The resulting node structure is identical (up to chain ordering) to
        issuing :meth:`insert` per tuple.
        """
        keys = np.asarray(keys, dtype=np.int64)
        rids = np.asarray(rids, dtype=np.int64)
        buckets = np.asarray(buckets, dtype=np.int64)
        n = keys.shape[0]
        if rids.shape[0] != n or buckets.shape[0] != n:
            raise HashTableError("keys, rids and buckets must have the same length")
        if n == 0:
            return BuildWork(
                n_tuples=0,
                key_nodes_visited=np.empty(0, dtype=np.float64),
                new_key_created=np.empty(0, dtype=np.float64),
            )
        if buckets.min() < 0 or buckets.max() >= self.n_buckets:
            raise HashTableError("bucket numbers out of range")

        # Group tuples by (bucket, key).
        order = np.lexsort((keys, buckets))
        s_keys = keys[order]
        s_rids = rids[order]
        s_buckets = buckets[order]
        boundary = np.ones(n, dtype=bool)
        boundary[1:] = (s_keys[1:] != s_keys[:-1]) | (s_buckets[1:] != s_buckets[:-1])
        group_of_tuple = np.cumsum(boundary) - 1
        group_starts = np.flatnonzero(boundary)
        group_keys = s_keys[group_starts]
        group_buckets = s_buckets[group_starts]
        n_groups = group_keys.shape[0]

        # Which groups hit an already-existing key node?
        existing_nodes = self._lookup_nodes(group_keys)
        is_new = existing_nodes < 0
        n_new = int(is_new.sum())

        # b2: one bucket-header visit (and latch) per tuple.
        np.add.at(self.bucket_tuple_count, s_buckets, 1)
        np.add.at(self.latches.acquisitions, s_buckets, 1)

        # b3 new key nodes: append them to their buckets' chains.
        group_node = existing_nodes.copy()
        if n_new:
            group_node[is_new] = self._append_key_nodes(
                group_keys[is_new], group_buckets[is_new]
            )

        # b4: one rid node per tuple, prepended group-wise to the key's list.
        self._ensure_rid_capacity(n)
        self.allocator.bulk_allocate(n, RID_NODE_BYTES, n_groups=max(1, n // 256))
        rid_ids = self.n_rid_nodes + np.arange(n, dtype=np.int64)
        owner = group_node[group_of_tuple]
        self.rid_node_rid[rid_ids] = s_rids
        self.rid_node_owner[rid_ids] = owner
        # Chain tuples of the same group consecutively; the last tuple of each
        # group points at the key node's previous head.
        next_rid = np.full(n, -1, dtype=np.int64)
        same_group_as_next = np.zeros(n, dtype=bool)
        same_group_as_next[:-1] = group_of_tuple[1:] == group_of_tuple[:-1]
        next_rid[same_group_as_next] = rid_ids[1:][same_group_as_next[:-1]]
        group_last_index = np.append(group_starts[1:], n) - 1
        next_rid[group_last_index] = self.key_node_rid_head[group_node]
        self.rid_node_next[rid_ids] = next_rid
        self.key_node_rid_head[group_node] = rid_ids[group_starts]
        np.add.at(self.key_node_rid_count, owner, 1)
        self.n_rid_nodes += n
        self._csr_dirty = True

        # Per-tuple b3 traversal lengths, mapped back to the input order.
        visited_sorted = self.key_node_chain_pos[owner].astype(np.float64) + 1.0
        created_sorted = np.zeros(n, dtype=np.float64)
        created_sorted[group_starts[is_new]] = 1.0
        visited = np.empty(n, dtype=np.float64)
        created = np.empty(n, dtype=np.float64)
        visited[order] = visited_sorted
        created[order] = created_sorted

        conflict = {
            "cpu": self.latch_conflict_ratio("cpu"),
            "gpu": self.latch_conflict_ratio("gpu"),
        }
        return BuildWork(
            n_tuples=n,
            key_nodes_visited=visited,
            new_key_created=created,
            latch_conflict=conflict,
        )

    def _append_key_nodes(self, new_keys: np.ndarray, new_buckets: np.ndarray) -> np.ndarray:
        """Append new key nodes to their buckets' chains; returns their ids.

        ``new_buckets`` must arrive grouped (all nodes of one bucket
        consecutive) in the order the nodes should chain up — the
        ``(bucket, key)``-sorted group order both :meth:`bulk_insert` and
        :meth:`_bulk_merge` produce.  This is the single implementation of
        the b3 chain-append kernel, so the two callers cannot drift.
        """
        n_new = new_keys.shape[0]
        self._ensure_key_capacity(n_new)
        self.allocator.bulk_allocate(
            n_new, KEY_NODE_BYTES, n_groups=max(1, n_new // 256)
        )
        new_node_ids = self.n_key_nodes + np.arange(n_new, dtype=np.int64)

        # Rank of each new key inside its bucket's run of new keys.
        run_start = np.ones(n_new, dtype=bool)
        run_start[1:] = new_buckets[1:] != new_buckets[:-1]
        run_first_index = np.flatnonzero(run_start)
        run_id = np.cumsum(run_start) - 1
        rank_in_run = np.arange(n_new) - run_first_index[run_id]
        chain_pos = self.bucket_key_count[new_buckets] + rank_in_run

        self.key_node_key[new_node_ids] = new_keys
        self.key_node_rid_head[new_node_ids] = -1
        self.key_node_rid_count[new_node_ids] = 0
        self.key_node_chain_pos[new_node_ids] = chain_pos
        self.key_node_bucket[new_node_ids] = new_buckets

        # next pointers: consecutive new nodes of the same bucket chain up;
        # the last node of each run terminates the chain.
        next_ids = np.full(n_new, -1, dtype=np.int64)
        same_bucket_as_next = np.zeros(n_new, dtype=bool)
        same_bucket_as_next[:-1] = new_buckets[1:] == new_buckets[:-1]
        next_ids[same_bucket_as_next] = new_node_ids[1:][same_bucket_as_next[:-1]]
        self.key_node_next[new_node_ids] = next_ids

        # Attach each run to the existing chain (tail append) or make it
        # the bucket head.
        run_first_nodes = new_node_ids[run_first_index]
        run_buckets = new_buckets[run_first_index]
        run_last_index = np.append(run_first_index[1:], n_new) - 1
        run_last_nodes = new_node_ids[run_last_index]
        had_tail = self.bucket_tail[run_buckets] >= 0
        tails = self.bucket_tail[run_buckets][had_tail]
        self.key_node_next[tails] = run_first_nodes[had_tail]
        self.bucket_head[run_buckets[~had_tail]] = run_first_nodes[~had_tail]
        self.bucket_tail[run_buckets] = run_last_nodes

        run_sizes = np.diff(np.append(run_first_index, n_new))
        np.add.at(self.bucket_key_count, run_buckets, run_sizes)

        self.n_key_nodes += n_new
        self._key_order_dirty = True
        return new_node_ids

    def _rebuild_csr(self) -> None:
        """Materialise rid lists as a CSR layout keyed by key-node index."""
        n = self.n_rid_nodes
        owners = self.rid_node_owner[:n]
        rids = self.rid_node_rid[:n]
        order = np.argsort(owners, kind="stable")
        sorted_owners = owners[order]
        counts = np.zeros(self.n_key_nodes + 1, dtype=np.int64)
        np.add.at(counts, sorted_owners + 1, 1)
        self._csr_offsets = np.cumsum(counts)
        self._csr_rids = rids[order]
        self._csr_dirty = False

    def bulk_probe(
        self,
        keys: np.ndarray,
        rids: np.ndarray,
        buckets: np.ndarray,
    ) -> tuple[JoinResult, ProbeWork]:
        """Probe a batch of tuples; returns matches and per-tuple work."""
        keys = np.asarray(keys, dtype=np.int64)
        rids = np.asarray(rids, dtype=np.int64)
        buckets = np.asarray(buckets, dtype=np.int64)
        n = keys.shape[0]
        if rids.shape[0] != n or buckets.shape[0] != n:
            raise HashTableError("keys, rids and buckets must have the same length")
        if n == 0:
            return JoinResult.empty(), ProbeWork(
                n_tuples=0,
                key_nodes_visited=np.empty(0, dtype=np.float64),
                matches=np.empty(0, dtype=np.float64),
            )

        if self._csr_dirty:
            self._rebuild_csr()

        # p3: locate the probe key among the table's key nodes.
        if self.n_key_nodes == 0:
            found_mask = np.zeros(n, dtype=bool)
            node_of_probe = np.full(n, -1, dtype=np.int64)
        else:
            sorted_table_keys, key_order = self._sorted_key_view()
            positions = np.searchsorted(sorted_table_keys, keys)
            positions_clipped = np.minimum(positions, self.n_key_nodes - 1)
            found_mask = (positions < self.n_key_nodes) & (
                sorted_table_keys[positions_clipped] == keys
            )
            node_of_probe = np.where(found_mask, key_order[positions_clipped], -1)

        chain_lengths = self.bucket_key_count[buckets].astype(np.float64)
        visited = np.where(
            found_mask,
            self.key_node_chain_pos[np.maximum(node_of_probe, 0)].astype(np.float64) + 1.0,
            chain_lengths,
        )
        # Probing an empty bucket still reads its header only; count at least
        # the header inspection as one visited node when the chain is empty.
        visited = np.maximum(visited, 0.0)

        # p4: fetch the matching rid lists.
        match_counts = np.where(
            found_mask,
            self.key_node_rid_count[np.maximum(node_of_probe, 0)],
            0,
        ).astype(np.int64)
        total = int(match_counts.sum())
        if total:
            offsets = self._csr_offsets
            csr_rids = self._csr_rids
            starts = offsets[np.maximum(node_of_probe, 0)]
            out_offsets = np.concatenate(([0], np.cumsum(match_counts)[:-1]))
            flat = (
                np.arange(total)
                - np.repeat(out_offsets, match_counts)
                + np.repeat(starts, match_counts)
            )
            build_out = csr_rids[flat]
            probe_out = np.repeat(rids, match_counts)
            result = JoinResult(build_rids=build_out, probe_rids=probe_out)
        else:
            result = JoinResult.empty()

        work = ProbeWork(
            n_tuples=n,
            key_nodes_visited=visited,
            matches=match_counts.astype(np.float64),
        )
        return result, work

    # ------------------------------------------------------------------
    # Merging (separate hash tables on DD / the discrete architecture)
    # ------------------------------------------------------------------
    def merge_from(self, other: "HashTable", use_bulk: bool = True) -> dict[str, float]:
        """Merge another partial table into this one.

        Returns the merge work (node copies and pointer fixes) that the DD
        scheme with *separate* hash tables must pay; with a shared hash table
        this operation disappears (Section 5.2, Figure 10).

        The default path gathers the other table's ``(key, rid)`` pairs from
        its CSR view and applies them with one vectorised :meth:`bulk_insert`
        pass.  ``use_bulk=False`` keeps the historical per-bucket/per-node
        chain walk as the bit-matched reference: both paths feed
        :meth:`bulk_insert` tuple sequences that agree within every
        ``(bucket, key)`` group, so the resulting chains, counters and
        returned work dict are identical.
        """
        if other.n_buckets != self.n_buckets:
            raise HashTableError("cannot merge tables with different bucket counts")
        n_keys = other.n_key_nodes
        n_rids = other.n_rid_nodes
        if n_rids == 0:
            return {"key_nodes": 0.0, "rid_nodes": 0.0, "bytes": 0.0}

        # Re-attach the other table's tuples under this table's chains.  The
        # logical effect is identical to having inserted them here directly.
        if use_bulk:
            self._bulk_merge(other)
        else:
            owners = other.rid_node_owner[:n_rids]
            keys = other.key_node_key[owners]
            rids = other.rid_node_rid[:n_rids]
            # Recover bucket numbers from the other table's chains: a key's
            # bucket is where its key node was chained.
            key_to_bucket = np.empty(other.n_key_nodes, dtype=np.int64)
            for bucket in range(other.n_buckets):
                node = other.bucket_head[bucket]
                while node != -1:
                    key_to_bucket[node] = bucket
                    node = other.key_node_next[node]
            buckets = key_to_bucket[owners]
            self.bulk_insert(keys, rids, buckets)

        return {
            "key_nodes": float(n_keys),
            "rid_nodes": float(n_rids),
            "bytes": float(n_keys * KEY_NODE_BYTES + n_rids * RID_NODE_BYTES),
        }

    def _bulk_merge(self, other: "HashTable") -> None:
        """Apply all of ``other``'s tuples in one node-level vectorised pass.

        :meth:`bulk_insert` must sort, group and work-account *tuples*; a
        merge already knows the groups — they are exactly the other table's
        key nodes, and its CSR view holds every group's rid segment
        contiguously.  Sorting the ``nk`` key nodes by ``(bucket, key)`` and
        expanding their rid segments reproduces bit-for-bit the tuple order
        the generic path's lexsort would produce (groups are unique per
        ``(bucket, key)``, segment interiors keep CSR order), so every node
        array, counter and allocator statistic ends up identical — while the
        per-tuple work arrays (which a merge discards) are never built.
        """
        nk = other.n_key_nodes
        n = other.n_rid_nodes
        if other._csr_dirty:
            other._rebuild_csr()
        seg_counts = np.diff(other._csr_offsets)

        # Group arrays sorted by (bucket, key) — what the generic lexsort
        # would compute from the expanded tuples.
        node_order = np.lexsort(
            (other.key_node_key[:nk], other.key_node_bucket[:nk])
        )
        group_keys = other.key_node_key[:nk][node_order]
        group_buckets = other.key_node_bucket[:nk][node_order]
        group_sizes = seg_counts[node_order]

        # Expand the rid segments into the grouped order.
        out_offsets = np.concatenate(([0], np.cumsum(group_sizes)))
        src_starts = other._csr_offsets[:-1][node_order]
        flat = (
            np.arange(n)
            - np.repeat(out_offsets[:-1], group_sizes)
            + np.repeat(src_starts, group_sizes)
        )
        s_rids = other._csr_rids[flat]

        existing_nodes = self._lookup_nodes(group_keys)
        is_new = existing_nodes < 0
        n_new = int(is_new.sum())

        # b2-equivalent: one bucket-header visit (and latch) per tuple.
        np.add.at(self.bucket_tuple_count, group_buckets, group_sizes)
        np.add.at(self.latches.acquisitions, group_buckets, group_sizes)

        # b3-equivalent: append the unmatched key nodes to their buckets'
        # chains — the shared chain-append kernel, on node-level arrays.
        group_node = existing_nodes.copy()
        if n_new:
            group_node[is_new] = self._append_key_nodes(
                group_keys[is_new], group_buckets[is_new]
            )

        # b4-equivalent: copy the rid segments wholesale.  Rid ids are
        # consecutive in grouped order, so intra-segment chaining is just
        # ``id + 1``; segment tails point at the owners' previous heads.
        self._ensure_rid_capacity(n)
        self.allocator.bulk_allocate(n, RID_NODE_BYTES, n_groups=max(1, n // 256))
        start = self.n_rid_nodes
        rid_ids = start + np.arange(n, dtype=np.int64)
        self.rid_node_rid[start : start + n] = s_rids
        self.rid_node_owner[start : start + n] = np.repeat(group_node, group_sizes)
        next_rid = rid_ids + 1
        next_rid[out_offsets[1:] - 1] = self.key_node_rid_head[group_node]
        self.rid_node_next[start : start + n] = next_rid
        self.key_node_rid_head[group_node] = rid_ids[out_offsets[:-1]]
        np.add.at(self.key_node_rid_count, group_node, group_sizes)
        self.n_rid_nodes += n
        self._csr_dirty = True

    # ------------------------------------------------------------------
    def validate(self, use_bulk: bool = True) -> None:
        """Internal consistency checks used by tests and property-based tests.

        The default path verifies the chain structure with vectorised
        array comparisons over the node arrays (the same view the CSR merge
        gathers from); ``use_bulk=False`` keeps the historical per-bucket
        chain walk as the reference.  Both raise on the same corruption
        classes (wrong counts, broken or cyclic chains, unreachable nodes).
        """
        if int(self.bucket_key_count.sum()) != self.n_key_nodes:
            raise HashTableError("bucket key counts do not sum to the key node count")
        if int(self.bucket_tuple_count.sum()) != self.n_rid_nodes:
            raise HashTableError("bucket tuple counts do not sum to the rid node count")
        if int(self.key_node_rid_count[: self.n_key_nodes].sum()) != self.n_rid_nodes:
            raise HashTableError("key node rid counts do not sum to the rid node count")
        if not use_bulk:
            self._validate_chains_scalar()
            return

        # Every chain must be reachable and contain exactly bucket_key_count
        # nodes.  A chain is healthy iff, per bucket, the live nodes' chain
        # positions are exactly 0..count-1, the head points at position 0,
        # the tail at the last position, and every next pointer links
        # position k to position k+1 — all checkable with one lexsort.
        nk = self.n_key_nodes
        buckets = self.key_node_bucket[:nk]
        if nk and (buckets.min() < 0 or buckets.max() >= self.n_buckets):
            raise HashTableError("key node bucket out of range")
        counts = np.bincount(buckets, minlength=self.n_buckets)
        if not np.array_equal(counts, self.bucket_key_count):
            raise HashTableError("chain lengths do not match recorded bucket key counts")
        if np.any(self.bucket_head[self.bucket_key_count == 0] != -1):
            raise HashTableError("empty bucket with a non-empty chain head")
        if nk == 0:
            return
        pos = self.key_node_chain_pos[:nk]
        order = np.lexsort((pos, buckets))
        sorted_buckets = buckets[order]
        starts = np.flatnonzero(
            np.concatenate(([True], sorted_buckets[1:] != sorted_buckets[:-1]))
        )
        sizes = np.diff(np.append(starts, nk))
        expected_pos = np.arange(nk) - np.repeat(starts, sizes)
        if not np.array_equal(pos[order], expected_pos):
            raise HashTableError("chain positions are not consecutive within buckets")
        nodes_sorted = order.astype(np.int64)
        expected_next = np.full(nk, -1, dtype=np.int64)
        same_bucket = sorted_buckets[1:] == sorted_buckets[:-1]
        expected_next[:-1][same_bucket] = nodes_sorted[1:][same_bucket]
        if not np.array_equal(self.key_node_next[nodes_sorted], expected_next):
            raise HashTableError("key chain next pointers are inconsistent")
        if not np.array_equal(self.bucket_head[sorted_buckets[starts]], nodes_sorted[starts]):
            raise HashTableError("bucket heads do not point at chain position 0")
        last = np.append(starts[1:], nk) - 1
        if not np.array_equal(self.bucket_tail[sorted_buckets[last]], nodes_sorted[last]):
            raise HashTableError("bucket tails do not point at the last chain node")

    def _validate_chains_scalar(self) -> None:
        """Reference chain walk (the pre-kernel validate loop)."""
        seen = 0
        for bucket in range(self.n_buckets):
            node = self.bucket_head[bucket]
            count = 0
            while node != -1:
                count += 1
                node = self.key_node_next[node]
                if count > self.n_key_nodes:
                    raise HashTableError("cycle detected in a key chain")
            if count != self.bucket_key_count[bucket]:
                raise HashTableError(
                    f"bucket {bucket} chain length {count} != recorded {self.bucket_key_count[bucket]}"
                )
            seen += count
        if seen != self.n_key_nodes:
            raise HashTableError("some key nodes are unreachable from bucket heads")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HashTable(buckets={self.n_buckets}, keys={self.n_key_nodes}, "
            f"tuples={self.n_rid_nodes}, shared={self.shared_between_devices})"
        )
