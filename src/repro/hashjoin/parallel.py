"""Process-pool execution of independent partition pairs (ISSUE 8).

After radix partitioning, the per-pair simple hash joins are completely
independent: each pair builds a private table, the bulk insert/probe kernels
only *add* to the allocator's counters and bump its arena pointer (they never
read allocator history), and latch contention is tracked per table.  That
independence is what this module exploits: pairs are joined by a pool of
forked worker processes, each against a freshly constructed allocator of the
same configuration, and the driver folds every worker's allocator deltas back
into the shared allocator *in pair order* — making the merged counters and
the concatenated step series bit-identical to the serial loop.

The pool is process-wide and lazily created (fork start method where
available), so repeated joins amortise the worker start-up cost.  Payload
chunks are contiguous runs of pairs balanced by tuple count, which keeps the
result order deterministic and the per-worker work roughly even under skew.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Sequence

import numpy as np

from .. import faults
from ..locking import make_lock
from ..opencl.allocator import AllocatorStats, MemoryAllocator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from .simple import HashJoinConfig

__all__ = [
    "PairPool",
    "ChunkOutcome",
    "run_coarse_pairs",
    "run_fine_pairs",
    "shared_pair_pool",
    "split_balanced",
]

#: Default worker count: one per CPU, capped — pair joins are memory-bound
#: NumPy kernels, so oversubscription only adds IPC.
MAX_DEFAULT_WORKERS = 8


def default_worker_count() -> int:
    return max(1, min(os.cpu_count() or 1, MAX_DEFAULT_WORKERS))


def split_balanced(
    items: Sequence[Any], n_chunks: int, weights: Sequence[float] | None = None
) -> list[list[Any]]:
    """Split ``items`` into at most ``n_chunks`` contiguous, weight-balanced runs.

    Boundaries are placed where the cumulative weight crosses the ideal
    per-chunk share, while guaranteeing every chunk at least one item; the
    concatenation of the chunks is always exactly ``items`` in order.
    """
    n = len(items)
    if n == 0:
        return []
    if n_chunks <= 0:
        raise ValueError("n_chunks must be positive")
    n_chunks = min(n_chunks, n)
    if weights is None:
        weights = [1.0] * n
    if len(weights) != n:
        raise ValueError("weights must match items")
    cum = np.cumsum(np.asarray(weights, dtype=np.float64))
    total = float(cum[-1])
    bounds = [0]
    for j in range(1, n_chunks):
        cut = int(np.searchsorted(cum, total * j / n_chunks, side="left")) + 1
        cut = max(cut, bounds[-1] + 1)
        cut = min(cut, n - (n_chunks - j))
        bounds.append(cut)
    bounds.append(n)
    return [list(items[a:b]) for a, b in zip(bounds, bounds[1:])]


class PairPool:
    """A lazily started pool of forked processes joining partition pairs.

    Not thread-safe: one driver thread submits chunks and consumes results.
    Workers are plain :class:`~concurrent.futures.ProcessPoolExecutor`
    processes using the ``fork`` start method where the platform offers it
    (payloads and worker functions are picklable, so ``spawn`` works too).
    """

    def __init__(self, n_workers: int | None = None) -> None:
        self.n_workers = max(1, n_workers if n_workers is not None else default_worker_count())
        self._executor: ProcessPoolExecutor | None = None
        #: Times a broken executor was detected and torn down for rebuild.
        self.pool_breaks = 0
        #: Chunks whose pool future was lost and that re-ran serially.
        self.chunks_recovered = 0

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context(
                "fork" if "fork" in methods else None
            )
            self._executor = ProcessPoolExecutor(
                max_workers=self.n_workers, mp_context=context
            )
        return self._executor

    def map(self, fn: Callable[[Any], Any], payloads: Sequence[Any]) -> list[Any]:
        """Apply ``fn`` to every payload, preserving payload order.

        A single payload (or a single-worker pool) is run in-process — the
        worker functions are deterministic, so the outcome is identical and
        the fork/IPC cost is saved.

        Survives a broken pool (a worker SIGKILLed or OOM-killed mid-chunk
        marks the whole :class:`ProcessPoolExecutor` broken): every payload
        whose future was lost re-runs serially in the driver — the worker
        functions are pure, so the recovered results are bit-identical to
        an unfaulted run — and the dead executor is torn down so the *next*
        map builds a fresh one instead of failing forever.  Exceptions
        raised by ``fn`` itself (in a healthy pool) still propagate.
        """
        if len(payloads) <= 1 or self.n_workers == 1:
            return [fn(payload) for payload in payloads]
        executor = self._ensure_executor()
        futures: list[Future[Any] | None] = []
        for index, payload in enumerate(payloads):
            for spec in faults.fire("parallel.chunk", chunk=index):
                if spec.action == "kill":
                    # Break the pool "during chunk index": a payload that
                    # SIGKILLs whichever worker picks it up.
                    try:
                        executor.submit(faults.kill_self, None)
                    except BrokenExecutor:
                        pass
            try:
                futures.append(executor.submit(fn, payload))
            except BrokenExecutor:
                futures.append(None)  # pool already broken: recover below
        results: list[Any] = []
        recovered = 0
        for payload, future in zip(payloads, futures):
            if future is not None:
                try:
                    results.append(future.result())
                    continue
                except BrokenProcessPool:
                    pass
            results.append(fn(payload))
            recovered += 1
        if recovered:
            self.chunks_recovered += recovered
            self.pool_breaks += 1
            self.invalidate()
        return results

    def invalidate(self) -> None:
        """Drop the (broken) executor so the next use rebuilds a fresh one.

        ``shutdown(wait=False)`` on a broken pool only reaps bookkeeping —
        its workers are already gone; on a healthy pool it lets in-flight
        work finish in the background while new maps get a new pool.
        """
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "started" if self._executor is not None else "idle"
        return f"PairPool(n_workers={self.n_workers}, {state})"


_POOLS_GUARD = make_lock("pair-pools")
_POOLS: dict[int, PairPool] = {}


def shared_pair_pool(n_workers: int | None = None) -> PairPool:
    """The process-wide pool for ``n_workers`` (created on first use)."""
    key = max(1, n_workers if n_workers is not None else default_worker_count())
    with _POOLS_GUARD:
        pool = _POOLS.get(key)
        if pool is None:
            pool = PairPool(key)
            _POOLS[key] = pool
        return pool


def _reset_pools_after_fork() -> None:
    # A forked child inherits the pool registry, but the executors' worker
    # processes and management threads belong to the parent: shutting them
    # down from the child would hang, and reusing them is corruption.  Drop
    # the executor references without shutdown and let first use in the
    # child build fresh pools under a fresh (never parent-held) guard.
    global _POOLS_GUARD
    _POOLS_GUARD = make_lock("pair-pools")
    for pool in _POOLS.values():
        pool._executor = None
    _POOLS.clear()


os.register_at_fork(after_in_child=_reset_pools_after_fork)


# ---------------------------------------------------------------------------
# Worker payloads and chunk outcomes
# ---------------------------------------------------------------------------
@dataclass
class ChunkOutcome:
    """Per-pair outcomes of one worker chunk plus its allocator deltas."""

    pairs: list[Any]
    stats: AllocatorStats = field(default_factory=AllocatorStats)
    arena_bytes: int = 0
    arena_bumps: int = 0


def _run_fine_chunk(payload: tuple[Any, ...]) -> ChunkOutcome:
    """Join a chunk of pairs with the fine-grained SHJ steps (worker side)."""
    from .partition import join_partition_pair

    pairs, config, reuse_hashes, arena_capacity = payload
    allocator = config.make_allocator(arena_capacity)
    outcomes = [
        join_partition_pair(
            build_part, probe_part, build_hashes, probe_hashes,
            config, reuse_hashes, allocator,
        )
        for build_part, probe_part, build_hashes, probe_hashes in pairs
    ]
    return ChunkOutcome(
        pairs=outcomes,
        stats=allocator.stats,
        arena_bytes=allocator.arena.used_bytes,
        arena_bumps=allocator.arena.global_atomics,
    )


def _run_coarse_chunk(payload: tuple[Any, ...]) -> ChunkOutcome:
    """Join a chunk of pairs as coarse per-pair work items (worker side)."""
    from .coarse import join_pair_coarse

    pairs, config, reuse_hashes, arena_capacity = payload
    allocator = config.make_allocator(arena_capacity)
    outcomes = [
        join_pair_coarse(
            build_part, probe_part, build_hashes, probe_hashes,
            config, reuse_hashes, allocator,
        )
        for build_part, probe_part, build_hashes, probe_hashes in pairs
    ]
    return ChunkOutcome(
        pairs=outcomes,
        stats=allocator.stats,
        arena_bytes=allocator.arena.used_bytes,
        arena_bumps=allocator.arena.global_atomics,
    )


def _run_pairs(
    worker: Callable[[tuple[Any, ...]], ChunkOutcome],
    pairs: Sequence[tuple[Any, ...]],
    config: "HashJoinConfig",
    reuse_hashes: bool,
    arena_capacity: int,
    allocator: MemoryAllocator,
    n_workers: int | None,
) -> list[Any]:
    pool = shared_pair_pool(n_workers)
    weights = [
        float(len(build_part) + len(probe_part))
        for build_part, probe_part, _, _ in pairs
    ]
    chunks = split_balanced(pairs, pool.n_workers, weights)
    payloads = [(chunk, config, reuse_hashes, arena_capacity) for chunk in chunks]
    outcomes: list[Any] = []
    for chunk_outcome in pool.map(worker, payloads):
        outcomes.extend(chunk_outcome.pairs)
        allocator.absorb(
            chunk_outcome.stats, chunk_outcome.arena_bytes, chunk_outcome.arena_bumps
        )
    return outcomes


def run_fine_pairs(
    pairs: Sequence[tuple[Any, ...]],
    config: "HashJoinConfig",
    reuse_hashes: bool,
    arena_capacity: int,
    allocator: MemoryAllocator,
    n_workers: int | None = None,
) -> list[tuple[Any, ...]]:
    """Join ``pairs`` on the shared pool with fine-grained SHJ steps.

    Returns the per-pair ``(build series, probe series, result, table bytes)``
    outcomes in pair order and folds the workers' allocator deltas into
    ``allocator`` (also in pair order), so the caller observes exactly the
    serial loop's state.
    """
    return _run_pairs(
        _run_fine_chunk, pairs, config, reuse_hashes, arena_capacity, allocator,
        n_workers,
    )


def run_coarse_pairs(
    pairs: Sequence[tuple[Any, ...]],
    config: "HashJoinConfig",
    reuse_hashes: bool,
    arena_capacity: int,
    allocator: MemoryAllocator,
    n_workers: int | None = None,
) -> list[tuple[Any, ...]]:
    """Join ``pairs`` on the shared pool as coarse per-pair work items."""
    return _run_pairs(
        _run_coarse_chunk, pairs, config, reuse_hashes, arena_capacity, allocator,
        n_workers,
    )
