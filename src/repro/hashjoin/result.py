"""Join results and validation helpers.

The paper's implementations "simply output the matching rid pair"
(Section 5.5); :class:`JoinResult` stores exactly that — two parallel arrays
of build-side and probe-side record ids — plus enough metadata to validate a
result against an independently computed ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.relation import Relation


@dataclass
class JoinResult:
    """Matching ``(build rid, probe rid)`` pairs of one hash join."""

    build_rids: np.ndarray
    probe_rids: np.ndarray

    def __post_init__(self) -> None:
        self.build_rids = np.asarray(self.build_rids, dtype=np.int64)
        self.probe_rids = np.asarray(self.probe_rids, dtype=np.int64)
        if self.build_rids.shape != self.probe_rids.shape:
            raise ValueError("build_rids and probe_rids must have the same shape")

    def __len__(self) -> int:
        return int(self.build_rids.shape[0])

    @property
    def match_count(self) -> int:
        return len(self)

    @classmethod
    def empty(cls) -> "JoinResult":
        return cls(
            build_rids=np.empty(0, dtype=np.int64),
            probe_rids=np.empty(0, dtype=np.int64),
        )

    @classmethod
    def concat(cls, results: list["JoinResult"]) -> "JoinResult":
        if not results:
            return cls.empty()
        return cls(
            build_rids=np.concatenate([r.build_rids for r in results]),
            probe_rids=np.concatenate([r.probe_rids for r in results]),
        )

    def as_pair_set(self) -> set[tuple[int, int]]:
        """The result as a set of (build rid, probe rid) pairs (small results)."""
        return set(zip(self.build_rids.tolist(), self.probe_rids.tolist()))

    def sorted_pairs(self) -> np.ndarray:
        """Canonicalised (n, 2) array of pairs, sorted for comparison."""
        pairs = np.stack([self.build_rids, self.probe_rids], axis=1)
        if pairs.shape[0] == 0:
            return pairs
        order = np.lexsort((pairs[:, 1], pairs[:, 0]))
        return pairs[order]

    def equals(self, other: "JoinResult") -> bool:
        """Order-insensitive equality of two join results."""
        if len(self) != len(other):
            return False
        return bool(np.array_equal(self.sorted_pairs(), other.sorted_pairs()))


def reference_join(build: Relation, probe: Relation) -> JoinResult:
    """A trivially-correct equi-join used as ground truth in tests.

    Implemented with a plain Python dictionary, completely independently of
    the hash-join operators under test.
    """
    by_key: dict[int, list[int]] = {}
    for key, rid in zip(build.keys.tolist(), build.rids.tolist()):
        by_key.setdefault(key, []).append(rid)

    build_out: list[int] = []
    probe_out: list[int] = []
    for key, rid in zip(probe.keys.tolist(), probe.rids.tolist()):
        for build_rid in by_key.get(key, ()):
            build_out.append(build_rid)
            probe_out.append(rid)
    return JoinResult(
        build_rids=np.asarray(build_out, dtype=np.int64),
        probe_rids=np.asarray(probe_out, dtype=np.int64),
    )


def vectorized_reference_join(build: Relation, probe: Relation) -> JoinResult:
    """Ground-truth join usable at larger scale (sort-merge via numpy)."""
    if build.is_empty() or probe.is_empty():
        return JoinResult.empty()
    build_order = np.argsort(build.keys, kind="stable")
    sorted_keys = build.keys[build_order]
    sorted_rids = build.rids[build_order]

    left = np.searchsorted(sorted_keys, probe.keys, side="left")
    right = np.searchsorted(sorted_keys, probe.keys, side="right")
    counts = right - left
    total = int(counts.sum())
    if total == 0:
        return JoinResult.empty()

    probe_out = np.repeat(probe.rids, counts)
    # Build the index ranges [left_i, right_i) for every probe tuple.
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    flat = np.arange(total) - np.repeat(offsets, counts) + np.repeat(left, counts)
    build_out = sorted_rids[flat]
    return JoinResult(build_rids=build_out, probe_rids=probe_out)
