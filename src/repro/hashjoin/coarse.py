"""Coarse-grained step definition for PHJ (PHJ-PL', Section 3.3 / Table 3).

Blanas et al. [4] process each partition pair with one thread after
partitioning: the whole per-pair simple hash join is a single step and the
input items of that step are the partition *pairs*, not tuples.  The paper
compares this coarse granularity against its fine-grained per-tuple steps and
finds it slower (Table 3): every pair builds its own private hash table, which
destroys cross-device cache reuse and creates heavy workload divergence when
partition sizes are uneven.

This module executes the coarse-grained variant for real (producing the same
join result) and reports the per-pair work so the PL executor can schedule
pairs across the CPU and the GPU.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.relation import Relation
from ..hardware.cache import WorkingSet
from ..opencl.allocator import MemoryAllocator
from .hashtable import (
    HEADER_VISIT_INSTRUCTIONS,
    KEY_NODE_BYTES,
    KEY_SEARCH_BASE_INSTRUCTIONS,
    KEY_SEARCH_PER_NODE_INSTRUCTIONS,
    MATCH_VISIT_BASE_INSTRUCTIONS,
    MATCH_VISIT_PER_MATCH_INSTRUCTIONS,
    RID_INSERT_INSTRUCTIONS,
    RID_NODE_BYTES,
    HashTable,
)
from .murmur import MURMUR_INSTRUCTIONS_PER_KEY, bucket_of, bucket_of_hashed
from .partition import PartitionConfig, PartitionedHashJoin, PHJRun, execute_partition_phase
from .result import JoinResult
from .simple import HashJoinConfig, arena_capacity_for
from .steps import PerTupleWork, StepDefinition, StepExecution, StepSeries

#: The coarse-grained "join one partition pair" step.
PAIR_JOIN_STEP = StepDefinition(
    name="pair-join",
    phase="join",
    description="simple hash join of one partition pair executed by one thread",
)


@dataclass
class CoarsePHJRun:
    """A PHJ executed with the coarse-grained (per-pair) step definition."""

    partition_series: list[StepSeries]
    pair_series: StepSeries
    result: JoinResult
    #: Total bytes of all per-pair hash tables alive during the join phase.
    total_table_bytes: int

    @property
    def step_series(self) -> list[StepSeries]:
        return [*self.partition_series, self.pair_series]


def join_pair_coarse(
    build_part: Relation,
    probe_part: Relation,
    build_hashes: np.ndarray | None,
    probe_hashes: np.ndarray | None,
    config: HashJoinConfig,
    reuse_hashes: bool,
    allocator: MemoryAllocator,
) -> tuple[tuple[float, float, float, float], JoinResult, int]:
    """Join one pair as a single coarse work item.

    Returns ``((instructions, random accesses, sequential bytes, atomics),
    result, table bytes)`` — the per-pair scalars of the pair-join step.
    Like :func:`repro.hashjoin.partition.join_partition_pair`, the outcome
    depends only on the pair and the allocator configuration, so serial and
    process-pool execution are bit-identical.
    """
    table = HashTable(
        n_buckets=config.bucket_count_for(max(len(build_part), 1)),
        allocator=allocator,
        shared_between_devices=False,
    )
    build_buckets = (
        bucket_of_hashed(build_hashes, table.n_buckets)
        if reuse_hashes and build_hashes is not None
        else bucket_of(build_part.keys, table.n_buckets, seed=config.hash_seed)
    )
    build_work = table.bulk_insert(build_part.keys, build_part.rids, build_buckets)
    probe_buckets = (
        bucket_of_hashed(probe_hashes, table.n_buckets)
        if reuse_hashes and probe_hashes is not None
        else bucket_of(probe_part.keys, table.n_buckets, seed=config.hash_seed)
    )
    result, probe_work = table.bulk_probe(probe_part.keys, probe_part.rids, probe_buckets)

    nb, npr = len(build_part), len(probe_part)
    instructions = (
        nb * (MURMUR_INSTRUCTIONS_PER_KEY + HEADER_VISIT_INSTRUCTIONS + RID_INSERT_INSTRUCTIONS)
        + float(np.sum(KEY_SEARCH_BASE_INSTRUCTIONS
                       + KEY_SEARCH_PER_NODE_INSTRUCTIONS * build_work.key_nodes_visited))
        + npr * (MURMUR_INSTRUCTIONS_PER_KEY + HEADER_VISIT_INSTRUCTIONS)
        + float(np.sum(KEY_SEARCH_BASE_INSTRUCTIONS
                       + KEY_SEARCH_PER_NODE_INSTRUCTIONS * probe_work.key_nodes_visited))
        + float(np.sum(MATCH_VISIT_BASE_INSTRUCTIONS
                       + MATCH_VISIT_PER_MATCH_INSTRUCTIONS * probe_work.matches))
    )
    random_accesses = (
        nb * 2.0
        + float(np.sum(build_work.key_nodes_visited))
        + npr * 1.0
        + float(np.sum(probe_work.key_nodes_visited))
        + float(np.sum(probe_work.matches))
    )
    sequential_bytes = (
        nb * (12.0 + RID_NODE_BYTES)
        + npr * 12.0
        + 8.0 * float(np.sum(probe_work.matches))
    )
    atomics = nb * 2.0 + float(np.sum(probe_work.matches)) * 0.1
    return (
        (instructions, random_accesses, sequential_bytes, atomics),
        result,
        table.nbytes,
    )


class CoarseGrainedPHJ:
    """PHJ with one work item per partition pair (the PHJ-PL' baseline)."""

    def __init__(
        self,
        config: HashJoinConfig | None = None,
        partition_config: PartitionConfig | None = None,
        target_partition_tuples: int = 64_000,
        use_kernels: bool = True,
        parallel: bool = False,
        n_workers: int | None = None,
    ) -> None:
        # Separate per-pair tables are inherent to this variant.
        base = config or HashJoinConfig()
        self.use_kernels = use_kernels
        self.config = HashJoinConfig(
            n_buckets=base.n_buckets,
            allocator_kind=base.allocator_kind,
            allocator_block_bytes=base.allocator_block_bytes,
            shared_hash_table=False,
            grouping=base.grouping,
            hash_seed=base.hash_seed,
        )
        self.partition_config = partition_config
        self.target_partition_tuples = target_partition_tuples
        self.parallel = parallel
        self.n_workers = n_workers

    def run(self, build: Relation, probe: Relation) -> CoarsePHJRun:
        helper = PartitionedHashJoin(
            config=self.config,
            partition_config=self.partition_config,
            target_partition_tuples=self.target_partition_tuples,
        )
        partition_config = helper._partition_config_for(build)
        arena_capacity = (
            arena_capacity_for(len(build), len(probe)) + (len(build) + len(probe)) * 16
        )
        allocator = self.config.make_allocator(arena_capacity)
        partition_phase = execute_partition_phase(
            build, probe, partition_config, self.config, allocator,
            fused=self.use_kernels,
        )
        build_parts = partition_phase.build_partitions.partitions_with_hashes()
        probe_parts = partition_phase.probe_partitions.partitions_with_hashes()
        reuse_hashes = partition_config.hash_seed == self.config.hash_seed

        pairs = [
            (build_part, probe_part, build_hashes, probe_hashes)
            for (build_part, build_hashes), (probe_part, probe_hashes) in zip(
                build_parts, probe_parts
            )
            if len(build_part) or len(probe_part)
        ]

        if self.parallel and len(pairs) > 1:
            from .parallel import run_coarse_pairs

            outcomes = run_coarse_pairs(
                pairs, self.config, reuse_hashes, arena_capacity, allocator,
                n_workers=self.n_workers,
            )
        else:
            outcomes = [
                join_pair_coarse(
                    build_part, probe_part, build_hashes, probe_hashes,
                    self.config, reuse_hashes, allocator,
                )
                for build_part, probe_part, build_hashes, probe_hashes in pairs
            ]

        per_pair_instructions: list[float] = []
        per_pair_random: list[float] = []
        per_pair_seq: list[float] = []
        per_pair_atomics: list[float] = []
        results: list[JoinResult] = []
        total_table_bytes = 0
        for (instructions, random_accesses, sequential_bytes, atomics), result, table_bytes in outcomes:
            per_pair_instructions.append(instructions)
            per_pair_random.append(random_accesses)
            per_pair_seq.append(sequential_bytes)
            per_pair_atomics.append(atomics)
            results.append(result)
            total_table_bytes += table_bytes

        n_pairs = len(per_pair_instructions)
        pair_work = PerTupleWork(
            n_tuples=n_pairs,
            instructions=np.asarray(per_pair_instructions, dtype=np.float64),
            random_accesses=np.asarray(per_pair_random, dtype=np.float64),
            sequential_bytes=np.asarray(per_pair_seq, dtype=np.float64),
            global_atomics=np.asarray(per_pair_atomics, dtype=np.float64),
        )
        pair_execution = StepExecution(
            step=PAIR_JOIN_STEP,
            work=pair_work,
            # All private tables are live together and are not shared across
            # devices: the working set is the sum, not one small table.
            working_set=WorkingSet(
                bytes=float(total_table_bytes), shared_between_devices=False
            ),
            conflict_ratio={"cpu": 0.0, "gpu": 0.0},
            intermediate_bytes_per_tuple=0.0,
        )
        pair_series = StepSeries(phase="join", executions=[pair_execution])

        return CoarsePHJRun(
            partition_series=partition_phase.series_per_pass,
            pair_series=pair_series,
            result=JoinResult.concat(results),
            total_table_bytes=total_table_bytes,
        )
