"""MurmurHash 2.0 for 32-bit keys.

The paper uses MurmurHash 2.0 (as did Blanas et al. [4]) because it has a
good collision rate at low computational cost.  Both a scalar reference and a
vectorised numpy implementation are provided; they produce identical values.
The approximate dynamic instruction count of one hash evaluation is exported
so the cost model can charge the hash-computation steps (``n1``/``b1``/``p1``)
consistently with how the paper profiles them.
"""

from __future__ import annotations

# repro: kernel
import numpy as np

#: Multiplicative constant of MurmurHash2.
_M = 0x5BD1E995
#: Shift constant of MurmurHash2.
_R = 24
#: Default seed (arbitrary but fixed for reproducibility).
DEFAULT_SEED = 0x9747B28C

_MASK32 = 0xFFFFFFFF

#: Approximate dynamic instructions per 4-byte-key hash evaluation, including
#: the surrounding load of the key and the bucket modulo.  Used by the
#: analytical work profiles of the hash-computation steps.
MURMUR_INSTRUCTIONS_PER_KEY = 180.0


def murmur2_scalar(key: int, seed: int = DEFAULT_SEED) -> int:
    """MurmurHash2 of one 4-byte integer key (reference implementation)."""
    key &= _MASK32
    length = 4
    h = (seed ^ length) & _MASK32

    k = key
    k = (k * _M) & _MASK32
    k ^= k >> _R
    k = (k * _M) & _MASK32

    h = (h * _M) & _MASK32
    h ^= k

    # Tail handling: length is a multiple of 4, so no tail bytes.
    h ^= h >> 13
    h = (h * _M) & _MASK32
    h ^= h >> 15
    return h & _MASK32


def murmur2(keys: np.ndarray, seed: int = DEFAULT_SEED) -> np.ndarray:
    """Vectorised MurmurHash2 over an array of 4-byte integer keys."""
    keys = np.asarray(keys)
    k = keys.astype(np.uint64) & _MASK32
    m = np.uint64(_M)
    mask = np.uint64(_MASK32)

    h = np.uint64((seed ^ 4) & _MASK32)
    k = (k * m) & mask
    k ^= k >> np.uint64(_R)
    k = (k * m) & mask

    h = (np.full(k.shape, h, dtype=np.uint64) * m) & mask
    h ^= k
    h ^= h >> np.uint64(13)
    h = (h * m) & mask
    h ^= h >> np.uint64(15)
    return (h & mask).astype(np.uint64)


def bucket_of(keys: np.ndarray, n_buckets: int, seed: int = DEFAULT_SEED) -> np.ndarray:
    """Hash bucket number of each key (step ``b1``/``p1``)."""
    if n_buckets <= 0:
        raise ValueError("n_buckets must be positive")
    return bucket_of_hashed(murmur2(keys, seed=seed), n_buckets)


def bucket_of_hashed(hashes: np.ndarray, n_buckets: int) -> np.ndarray:
    """Bucket numbers from already-evaluated hash values.

    Radix partitioning and bucket assignment consume the same MurmurHash
    value (when they share a seed), so callers that carried the hashes
    through partitioning skip re-evaluating them per partition pair.
    """
    if n_buckets <= 0:
        raise ValueError("n_buckets must be positive")
    return (np.asarray(hashes, dtype=np.uint64) % np.uint64(n_buckets)).astype(np.int64)


def radix_of(
    keys: np.ndarray,
    bits: int,
    pass_index: int = 0,
    seed: int = DEFAULT_SEED,
) -> np.ndarray:
    """Radix partition number for one partitioning pass (step ``n1``).

    The radix partitioning of the paper [5] uses a number of *lower bits of
    the integer hash values*; successive passes consume successive bit
    groups.
    """
    if bits <= 0:
        raise ValueError("bits must be positive")
    if pass_index < 0:
        raise ValueError("pass_index must be non-negative")
    hashed = murmur2(keys, seed=seed)
    shift = np.uint64(bits * pass_index)
    mask = np.uint64((1 << bits) - 1)
    return ((hashed >> shift) & mask).astype(np.int64)


def radix_span_of(keys: np.ndarray, total_bits: int, seed: int = DEFAULT_SEED) -> np.ndarray:
    """The lowest ``total_bits`` radix bits in a single hash evaluation.

    Successive radix passes consume successive bit groups of the *same* hash
    value, so the concatenation of every pass's digits is just the hash
    masked to the total bit width: one murmur evaluation instead of one per
    pass.  Bit-identical to OR-ing :func:`radix_of` digits into place.
    """
    if total_bits <= 0:
        raise ValueError("total_bits must be positive")
    hashed = murmur2(keys, seed=seed)
    mask = np.uint64((1 << total_bits) - 1)
    return (hashed & mask).astype(np.int64)
