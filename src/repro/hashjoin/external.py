"""Joins larger than the zero copy buffer (paper Appendix, Figure 19).

The zero copy buffer of the APU is small (512 MB), so data sets beyond it are
handled like a classic external-memory hash join with the buffer playing the
role of "main memory" and the rest of system memory playing "disk":

1. the input relations are partitioned chunk by chunk inside the zero copy
   buffer (16M-tuple chunks in the paper),
2. the intermediate partitions are copied out to system memory,
3. the matching intermediate partitions are linked into final partition
   pairs, and
4. each partition pair is joined inside the buffer with any of the in-buffer
   join variants (the paper compares SHJ-PL and PHJ-PL here).

The run reports the three components of Figure 19 — partition time, join time
and data copy time — and the exact join result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..data.relation import TUPLE_BYTES, Relation
from ..hardware.machine import Machine, coupled_machine
from .murmur import radix_of
from .partition import split_relation_by_partition
from .result import JoinResult

#: Chunk size used by the paper when staging data through the buffer.
DEFAULT_CHUNK_TUPLES = 16_000_000


@dataclass
class ExternalJoinBreakdown:
    """Figure 19's per-run time components (simulated seconds)."""

    partition_s: float = 0.0
    join_s: float = 0.0
    data_copy_s: float = 0.0

    @property
    def total_s(self) -> float:
        return self.partition_s + self.join_s + self.data_copy_s

    def as_dict(self) -> dict[str, float]:
        return {
            "partition_s": self.partition_s,
            "join_s": self.join_s,
            "data_copy_s": self.data_copy_s,
            "total_s": self.total_s,
        }


@dataclass
class ExternalJoinRun:
    """Outcome of one out-of-buffer join."""

    breakdown: ExternalJoinBreakdown
    result: JoinResult
    n_super_partitions: int
    fits_in_buffer: bool


#: Callable that joins one in-buffer partition pair and returns
#: (simulated seconds, join result).  The core package provides adapters for
#: its SHJ-PL / PHJ-PL executors.
PairJoiner = Callable[[Relation, Relation], tuple[float, JoinResult]]


def _split_by_partition(
    relation: Relation, ids: np.ndarray, n_parts: int, label: str
) -> list[Relation]:
    """Split a relation into its super partitions (shared split kernel)."""
    return [
        part
        for part, _ in split_relation_by_partition(relation, ids, n_parts, label)
    ]


def plan_super_partitions(
    build: Relation,
    probe: Relation,
    machine: Machine,
    overhead_factor: float = 2.0,
) -> int:
    """Number of first-level partitions so one pair fits the zero copy buffer."""
    buffer_bytes = machine.memory.zero_copy.capacity_bytes
    total_bytes = (build.nbytes + probe.nbytes) * overhead_factor
    if total_bytes <= buffer_bytes:
        return 1
    needed = int(np.ceil(total_bytes / buffer_bytes))
    # Round to the next power of two so radix bits describe the fan-out.
    return 1 << int(np.ceil(np.log2(needed)))


class ExternalHashJoin:
    """Partition through the zero copy buffer, then join each pair in-buffer."""

    def __init__(
        self,
        pair_joiner: PairJoiner,
        machine: Machine | None = None,
        chunk_tuples: int = DEFAULT_CHUNK_TUPLES,
        partition_rate_tuples_per_s: float = 55e6,
    ) -> None:
        """``partition_rate_tuples_per_s`` is the co-processed radix
        partitioning throughput used to charge the staging passes; the default
        matches the in-buffer partitioning rate of the PHJ variants."""
        self.pair_joiner = pair_joiner
        self.machine = machine or coupled_machine()
        if chunk_tuples <= 0:
            raise ValueError("chunk_tuples must be positive")
        self.chunk_tuples = chunk_tuples
        self.partition_rate = partition_rate_tuples_per_s

    # ------------------------------------------------------------------
    def run(self, build: Relation, probe: Relation, seed: int = 7) -> ExternalJoinRun:
        n_parts = plan_super_partitions(build, probe, self.machine)
        breakdown = ExternalJoinBreakdown()

        if n_parts == 1:
            # Everything fits: a single in-buffer join, no staging.
            join_s, result = self.pair_joiner(build, probe)
            breakdown.join_s = join_s
            return ExternalJoinRun(
                breakdown=breakdown,
                result=result,
                n_super_partitions=1,
                fits_in_buffer=True,
            )

        bits = int(np.log2(n_parts))
        build_ids = radix_of(build.keys, bits, pass_index=0, seed=seed)
        probe_ids = radix_of(probe.keys, bits, pass_index=0, seed=seed)

        # Stage 1: partition chunk by chunk inside the buffer, copying the
        # chunk in and the produced partitions back out.
        for relation in (build, probe):
            n_chunks = int(np.ceil(len(relation) / self.chunk_tuples))
            for chunk in range(n_chunks):
                start = chunk * self.chunk_tuples
                stop = min(start + self.chunk_tuples, len(relation))
                chunk_bytes = (stop - start) * TUPLE_BYTES
                breakdown.data_copy_s += self.machine.memory.copy_time(chunk_bytes)  # in
                breakdown.partition_s += (stop - start) / self.partition_rate
                breakdown.data_copy_s += self.machine.memory.copy_time(chunk_bytes)  # out

        # Stage 2: join each linked partition pair inside the buffer.  The
        # pairs are carved out of one stable argsort per relation instead of
        # one boolean scan per partition (the former per-pid masking walked
        # both relations n_parts times).
        results: list[JoinResult] = []
        build_parts = _split_by_partition(build, build_ids, n_parts, "R")
        probe_parts = _split_by_partition(probe, probe_ids, n_parts, "S")
        for pid in range(n_parts):
            build_part = build_parts[pid]
            probe_part = probe_parts[pid]
            if len(build_part) == 0 or len(probe_part) == 0:
                continue
            pair_bytes = build_part.nbytes + probe_part.nbytes
            breakdown.data_copy_s += self.machine.memory.copy_time(pair_bytes)
            join_s, result = self.pair_joiner(build_part, probe_part)
            breakdown.join_s += join_s
            results.append(result)

        return ExternalJoinRun(
            breakdown=breakdown,
            result=JoinResult.concat(results),
            n_super_partitions=n_parts,
            fits_in_buffer=False,
        )
