"""Joins larger than the zero copy buffer (paper Appendix, Figure 19).

The zero copy buffer of the APU is small (512 MB), so data sets beyond it are
handled like a classic external-memory hash join with the buffer playing the
role of "main memory" and the rest of system memory playing "disk":

1. the input relations are partitioned chunk by chunk inside the zero copy
   buffer (16M-tuple chunks in the paper),
2. the intermediate partitions are copied out to system memory,
3. the matching intermediate partitions are linked into final partition
   pairs, and
4. each partition pair is joined inside the buffer with any of the in-buffer
   join variants (the paper compares SHJ-PL and PHJ-PL here).

A single level of partitioning is not always enough: a skewed key
distribution can leave one pair far larger than the buffer.  Following the
trade-offs of "Design Trade-offs for a Robust Dynamic Hybrid Hash Join"
(Jahangiri et al., PVLDB 15(4)), stage 2 is robust against that:

* **role reversal** — every in-buffer pair join builds on its smaller side
  (the emitted rid pairs are swapped back), so a skewed build side cannot
  inflate the hash table;
* **recursive re-partitioning** — an overflowing pair is re-partitioned with
  a fresh radix seed per level (bounded depth) and its children joined
  recursively;
* **dynamic spilling** — when re-partitioning stops making progress (e.g.
  a single all-duplicate key) or the depth budget is exhausted, the smaller
  side stays resident and the larger side streams through the remaining
  buffer in chunks; if even the smaller side overflows, the pair falls back
  to a block-nested-loop over chunks of both sides.  Either way no in-buffer
  join ever exceeds the simulated buffer budget.

The run reports the three components of Figure 19 — partition time, join time
and data copy time (including the stage-2 copy-out of each pair's result) —
the exact join result, and the robustness counters.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..data.relation import TUPLE_BYTES, Relation
from ..hardware.machine import Machine, coupled_machine
from .murmur import radix_of
from .partition import MAX_RADIX_BITS, PartitionError, split_relation_by_partition
from .result import JoinResult

#: Chunk size used by the paper when staging data through the buffer.
DEFAULT_CHUNK_TUPLES = 16_000_000

#: Bytes of one emitted match (two 4-byte rids), charged on pair copy-out.
RESULT_PAIR_BYTES = 8

#: Radix-bit ceiling shared with ``PartitionConfig``/``radix_of``.
MAX_SUPER_PARTITION_BITS = MAX_RADIX_BITS


class SuperPartitionOverflowError(PartitionError):
    """The required super-partition fan-out exceeds the radix-bit ceiling.

    Raised by :func:`plan_super_partitions` when clamping is disabled;
    carries the structured ``needed_bits``/``max_bits`` so callers can size
    buffers or fall back programmatically.
    """

    def __init__(self, needed_bits: int, max_bits: int) -> None:
        super().__init__(
            f"super-partition fan-out needs {needed_bits} radix bits, beyond "
            f"the {max_bits}-bit ceiling; clamp the fan-out (stage-2 "
            "recursion and spilling absorb the overflow pairs) or enlarge "
            "the buffer"
        )
        self.needed_bits = needed_bits
        self.max_bits = max_bits


@dataclass
class ExternalJoinBreakdown:
    """Figure 19's per-run time components (simulated seconds)."""

    partition_s: float = 0.0
    join_s: float = 0.0
    data_copy_s: float = 0.0

    @property
    def total_s(self) -> float:
        return self.partition_s + self.join_s + self.data_copy_s

    def as_dict(self) -> dict[str, float]:
        return {
            "partition_s": self.partition_s,
            "join_s": self.join_s,
            "data_copy_s": self.data_copy_s,
            "total_s": self.total_s,
        }


@dataclass
class ExternalJoinStats:
    """Robustness counters of one external join run."""

    #: Pairs that exceeded the buffer budget and were streamed in chunks.
    spilled_pairs: int = 0
    #: Recursive re-partitioning rounds that made progress.
    recursive_splits: int = 0
    #: In-buffer joins whose build side was the caller's probe side.
    role_reversals: int = 0
    #: Deepest recursion level reached below the super partitions.
    max_pair_depth: int = 0
    #: Largest (build + probe) bytes handed to one in-buffer join.
    max_in_buffer_bytes: int = 0

    def merge(self, other: "ExternalJoinStats") -> None:
        self.spilled_pairs += other.spilled_pairs
        self.recursive_splits += other.recursive_splits
        self.role_reversals += other.role_reversals
        self.max_pair_depth = max(self.max_pair_depth, other.max_pair_depth)
        self.max_in_buffer_bytes = max(
            self.max_in_buffer_bytes, other.max_in_buffer_bytes
        )


@dataclass
class ExternalJoinRun:
    """Outcome of one out-of-buffer join."""

    breakdown: ExternalJoinBreakdown
    result: JoinResult
    n_super_partitions: int
    fits_in_buffer: bool
    stats: ExternalJoinStats = field(default_factory=ExternalJoinStats)


#: Callable that joins one in-buffer partition pair and returns
#: (simulated seconds, join result).  The core package provides adapters for
#: its SHJ-PL / PHJ-PL executors.
PairJoiner = Callable[[Relation, Relation], tuple[float, JoinResult]]

#: One deferred accounting charge: ("copy", bytes) / ("join" | "partition",
#: seconds).  Pair tasks record events instead of touching the shared
#: machine, and the driver replays them in pair order — so parallel pair
#: execution accumulates the breakdown bit-identically to the serial loop.
_Event = tuple[str, float]


def _split_by_partition(
    relation: Relation, ids: np.ndarray, n_parts: int, label: str
) -> list[Relation]:
    """Split a relation into its super partitions (shared split kernel)."""
    return [
        part
        for part, _ in split_relation_by_partition(relation, ids, n_parts, label)
    ]


def plan_super_partitions(
    build: Relation,
    probe: Relation,
    machine: Machine,
    overhead_factor: float = 2.0,
    max_bits: int = MAX_SUPER_PARTITION_BITS,
    clamp: bool = True,
) -> int:
    """Number of first-level partitions so one pair fits the zero copy buffer.

    The fan-out is a power of two so radix bits describe it, and never
    exceeds ``2**max_bits`` — the ceiling ``PartitionConfig``/``radix_of``
    enforce.  Past the ceiling the fan-out is clamped (overflowing pairs are
    handled by stage-2 recursion and spilling); ``clamp=False`` raises a
    structured :class:`SuperPartitionOverflowError` instead.
    """
    buffer_bytes = machine.memory.zero_copy.capacity_bytes
    total_bytes = (build.nbytes + probe.nbytes) * overhead_factor
    if total_bytes <= buffer_bytes:
        return 1
    needed = int(np.ceil(total_bytes / buffer_bytes))
    bits = int(np.ceil(np.log2(needed)))
    if bits > max_bits:
        if not clamp:
            raise SuperPartitionOverflowError(bits, max_bits)
        bits = max_bits
    return 1 << bits


class ExternalHashJoin:
    """Partition through the zero copy buffer, then join each pair in-buffer."""

    def __init__(
        self,
        pair_joiner: PairJoiner,
        machine: Machine | None = None,
        chunk_tuples: int = DEFAULT_CHUNK_TUPLES,
        partition_rate_tuples_per_s: float = 55e6,
        overhead_factor: float = 2.0,
        max_recursion_depth: int = 3,
        role_reversal: bool = True,
        parallel: bool = False,
        n_workers: int | None = None,
    ) -> None:
        """``partition_rate_tuples_per_s`` is the co-processed radix
        partitioning throughput used to charge the staging passes; the default
        matches the in-buffer partitioning rate of the PHJ variants.

        ``overhead_factor`` models the working-space multiplier of an
        in-buffer join (hash table + output next to the inputs); a pair fits
        when ``(build + probe bytes) * overhead_factor`` is within the
        buffer.  ``max_recursion_depth`` bounds the re-partitioning levels
        below the super partitions; ``role_reversal=False`` keeps the
        caller's build side even when it is the larger one.

        ``parallel=True`` joins independent super-partition pairs on a
        thread pool (``n_workers`` threads) — the ``pair_joiner`` must then
        be thread-safe (see ``external_pair_joiner(machine_factory=...)``).
        ``parallel=False`` is the bit-matched serial reference: charges are
        recorded as per-pair events and replayed in pair order either way.
        """
        self.pair_joiner = pair_joiner
        self.machine = machine or coupled_machine()
        if chunk_tuples <= 0:
            raise ValueError("chunk_tuples must be positive")
        if overhead_factor < 1.0:
            raise ValueError("overhead_factor must be at least 1.0")
        if max_recursion_depth < 0:
            raise ValueError("max_recursion_depth must be non-negative")
        self.chunk_tuples = chunk_tuples
        self.partition_rate = partition_rate_tuples_per_s
        self.overhead_factor = overhead_factor
        self.max_recursion_depth = max_recursion_depth
        self.role_reversal = role_reversal
        self.parallel = parallel
        self.n_workers = n_workers

    # ------------------------------------------------------------------
    @property
    def _buffer_bytes(self) -> int:
        return self.machine.memory.zero_copy.capacity_bytes

    def _fits(self, build_part: Relation, probe_part: Relation) -> bool:
        pair_bytes = build_part.nbytes + probe_part.nbytes
        return pair_bytes * self.overhead_factor <= self._buffer_bytes

    def _replay(self, events: list[_Event], breakdown: ExternalJoinBreakdown) -> None:
        """Apply deferred charges in recorded order (bit-stable accumulation)."""
        for kind, value in events:
            if kind == "copy":
                breakdown.data_copy_s += self.machine.memory.copy_time(int(value))
            elif kind == "join":
                breakdown.join_s += float(value)
            else:
                breakdown.partition_s += float(value)

    def _charge_staging(self, relation: Relation, events: list[_Event]) -> None:
        """Chunked copy-in / partition / copy-out charges for one relation."""
        n_chunks = int(np.ceil(len(relation) / self.chunk_tuples))
        for chunk in range(n_chunks):
            start = chunk * self.chunk_tuples
            stop = min(start + self.chunk_tuples, len(relation))
            chunk_bytes = (stop - start) * TUPLE_BYTES
            events.append(("copy", chunk_bytes))  # in
            events.append(("partition", (stop - start) / self.partition_rate))
            events.append(("copy", chunk_bytes))  # out

    # ------------------------------------------------------------------
    # In-buffer pair joins (role reversal + result copy-out accounting)
    # ------------------------------------------------------------------
    def _invoke_joiner(
        self,
        build_side: Relation,
        probe_side: Relation,
        swapped: bool,
        events: list[_Event],
        stats: ExternalJoinStats,
    ) -> JoinResult:
        """One in-buffer join; ``swapped`` means the roles were reversed."""
        pair_bytes = build_side.nbytes + probe_side.nbytes
        stats.max_in_buffer_bytes = max(stats.max_in_buffer_bytes, pair_bytes)
        if swapped:
            stats.role_reversals += 1
        join_s, result = self.pair_joiner(build_side, probe_side)
        if swapped:
            result = JoinResult(
                build_rids=result.probe_rids, probe_rids=result.build_rids
            )
        events.append(("join", join_s))
        # The matching rid pairs leave the buffer: charge their copy-out
        # (the historical accounting only charged the pair's copy-in).
        events.append(("copy", result.match_count * RESULT_PAIR_BYTES))
        return result

    def _buffered_join(
        self,
        build_part: Relation,
        probe_part: Relation,
        events: list[_Event],
        stats: ExternalJoinStats,
    ) -> JoinResult:
        """Join one fitting pair inside the buffer (build on the smaller side)."""
        events.append(("copy", build_part.nbytes + probe_part.nbytes))
        swap = self.role_reversal and len(probe_part) < len(build_part)
        if swap:
            return self._invoke_joiner(probe_part, build_part, True, events, stats)
        return self._invoke_joiner(build_part, probe_part, False, events, stats)

    def _spill_join(
        self,
        build_part: Relation,
        probe_part: Relation,
        events: list[_Event],
        stats: ExternalJoinStats,
    ) -> list[JoinResult]:
        """Stream an oversized pair through the buffer (dynamic spilling).

        The smaller side stays resident (copied in once) while the larger
        side streams through the remaining budget; when even the smaller
        side overflows, both sides are chunked (block-nested-loop).  Every
        in-buffer join stays within the budget either way.
        """
        stats.spilled_pairs += 1
        budget_tuples = max(
            int(self._buffer_bytes // (self.overhead_factor * TUPLE_BYTES)), 2
        )
        if self.role_reversal and len(probe_part) < len(build_part):
            resident, streamed, swap = probe_part, build_part, True
        else:
            resident, streamed, swap = build_part, probe_part, False

        results: list[JoinResult] = []
        if len(resident) < budget_tuples:
            stream_chunk = budget_tuples - len(resident)
            events.append(("copy", resident.nbytes))
            for piece in streamed.split_chunks(stream_chunk):
                events.append(("copy", piece.nbytes))
                results.append(
                    self._invoke_joiner(resident, piece, swap, events, stats)
                )
        else:
            half = max(budget_tuples // 2, 1)
            for resident_piece in resident.split_chunks(half):
                events.append(("copy", resident_piece.nbytes))
                for streamed_piece in streamed.split_chunks(half):
                    events.append(("copy", streamed_piece.nbytes))
                    results.append(
                        self._invoke_joiner(
                            resident_piece, streamed_piece, swap, events, stats
                        )
                    )
        return results

    # ------------------------------------------------------------------
    # Recursive re-partitioning
    # ------------------------------------------------------------------
    @staticmethod
    def _child_seed(seed: int, depth: int) -> int:
        """A fresh radix seed per recursion level (kept in 31 bits)."""
        return (int(seed) * 0x9E3779B1 + depth + 1) & 0x7FFFFFFF

    def _try_recursive_split(
        self,
        build_part: Relation,
        probe_part: Relation,
        seed: int,
        depth: int,
    ) -> tuple[list[tuple[Relation, Relation]], int] | None:
        """Split an overflowing pair one level deeper, if that helps.

        Returns ``(child pairs, child seed)`` or ``None`` when the depth
        budget is exhausted or the split makes no progress (all tuples land
        in one child — e.g. a single heavy-hitter key), in which case the
        caller spills instead.  Nothing is charged for an abandoned split.
        """
        if depth >= self.max_recursion_depth:
            return None
        pair_bytes = build_part.nbytes + probe_part.nbytes
        needed = int(
            np.ceil(pair_bytes * self.overhead_factor / self._buffer_bytes)
        )
        bits = max(1, int(np.ceil(np.log2(max(needed, 2)))))
        bits = min(bits, MAX_SUPER_PARTITION_BITS)
        n_children = 1 << bits
        child_seed = self._child_seed(seed, depth)
        build_ids = radix_of(build_part.keys, bits, pass_index=0, seed=child_seed)
        probe_ids = radix_of(probe_part.keys, bits, pass_index=0, seed=child_seed)
        build_children = _split_by_partition(
            build_part, build_ids, n_children, build_part.name
        )
        probe_children = _split_by_partition(
            probe_part, probe_ids, n_children, probe_part.name
        )
        child_pairs = list(zip(build_children, probe_children))
        largest = max(b.nbytes + p.nbytes for b, p in child_pairs)
        if largest >= pair_bytes:
            return None
        return child_pairs, child_seed

    def _join_pair_task(
        self,
        build_part: Relation,
        probe_part: Relation,
        seed: int,
        events: list[_Event],
        stats: ExternalJoinStats,
        depth: int = 0,
    ) -> list[JoinResult]:
        """Join one pair: fit, or recurse, or spill.  Records events only."""
        stats.max_pair_depth = max(stats.max_pair_depth, depth)
        if self._fits(build_part, probe_part):
            return [self._buffered_join(build_part, probe_part, events, stats)]
        split = self._try_recursive_split(build_part, probe_part, seed, depth)
        if split is None:
            return self._spill_join(build_part, probe_part, events, stats)
        child_pairs, child_seed = split
        stats.recursive_splits += 1
        # Re-partitioning stages the pair through the buffer again.
        self._charge_staging(build_part, events)
        self._charge_staging(probe_part, events)
        results: list[JoinResult] = []
        for child_build, child_probe in child_pairs:
            if len(child_build) == 0 or len(child_probe) == 0:
                continue
            results.extend(
                self._join_pair_task(
                    child_build, child_probe, child_seed, events, stats, depth + 1
                )
            )
        return results

    # ------------------------------------------------------------------
    def run(self, build: Relation, probe: Relation, seed: int = 7) -> ExternalJoinRun:
        n_parts = plan_super_partitions(
            build, probe, self.machine, self.overhead_factor
        )
        breakdown = ExternalJoinBreakdown()
        stats = ExternalJoinStats()

        if n_parts == 1:
            # Everything fits: a single in-buffer join, no staging.
            stats.max_in_buffer_bytes = build.nbytes + probe.nbytes
            join_s, result = self.pair_joiner(build, probe)
            breakdown.join_s = join_s
            return ExternalJoinRun(
                breakdown=breakdown,
                result=result,
                n_super_partitions=1,
                fits_in_buffer=True,
                stats=stats,
            )

        bits = int(np.log2(n_parts))
        build_ids = radix_of(build.keys, bits, pass_index=0, seed=seed)
        probe_ids = radix_of(probe.keys, bits, pass_index=0, seed=seed)

        # Stage 1: partition chunk by chunk inside the buffer, copying the
        # chunk in and the produced partitions back out.
        staging_events: list[_Event] = []
        self._charge_staging(build, staging_events)
        self._charge_staging(probe, staging_events)
        self._replay(staging_events, breakdown)

        # Stage 2: join each linked partition pair inside the buffer.  The
        # pairs are carved out of one stable argsort per relation; each pair
        # task records its charges as events so independent pairs can run on
        # worker threads, and the driver replays every pair's events in pair
        # order — the breakdown accumulates bit-identically to the serial
        # loop regardless of completion order.
        build_parts = _split_by_partition(build, build_ids, n_parts, "R")
        probe_parts = _split_by_partition(probe, probe_ids, n_parts, "S")
        pairs = [
            (build_part, probe_part)
            for build_part, probe_part in zip(build_parts, probe_parts)
            if len(build_part) and len(probe_part)
        ]

        def pair_task(
            pair: tuple[Relation, Relation]
        ) -> tuple[list[_Event], list[JoinResult], ExternalJoinStats]:
            events: list[_Event] = []
            local_stats = ExternalJoinStats()
            pair_results = self._join_pair_task(
                pair[0], pair[1], seed, events, local_stats
            )
            return events, pair_results, local_stats

        if self.parallel and len(pairs) > 1:
            max_workers = max(1, self.n_workers or min(os_cpu_count(), 8))
            with ThreadPoolExecutor(max_workers=max_workers) as executor:
                outcomes = list(executor.map(pair_task, pairs))
        else:
            outcomes = [pair_task(pair) for pair in pairs]

        results: list[JoinResult] = []
        for events, pair_results, local_stats in outcomes:
            self._replay(events, breakdown)
            results.extend(pair_results)
            stats.merge(local_stats)

        return ExternalJoinRun(
            breakdown=breakdown,
            result=JoinResult.concat(results),
            n_super_partitions=n_parts,
            fits_in_buffer=False,
            stats=stats,
        )


def os_cpu_count() -> int:
    """CPU count with a floor of 1 (module-level for test monkeypatching)."""
    import os

    return os.cpu_count() or 1
