"""Fine-grained step definitions for SHJ and PHJ (paper Section 3.1).

A *step* is computation or memory access applied to every input tuple.  The
simple hash join has two step series::

    build:  b1 b2 b3 b4
    probe:  p1 p2 p3 p4

and the partitioned hash join adds one series per partitioning pass::

    partition (per pass):  n1 n2 n3

Executing a step on the simulator yields a :class:`StepExecution`: the real
data-structure side effects have happened (hash table built, partitions
written, matches produced) and the object records *per-tuple* work so that any
co-processing scheme (OL/DD/PL/BasicUnit) can later split the tuples between
the CPU and the GPU at any ratio and obtain exact work statistics for each
portion — including workload divergence of the specific tuple range.
"""

from __future__ import annotations

# repro: kernel
from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from ..hardware.cache import WorkingSet
from ..hardware.workstats import WorkProfile, WorkStats
from ..opencl.ndrange import AMD_WAVEFRONT_WIDTH
from ..opencl.wavefront import wavefront_divergence

BUILD_PHASE = "build"
PROBE_PHASE = "probe"
PARTITION_PHASE = "partition"


@dataclass(frozen=True)
class StepDefinition:
    """Identity and description of one fine-grained step."""

    name: str
    phase: str
    description: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


#: Fine-grained steps of the simple hash join build phase (Algorithm 1).
BUILD_STEPS: tuple[StepDefinition, ...] = (
    StepDefinition("b1", BUILD_PHASE, "compute hash bucket number"),
    StepDefinition("b2", BUILD_PHASE, "visit the hash bucket header"),
    StepDefinition("b3", BUILD_PHASE, "visit the hash key lists and create a key header if necessary"),
    StepDefinition("b4", BUILD_PHASE, "insert the record id into the rid list"),
)

#: Fine-grained steps of the simple hash join probe phase (Algorithm 1).
PROBE_STEPS: tuple[StepDefinition, ...] = (
    StepDefinition("p1", PROBE_PHASE, "compute hash bucket number"),
    StepDefinition("p2", PROBE_PHASE, "visit the hash bucket header"),
    StepDefinition("p3", PROBE_PHASE, "visit the hash key lists"),
    StepDefinition("p4", PROBE_PHASE, "visit the matching build tuple and produce output"),
)

#: Fine-grained steps of one radix-partitioning pass (Algorithm 2).
PARTITION_STEPS: tuple[StepDefinition, ...] = (
    StepDefinition("n1", PARTITION_PHASE, "compute partition number"),
    StepDefinition("n2", PARTITION_PHASE, "visit the partition header"),
    StepDefinition("n3", PARTITION_PHASE, "insert the <key, rid> into the partition"),
)

ALL_STEP_NAMES: tuple[str, ...] = tuple(
    s.name for s in PARTITION_STEPS + BUILD_STEPS + PROBE_STEPS
)


def step_by_name(name: str) -> StepDefinition:
    for step in PARTITION_STEPS + BUILD_STEPS + PROBE_STEPS:
        if step.name == name:
            return step
    raise KeyError(f"unknown step {name!r}")


ArrayOrScalar = "np.ndarray | float"


def _as_array(value: np.ndarray | float, n: int) -> np.ndarray:
    """Broadcast a scalar per-tuple quantity to an array of length ``n``."""
    if isinstance(value, np.ndarray):
        if value.shape[0] != n:
            raise ValueError(f"per-tuple array has length {value.shape[0]}, expected {n}")
        return value.astype(np.float64, copy=False)
    return np.full(n, float(value), dtype=np.float64)


def _range_sum(value: np.ndarray | float, start: int, stop: int) -> float:
    """Sum of a per-tuple quantity over the index range [start, stop)."""
    if isinstance(value, np.ndarray):
        return float(value[start:stop].sum())
    return float(value) * (stop - start)


@dataclass
class PerTupleWork:
    """Per-tuple work quantities of one executed step.

    Quantities may be scalars (uniform work, e.g. hash computation) or arrays
    of length ``n_tuples`` (workload-dependent work, e.g. key-list traversal
    lengths in ``b3``/``p3``).

    The workload proxy and the full-range divergence are memoised after
    their first use (executors, calibration and Monte Carlo studies evaluate
    them once per ratio split); the quantities must therefore not be mutated
    in place after the first stats call — build a new instance (or
    ``dataclasses.replace``) instead, which starts with fresh caches.
    """

    n_tuples: int
    instructions: np.ndarray | float = 0.0
    random_accesses: np.ndarray | float = 0.0
    sequential_bytes: np.ndarray | float = 0.0
    global_atomics: np.ndarray | float = 0.0
    local_atomics: np.ndarray | float = 0.0

    def __post_init__(self) -> None:
        if self.n_tuples < 0:
            raise ValueError("n_tuples must be non-negative")
        self._proxy_cache: np.ndarray | None = None
        self._divergence_cache: dict[tuple[int, bool], float] = {}

    # ------------------------------------------------------------------
    def _full_proxy(self) -> np.ndarray:
        """The whole series' workload proxy, computed once and reused."""
        if self._proxy_cache is None:
            proxy = _as_array(self.instructions, self.n_tuples).copy()
            proxy += 10.0 * _as_array(self.random_accesses, self.n_tuples)
            proxy += 5.0 * _as_array(self.global_atomics, self.n_tuples)
            self._proxy_cache = proxy
        return self._proxy_cache

    def workload_proxy(self, start: int = 0, stop: int | None = None) -> np.ndarray:
        """Scalar per-tuple execution-time proxy used for divergence."""
        stop = self.n_tuples if stop is None else stop
        n = max(stop - start, 0)
        if n == 0:
            return np.empty(0, dtype=np.float64)
        return self._full_proxy()[start:stop].copy()

    def stats_for_range(
        self,
        start: int,
        stop: int,
        conflict_ratio: float = 0.0,
        wavefront_width: int = AMD_WAVEFRONT_WIDTH,
        grouped: bool = False,
    ) -> WorkStats:
        """Exact :class:`WorkStats` for the tuple range ``[start, stop)``.

        ``grouped`` applies the divergence-grouping optimisation: the range's
        workloads are considered sorted by workload before wavefront
        formation, which reduces the divergence component.
        """
        start = max(0, start)
        stop = min(self.n_tuples, stop)
        n = max(stop - start, 0)
        if n == 0:
            return WorkStats()
        # Full-range divergence recurs across calibration, single-device
        # baselines and repeated Monte Carlo splits; memoise it per
        # (wavefront width, grouped) pair.
        full_range = start == 0 and stop == self.n_tuples
        cache_key = (wavefront_width, grouped)
        divergence = self._divergence_cache.get(cache_key) if full_range else None
        if divergence is None:
            proxy = self.workload_proxy(start, stop)
            if grouped:
                proxy = np.sort(proxy)
            divergence = wavefront_divergence(proxy, width=wavefront_width).divergence
            if full_range:
                self._divergence_cache[cache_key] = divergence
        return WorkStats(
            tuples=n,
            instructions=_range_sum(self.instructions, start, stop),
            sequential_bytes=_range_sum(self.sequential_bytes, start, stop),
            random_accesses=_range_sum(self.random_accesses, start, stop),
            global_atomics=_range_sum(self.global_atomics, start, stop),
            local_atomics=_range_sum(self.local_atomics, start, stop),
            divergence=divergence,
            atomic_conflict_ratio=conflict_ratio,
        )

    def total_stats(
        self,
        conflict_ratio: float = 0.0,
        wavefront_width: int = AMD_WAVEFRONT_WIDTH,
        grouped: bool = False,
    ) -> WorkStats:
        return self.stats_for_range(
            0, self.n_tuples, conflict_ratio=conflict_ratio,
            wavefront_width=wavefront_width, grouped=grouped,
        )

    def average_profile(self) -> WorkProfile:
        """Per-tuple averages (what profiling tools report in the paper)."""
        n = max(self.n_tuples, 1)
        stats = self.total_stats()
        return WorkProfile(
            instructions_per_tuple=stats.instructions / n,
            sequential_bytes_per_tuple=stats.sequential_bytes / n,
            random_accesses_per_tuple=stats.random_accesses / n,
            global_atomics_per_tuple=stats.global_atomics / n,
            local_atomics_per_tuple=stats.local_atomics / n,
            divergence=stats.divergence,
        )


@dataclass
class StepExecution:
    """One executed step: data side effects done, per-tuple work recorded."""

    step: StepDefinition
    work: PerTupleWork
    #: Structure touched by the step's random accesses, for the cache model.
    working_set: WorkingSet | None = None
    #: Latch-contention ratio per device kind ("cpu"/"gpu").
    conflict_ratio: dict[str, float] = field(default_factory=dict)
    #: Bytes of intermediate result produced per tuple (what would travel over
    #: PCI-e between this step and the next one if their ratios differ).
    intermediate_bytes_per_tuple: float = 8.0
    #: Whether the divergence-grouping optimisation (Section 3.3) is applied
    #: to this step's wavefront formation.
    grouped: bool = False

    @property
    def n_tuples(self) -> int:
        return self.work.n_tuples

    def conflict_for(self, device_kind: str) -> float:
        return self.conflict_ratio.get(device_kind, 0.0)

    def stats_for_range(
        self,
        start: int,
        stop: int,
        device_kind: str,
        wavefront_width: int = AMD_WAVEFRONT_WIDTH,
        grouped: bool | None = None,
    ) -> WorkStats:
        grouped = self.grouped if grouped is None else grouped
        return self.work.stats_for_range(
            start,
            stop,
            conflict_ratio=self.conflict_for(device_kind),
            wavefront_width=wavefront_width,
            grouped=grouped,
        )


@dataclass
class StepSeries:
    """An ordered list of executed steps separated from others by barriers."""

    phase: str
    executions: list[StepExecution]

    def __post_init__(self) -> None:
        if not self.executions:
            raise ValueError("a step series needs at least one step execution")
        lengths = {e.n_tuples for e in self.executions}
        if len(lengths) > 1:
            raise ValueError(
                f"all steps of a series must process the same tuple count, got {lengths}"
            )

    @property
    def n_steps(self) -> int:
        return len(self.executions)

    @property
    def n_tuples(self) -> int:
        return self.executions[0].n_tuples

    @property
    def step_names(self) -> list[str]:
        return [e.step.name for e in self.executions]

    def __iter__(self) -> Iterator[StepExecution]:
        return iter(self.executions)

    def __getitem__(self, index: int) -> StepExecution:
        return self.executions[index]
