"""Radix partitioning and the partitioned hash join (PHJ, Algorithm 2).

The paper adopts the radix hash join [5]: both relations are split into the
same partitions by one or more passes over a number of lower bits of the
integer hash values (steps ``n1``–``n3`` per pass), after which a simple hash
join is applied to each partition pair.  Partitioning keeps each per-pair hash
table small enough to stay cache resident, trading extra sequential passes for
fewer memory stalls during the probe.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.relation import Relation
from ..hardware.cache import WorkingSet
from ..opencl.allocator import MemoryAllocator
from .hashtable import BUCKET_HEADER_BYTES, KEY_NODE_BYTES, RID_NODE_BYTES, HashTable
from .murmur import DEFAULT_SEED, MURMUR_INSTRUCTIONS_PER_KEY, radix_of
from .result import JoinResult
from .simple import HashJoinConfig, arena_capacity_for, execute_build, execute_probe
from .steps import (
    PARTITION_STEPS,
    PerTupleWork,
    StepExecution,
    StepSeries,
)

PARTITION_HEADER_VISIT_INSTRUCTIONS = 10.0
PARTITION_INSERT_INSTRUCTIONS = 15.0
PARTITION_SLOT_BYTES = 8


class PartitionError(RuntimeError):
    """Raised for invalid partitioning configurations."""


@dataclass(frozen=True)
class PartitionConfig:
    """Radix-partitioning configuration.

    The number of passes and bits per pass are tuned to the memory hierarchy
    (TLB and caches) in the paper; :func:`plan_partitioning` picks them from a
    target per-partition size.
    """

    bits_per_pass: int = 6
    n_passes: int = 1
    hash_seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        if self.bits_per_pass <= 0 or self.n_passes <= 0:
            raise PartitionError("bits_per_pass and n_passes must be positive")
        if self.bits_per_pass * self.n_passes > 24:
            raise PartitionError("more than 24 radix bits is not supported")

    @property
    def total_bits(self) -> int:
        return self.bits_per_pass * self.n_passes

    @property
    def n_partitions(self) -> int:
        return 1 << self.total_bits

    @property
    def fanout_per_pass(self) -> int:
        return 1 << self.bits_per_pass


def plan_partitioning(
    build_tuples: int,
    target_partition_tuples: int = 64_000,
    max_bits_per_pass: int = 8,
) -> PartitionConfig:
    """Choose radix bits/passes so each partition holds about the target tuples."""
    if build_tuples <= 0:
        return PartitionConfig(bits_per_pass=1, n_passes=1)
    if target_partition_tuples <= 0:
        raise PartitionError("target_partition_tuples must be positive")
    needed = max(1, int(np.ceil(build_tuples / target_partition_tuples)))
    total_bits = max(1, int(np.ceil(np.log2(needed))))
    n_passes = max(1, int(np.ceil(total_bits / max_bits_per_pass)))
    bits_per_pass = int(np.ceil(total_bits / n_passes))
    return PartitionConfig(bits_per_pass=bits_per_pass, n_passes=n_passes)


@dataclass
class PartitionSet:
    """The output of radix partitioning one relation."""

    relation: Relation
    partition_ids: np.ndarray
    config: PartitionConfig

    @property
    def n_partitions(self) -> int:
        return self.config.n_partitions

    def partition(self, pid: int) -> Relation:
        mask = self.partition_ids == pid
        return self.relation.take(np.flatnonzero(mask), name=f"{self.relation.name}[{pid}]")

    def partition_sizes(self) -> np.ndarray:
        sizes = np.zeros(self.n_partitions, dtype=np.int64)
        np.add.at(sizes, self.partition_ids, 1)
        return sizes

    def partitions(self) -> list[Relation]:
        order = np.argsort(self.partition_ids, kind="stable")
        sorted_ids = self.partition_ids[order]
        sizes = self.partition_sizes()
        offsets = np.concatenate(([0], np.cumsum(sizes)))
        sorted_rel = self.relation.take(order)
        return [
            sorted_rel.slice(int(offsets[p]), int(offsets[p + 1]),
                             name=f"{self.relation.name}[{p}]")
            for p in range(self.n_partitions)
        ]


@dataclass
class PartitionPhaseOutcome:
    """Step series of all partitioning passes plus the final partition sets."""

    series_per_pass: list[StepSeries]
    build_partitions: PartitionSet
    probe_partitions: PartitionSet


@dataclass
class PHJRun:
    """A fully executed partitioned hash join."""

    partition_phase: PartitionPhaseOutcome
    build_series: StepSeries
    probe_series: StepSeries
    result: JoinResult
    config: HashJoinConfig
    partition_config: PartitionConfig
    #: Largest per-pair hash-table size in bytes (cache-residency indicator).
    max_pair_table_bytes: int = 0

    @property
    def step_series(self) -> list[StepSeries]:
        return [*self.partition_phase.series_per_pass, self.build_series, self.probe_series]


# ---------------------------------------------------------------------------
# Partition phase: n1 .. n3 per pass
# ---------------------------------------------------------------------------
def final_partition_ids(
    keys: np.ndarray, config: PartitionConfig
) -> np.ndarray:
    """Partition id after all passes (the concatenation of per-pass radix bits)."""
    ids = np.zeros(np.asarray(keys).shape[0], dtype=np.int64)
    for pass_index in range(config.n_passes):
        digits = radix_of(keys, config.bits_per_pass, pass_index, seed=config.hash_seed)
        ids |= digits << (config.bits_per_pass * pass_index)
    return ids


def execute_partition_pass(
    keys: np.ndarray,
    pass_index: int,
    config: PartitionConfig,
    allocator: MemoryAllocator,
    n_live_partitions: int,
    shared_between_devices: bool = True,
) -> StepSeries:
    """Execute one radix-partitioning pass over ``keys`` (steps n1-n3).

    ``n_live_partitions`` is the number of partitions existing after this
    pass, which determines the size of the partition-header working set.
    """
    n = np.asarray(keys).shape[0]
    # n1: compute the partition number (hash + bit extraction).
    n1 = StepExecution(
        step=PARTITION_STEPS[0],
        work=PerTupleWork(
            n_tuples=n,
            instructions=MURMUR_INSTRUCTIONS_PER_KEY + 10.0,
            sequential_bytes=12.0,
        ),
        working_set=None,
        intermediate_bytes_per_tuple=12.0,
    )

    headers_ws = WorkingSet(
        bytes=float(n_live_partitions * BUCKET_HEADER_BYTES),
        shared_between_devices=shared_between_devices,
    )
    # n2: visit the partition header (histogram / header latch).
    n2 = StepExecution(
        step=PARTITION_STEPS[1],
        work=PerTupleWork(
            n_tuples=n,
            instructions=PARTITION_HEADER_VISIT_INSTRUCTIONS,
            random_accesses=1.0,
            global_atomics=1.0,
        ),
        working_set=headers_ws,
        conflict_ratio={"cpu": 0.02, "gpu": 0.05},
        intermediate_bytes_per_tuple=8.0,
    )

    # n3: write the <key, rid> pair into its partition's output buffer.
    galloc, lalloc = allocator.atomics_per_request(PARTITION_SLOT_BYTES)
    allocator.bulk_allocate(n, PARTITION_SLOT_BYTES, n_groups=max(1, n // 256))
    n3 = StepExecution(
        step=PARTITION_STEPS[2],
        work=PerTupleWork(
            n_tuples=n,
            instructions=PARTITION_INSERT_INSTRUCTIONS,
            random_accesses=1.0,
            sequential_bytes=float(PARTITION_SLOT_BYTES),
            global_atomics=galloc,
            local_atomics=lalloc,
        ),
        working_set=WorkingSet(
            bytes=float(n * PARTITION_SLOT_BYTES),
            shared_between_devices=shared_between_devices,
        ),
        conflict_ratio={
            "cpu": allocator.conflict_ratio("cpu", PARTITION_SLOT_BYTES),
            "gpu": allocator.conflict_ratio("gpu", PARTITION_SLOT_BYTES),
        },
        intermediate_bytes_per_tuple=0.0,
    )
    return StepSeries(phase="partition", executions=[n1, n2, n3])


def execute_partition_phase(
    build: Relation,
    probe: Relation,
    partition_config: PartitionConfig,
    join_config: HashJoinConfig,
    allocator: MemoryAllocator,
) -> PartitionPhaseOutcome:
    """Partition both relations; one combined step series per pass."""
    series: list[StepSeries] = []
    combined_keys = np.concatenate([build.keys, probe.keys]) if (len(build) + len(probe)) else np.empty(0, dtype=np.int64)
    live = 1
    for pass_index in range(partition_config.n_passes):
        live *= partition_config.fanout_per_pass
        series.append(
            execute_partition_pass(
                combined_keys,
                pass_index,
                partition_config,
                allocator,
                n_live_partitions=live,
                shared_between_devices=join_config.shared_hash_table,
            )
        )

    build_ids = final_partition_ids(build.keys, partition_config)
    probe_ids = final_partition_ids(probe.keys, partition_config)
    return PartitionPhaseOutcome(
        series_per_pass=series,
        build_partitions=PartitionSet(build, build_ids, partition_config),
        probe_partitions=PartitionSet(probe, probe_ids, partition_config),
    )


# ---------------------------------------------------------------------------
# Joining the partition pairs with fine-grained SHJ steps
# ---------------------------------------------------------------------------
def _concat_per_tuple(values: list[np.ndarray | float], lengths: list[int]) -> np.ndarray | float:
    """Concatenate per-tuple work quantities of several partition pairs."""
    if all(not isinstance(v, np.ndarray) for v in values):
        unique = {float(v) for v in values}
        if len(unique) == 1:
            return unique.pop()
    arrays = [
        v if isinstance(v, np.ndarray) else np.full(n, float(v))
        for v, n in zip(values, lengths)
    ]
    return np.concatenate(arrays) if arrays else np.empty(0, dtype=np.float64)


def concat_step_series(
    series_list: list[StepSeries],
    phase: str,
    working_set: WorkingSet | None,
) -> StepSeries:
    """Merge the same-phase step series of all partition pairs into one.

    The merged series processes the concatenation of all pairs' tuples; the
    per-step working set is overridden with the per-pair table size because
    that is what the probe's random accesses actually touch.
    """
    if not series_list:
        raise PartitionError("no step series to concatenate")
    n_steps = series_list[0].n_steps
    merged: list[StepExecution] = []
    for step_idx in range(n_steps):
        executions = [series[step_idx] for series in series_list]
        lengths = [e.n_tuples for e in executions]
        total = int(sum(lengths))
        work = PerTupleWork(
            n_tuples=total,
            instructions=_concat_per_tuple([e.work.instructions for e in executions], lengths),
            random_accesses=_concat_per_tuple([e.work.random_accesses for e in executions], lengths),
            sequential_bytes=_concat_per_tuple([e.work.sequential_bytes for e in executions], lengths),
            global_atomics=_concat_per_tuple([e.work.global_atomics for e in executions], lengths),
            local_atomics=_concat_per_tuple([e.work.local_atomics for e in executions], lengths),
        )
        template = executions[0]
        conflict = {
            kind: max(e.conflict_ratio.get(kind, 0.0) for e in executions)
            for kind in ("cpu", "gpu")
        }
        merged.append(
            StepExecution(
                step=template.step,
                work=work,
                working_set=working_set if template.working_set is not None else None,
                conflict_ratio=conflict,
                intermediate_bytes_per_tuple=template.intermediate_bytes_per_tuple,
                grouped=template.grouped,
            )
        )
    return StepSeries(phase=phase, executions=merged)


class PartitionedHashJoin:
    """The PHJ operator: radix partitioning followed by per-pair SHJ."""

    def __init__(
        self,
        config: HashJoinConfig | None = None,
        partition_config: PartitionConfig | None = None,
        target_partition_tuples: int = 64_000,
    ) -> None:
        self.config = config or HashJoinConfig()
        self.partition_config = partition_config
        self.target_partition_tuples = target_partition_tuples

    def _partition_config_for(self, build: Relation) -> PartitionConfig:
        if self.partition_config is not None:
            return self.partition_config
        return plan_partitioning(len(build), self.target_partition_tuples)

    def run(self, build: Relation, probe: Relation) -> PHJRun:
        partition_config = self._partition_config_for(build)
        allocator = self.config.make_allocator(
            arena_capacity_for(len(build), len(probe)) + (len(build) + len(probe)) * 16
        )

        partition_phase = execute_partition_phase(
            build, probe, partition_config, self.config, allocator
        )

        build_parts = partition_phase.build_partitions.partitions()
        probe_parts = partition_phase.probe_partitions.partitions()

        build_series_per_pair: list[StepSeries] = []
        probe_series_per_pair: list[StepSeries] = []
        results: list[JoinResult] = []
        max_table_bytes = 0

        for build_part, probe_part in zip(build_parts, probe_parts):
            if len(build_part) == 0 and len(probe_part) == 0:
                continue
            table = HashTable(
                n_buckets=self.config.bucket_count_for(max(len(build_part), 1)),
                allocator=allocator,
                shared_between_devices=self.config.shared_hash_table,
            )
            build_outcome = execute_build(build_part, table, self.config)
            probe_outcome = execute_probe(probe_part, table, self.config)
            build_series_per_pair.append(build_outcome.series)
            probe_series_per_pair.append(probe_outcome.series)
            results.append(probe_outcome.result)
            max_table_bytes = max(max_table_bytes, table.nbytes)

        pair_ws = WorkingSet(
            bytes=float(max_table_bytes),
            shared_between_devices=self.config.shared_hash_table,
        )
        build_series = concat_step_series(build_series_per_pair, "build", pair_ws)
        probe_series = concat_step_series(probe_series_per_pair, "probe", pair_ws)

        return PHJRun(
            partition_phase=partition_phase,
            build_series=build_series,
            probe_series=probe_series,
            result=JoinResult.concat(results),
            config=self.config,
            partition_config=partition_config,
            max_pair_table_bytes=max_table_bytes,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PartitionedHashJoin(config={self.config!r}, "
            f"partition_config={self.partition_config!r})"
        )
