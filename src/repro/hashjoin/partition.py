"""Radix partitioning and the partitioned hash join (PHJ, Algorithm 2).

The paper adopts the radix hash join [5]: both relations are split into the
same partitions by one or more passes over a number of lower bits of the
integer hash values (steps ``n1``–``n3`` per pass), after which a simple hash
join is applied to each partition pair.  Partitioning keeps each per-pair hash
table small enough to stay cache resident, trading extra sequential passes for
fewer memory stalls during the probe.
"""

from __future__ import annotations

# repro: kernel
from dataclasses import dataclass, field

import numpy as np

from ..data.relation import Relation
from ..hardware.cache import WorkingSet
from ..opencl.allocator import MemoryAllocator
from .hashtable import BUCKET_HEADER_BYTES, KEY_NODE_BYTES, RID_NODE_BYTES, HashTable
from .murmur import (
    DEFAULT_SEED,
    MURMUR_INSTRUCTIONS_PER_KEY,
    bucket_of_hashed,
    murmur2,
    radix_of,
    radix_span_of,
)
from .result import JoinResult
from .simple import HashJoinConfig, arena_capacity_for, execute_build, execute_probe
from .steps import (
    PARTITION_STEPS,
    PerTupleWork,
    StepExecution,
    StepSeries,
)

PARTITION_HEADER_VISIT_INSTRUCTIONS = 10.0
PARTITION_INSERT_INSTRUCTIONS = 15.0
PARTITION_SLOT_BYTES = 8


class PartitionError(RuntimeError):
    """Raised for invalid partitioning configurations."""


#: Ceiling on total radix bits enforced by :class:`PartitionConfig`.
MAX_RADIX_BITS = 24


@dataclass(frozen=True)
class PartitionConfig:
    """Radix-partitioning configuration.

    The number of passes and bits per pass are tuned to the memory hierarchy
    (TLB and caches) in the paper; :func:`plan_partitioning` picks them from a
    target per-partition size.
    """

    bits_per_pass: int = 6
    n_passes: int = 1
    hash_seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        if self.bits_per_pass <= 0 or self.n_passes <= 0:
            raise PartitionError("bits_per_pass and n_passes must be positive")
        if self.bits_per_pass * self.n_passes > MAX_RADIX_BITS:
            raise PartitionError(
                f"more than {MAX_RADIX_BITS} radix bits is not supported"
            )

    @property
    def total_bits(self) -> int:
        return self.bits_per_pass * self.n_passes

    @property
    def n_partitions(self) -> int:
        return 1 << self.total_bits

    @property
    def fanout_per_pass(self) -> int:
        return 1 << self.bits_per_pass


def plan_partitioning(
    build_tuples: int,
    target_partition_tuples: int = 64_000,
    max_bits_per_pass: int = 8,
) -> PartitionConfig:
    """Choose radix bits/passes so each partition holds about the target tuples.

    Huge build sides whose ideal fan-out would exceed the 24-radix-bit
    ceiling fall back to larger-than-target partitions instead of emitting a
    configuration that :class:`PartitionConfig` rejects mid-run.
    """
    if build_tuples <= 0:
        return PartitionConfig(bits_per_pass=1, n_passes=1)
    if target_partition_tuples <= 0:
        raise PartitionError("target_partition_tuples must be positive")
    needed = max(1, int(np.ceil(build_tuples / target_partition_tuples)))
    total_bits = max(1, int(np.ceil(np.log2(needed))))
    total_bits = min(total_bits, MAX_RADIX_BITS)
    n_passes = max(1, int(np.ceil(total_bits / max_bits_per_pass)))
    bits_per_pass = int(np.ceil(total_bits / n_passes))
    if bits_per_pass * n_passes > MAX_RADIX_BITS:
        # Rounding bits up per pass overshot the ceiling: shrink the passes
        # (larger partitions) rather than raising from deep inside a run.
        bits_per_pass = MAX_RADIX_BITS // n_passes
    return PartitionConfig(bits_per_pass=bits_per_pass, n_passes=n_passes)


@dataclass
class PartitionSet:
    """The output of radix partitioning one relation.

    ``key_hashes`` optionally carries the murmur values the fused partition
    kernel evaluated (one per tuple, partition seed), so downstream bucket
    assignment can reuse them instead of re-hashing every partition pair.
    """

    relation: Relation
    partition_ids: np.ndarray
    config: PartitionConfig
    key_hashes: np.ndarray | None = None

    @property
    def n_partitions(self) -> int:
        return self.config.n_partitions

    def partition(self, pid: int) -> Relation:
        mask = self.partition_ids == pid
        return self.relation.take(np.flatnonzero(mask), name=f"{self.relation.name}[{pid}]")

    def partition_sizes(self) -> np.ndarray:
        return np.bincount(self.partition_ids, minlength=self.n_partitions).astype(
            np.int64
        )

    def partitions(self) -> list[Relation]:
        return [relation for relation, _ in self.partitions_with_hashes()]

    def partitions_with_hashes(self) -> list[tuple[Relation, np.ndarray | None]]:
        """(partition relation, carried hash slice or None) per partition."""
        return split_relation_by_partition(
            self.relation,
            self.partition_ids,
            self.n_partitions,
            self.relation.name,
            key_hashes=self.key_hashes,
        )


def split_relation_by_partition(
    relation: Relation,
    ids: np.ndarray,
    n_parts: int,
    label: str,
    key_hashes: np.ndarray | None = None,
) -> list[tuple[Relation, np.ndarray | None]]:
    """Carve a relation into its partitions with one stable argsort.

    Equivalent to ``relation.take(np.flatnonzero(ids == pid))`` per pid —
    a stable sort keeps ascending positions inside every partition, so each
    part's tuples come out in the identical order.  The single split kernel
    behind :meth:`PartitionSet.partitions_with_hashes` and the external
    join's super-partition staging; ``key_hashes``, when carried, is sliced
    alongside.
    """
    ids = np.asarray(ids)
    if ids.size and (ids.min() < 0 or ids.max() >= n_parts):
        raise PartitionError(
            f"partition ids out of range [0, {n_parts}); bincount would "
            "silently drop those tuples"
        )
    order = np.argsort(ids, kind="stable")
    sizes = np.bincount(ids, minlength=n_parts)
    offsets = np.concatenate(([0], np.cumsum(sizes)))
    sorted_rel = relation.take(order)
    sorted_hashes = key_hashes[order] if key_hashes is not None else None
    out: list[tuple[Relation, np.ndarray | None]] = []
    for pid in range(n_parts):
        start, stop = int(offsets[pid]), int(offsets[pid + 1])
        part = sorted_rel.slice(start, stop, name=f"{label}[{pid}]")
        hashes = sorted_hashes[start:stop] if sorted_hashes is not None else None
        out.append((part, hashes))
    return out


@dataclass
class PartitionPhaseOutcome:
    """Step series of all partitioning passes plus the final partition sets."""

    series_per_pass: list[StepSeries]
    build_partitions: PartitionSet
    probe_partitions: PartitionSet


@dataclass
class PHJRun:
    """A fully executed partitioned hash join."""

    partition_phase: PartitionPhaseOutcome
    build_series: StepSeries
    probe_series: StepSeries
    result: JoinResult
    config: HashJoinConfig
    partition_config: PartitionConfig
    #: Largest per-pair hash-table size in bytes (cache-residency indicator).
    max_pair_table_bytes: int = 0

    @property
    def step_series(self) -> list[StepSeries]:
        return [*self.partition_phase.series_per_pass, self.build_series, self.probe_series]


# ---------------------------------------------------------------------------
# Partition phase: n1 .. n3 per pass
# ---------------------------------------------------------------------------
def final_partition_ids(
    keys: np.ndarray, config: PartitionConfig, fused: bool = True
) -> np.ndarray:
    """Partition id after all passes (the concatenation of per-pass radix bits).

    The fused kernel evaluates the hash once and masks out all passes' bits
    in one shot; ``fused=False`` keeps the per-pass loop (one hash evaluation
    and shift/OR per pass) as the bit-matched reference.
    """
    if fused:
        return radix_span_of(keys, config.total_bits, seed=config.hash_seed)
    ids = np.zeros(np.asarray(keys).shape[0], dtype=np.int64)
    for pass_index in range(config.n_passes):
        digits = radix_of(keys, config.bits_per_pass, pass_index, seed=config.hash_seed)
        ids |= digits << (config.bits_per_pass * pass_index)
    return ids


def execute_partition_pass(
    keys: np.ndarray,
    pass_index: int,
    config: PartitionConfig,
    allocator: MemoryAllocator,
    n_live_partitions: int,
    shared_between_devices: bool = True,
) -> StepSeries:
    """Execute one radix-partitioning pass over ``keys`` (steps n1-n3).

    ``n_live_partitions`` is the number of partitions existing after this
    pass, which determines the size of the partition-header working set.
    """
    return _partition_pass_series(
        np.asarray(keys).shape[0],
        pass_index,
        config,
        allocator,
        n_live_partitions,
        shared_between_devices,
    )


def _partition_pass_series(
    n: int,
    pass_index: int,
    config: PartitionConfig,
    allocator: MemoryAllocator,
    n_live_partitions: int,
    shared_between_devices: bool = True,
) -> StepSeries:
    """One pass's step series from the tuple count alone (the per-tuple work
    of the partition steps is uniform, so the keys are only needed once for
    the fused partition-id kernel, not per pass)."""
    # n1: compute the partition number (hash + bit extraction).
    n1 = StepExecution(
        step=PARTITION_STEPS[0],
        work=PerTupleWork(
            n_tuples=n,
            instructions=MURMUR_INSTRUCTIONS_PER_KEY + 10.0,
            sequential_bytes=12.0,
        ),
        working_set=None,
        intermediate_bytes_per_tuple=12.0,
    )

    headers_ws = WorkingSet(
        bytes=float(n_live_partitions * BUCKET_HEADER_BYTES),
        shared_between_devices=shared_between_devices,
    )
    # n2: visit the partition header (histogram / header latch).
    n2 = StepExecution(
        step=PARTITION_STEPS[1],
        work=PerTupleWork(
            n_tuples=n,
            instructions=PARTITION_HEADER_VISIT_INSTRUCTIONS,
            random_accesses=1.0,
            global_atomics=1.0,
        ),
        working_set=headers_ws,
        conflict_ratio={"cpu": 0.02, "gpu": 0.05},
        intermediate_bytes_per_tuple=8.0,
    )

    # n3: write the <key, rid> pair into its partition's output buffer.
    galloc, lalloc = allocator.atomics_per_request(PARTITION_SLOT_BYTES)
    allocator.bulk_allocate(n, PARTITION_SLOT_BYTES, n_groups=max(1, n // 256))
    n3 = StepExecution(
        step=PARTITION_STEPS[2],
        work=PerTupleWork(
            n_tuples=n,
            instructions=PARTITION_INSERT_INSTRUCTIONS,
            random_accesses=1.0,
            sequential_bytes=float(PARTITION_SLOT_BYTES),
            global_atomics=galloc,
            local_atomics=lalloc,
        ),
        working_set=WorkingSet(
            bytes=float(n * PARTITION_SLOT_BYTES),
            shared_between_devices=shared_between_devices,
        ),
        conflict_ratio={
            "cpu": allocator.conflict_ratio("cpu", PARTITION_SLOT_BYTES),
            "gpu": allocator.conflict_ratio("gpu", PARTITION_SLOT_BYTES),
        },
        intermediate_bytes_per_tuple=0.0,
    )
    return StepSeries(phase="partition", executions=[n1, n2, n3])


def execute_partition_phase(
    build: Relation,
    probe: Relation,
    partition_config: PartitionConfig,
    join_config: HashJoinConfig,
    allocator: MemoryAllocator,
    fused: bool = True,
) -> PartitionPhaseOutcome:
    """Partition both relations; one combined step series per pass.

    The fused kernel hashes each relation once and derives every pass's
    radix digits from that single evaluation (the per-pass step series need
    only the tuple count); ``fused=False`` keeps the per-pass loop over the
    concatenated keys as the bit-matched reference.
    """
    series: list[StepSeries] = []
    n_combined = len(build) + len(probe)
    combined_keys: np.ndarray | None = None
    if not fused:
        combined_keys = (
            np.concatenate([build.keys, probe.keys])
            if n_combined
            else np.empty(0, dtype=np.int64)
        )
    live = 1
    for pass_index in range(partition_config.n_passes):
        live *= partition_config.fanout_per_pass
        series.append(
            _partition_pass_series(
                n_combined if fused else combined_keys.shape[0],
                pass_index,
                partition_config,
                allocator,
                n_live_partitions=live,
                shared_between_devices=join_config.shared_hash_table,
            )
        )

    if fused:
        # One hash evaluation per relation: the partition ids are its low
        # bits, and the values are carried so per-pair bucket assignment
        # can reuse them (b1/p1 consume the same murmur value).
        mask = np.uint64(partition_config.n_partitions - 1)
        build_hashes = murmur2(build.keys, seed=partition_config.hash_seed)
        probe_hashes = murmur2(probe.keys, seed=partition_config.hash_seed)
        build_ids = (build_hashes & mask).astype(np.int64)
        probe_ids = (probe_hashes & mask).astype(np.int64)
    else:
        build_hashes = probe_hashes = None
        build_ids = final_partition_ids(build.keys, partition_config, fused=False)
        probe_ids = final_partition_ids(probe.keys, partition_config, fused=False)
    return PartitionPhaseOutcome(
        series_per_pass=series,
        build_partitions=PartitionSet(
            build, build_ids, partition_config, key_hashes=build_hashes
        ),
        probe_partitions=PartitionSet(
            probe, probe_ids, partition_config, key_hashes=probe_hashes
        ),
    )


# ---------------------------------------------------------------------------
# Joining the partition pairs with fine-grained SHJ steps
# ---------------------------------------------------------------------------
#: Per-tuple work quantities a merged step carries, in field order.
_WORK_QUANTITIES = (
    "instructions",
    "random_accesses",
    "sequential_bytes",
    "global_atomics",
    "local_atomics",
)


def _collapse_scalar(values: list[np.ndarray | float]) -> tuple[bool, float]:
    """Whether all per-pair quantities are one shared scalar (and which).

    NaN work values are collapsible too: NaN never compares equal to itself,
    so the historical ``{float(v)}`` set membership silently broadcast
    all-NaN scalars to full per-tuple arrays.
    """
    if any(isinstance(v, np.ndarray) for v in values):
        return False, 0.0
    first = float(values[0])
    if all(float(v) == first for v in values[1:]):
        return True, first
    if np.isnan(first) and all(np.isnan(float(v)) for v in values[1:]):
        return True, first
    return False, 0.0


def _concat_per_tuple(values: list[np.ndarray | float], lengths: list[int]) -> np.ndarray | float:
    """Reference concatenation of per-tuple work quantities (list + copy)."""
    collapsed, scalar = _collapse_scalar(values)
    if collapsed:
        return scalar
    arrays = [
        v if isinstance(v, np.ndarray) else np.full(n, float(v))
        for v, n in zip(values, lengths)
    ]
    return np.concatenate(arrays) if arrays else np.empty(0, dtype=np.float64)


class ConcatWorkspace:
    """Grow-only columnar buffers backing :func:`concat_step_series`.

    One float64 buffer per (step, quantity) slot, grown geometrically and
    never shrunk — the same pattern as the batch engine's preallocated
    ``out=`` workspaces.  A workspace hands out *views* of its buffers, so
    it must only be shared by drivers that consume a merged series before
    requesting the next one (each join run uses a private workspace by
    default).
    """

    def __init__(self) -> None:
        self._buffers: dict[tuple[str, int, int], np.ndarray] = {}

    def buffer(self, phase: str, step_idx: int, quantity_idx: int, n: int) -> np.ndarray:
        key = (phase, step_idx, quantity_idx)
        buf = self._buffers.get(key)
        if buf is None or buf.shape[0] < n:
            grown = max(n, 2 * (buf.shape[0] if buf is not None else 0))
            buf = np.empty(grown, dtype=np.float64)
            self._buffers[key] = buf
        return buf[:n]


def _concat_columnar(
    executions: list[StepExecution],
    lengths: list[int],
    total: int,
    phase: str,
    step_idx: int,
    workspace: ConcatWorkspace | None,
) -> PerTupleWork:
    """Columnar merge of one step's per-tuple work across all pairs.

    Each quantity is written once into a single preallocated column with an
    allocation-free ``np.concatenate(..., out=)`` over the pairs' arrays and
    zero-copy broadcast views of their scalars — instead of materialising a
    temporary per pair and re-concatenating into a fresh output.  Values are
    bit-identical to the reference path (plain float64 copies either way).
    """
    quantities: dict[str, np.ndarray | float] = {}
    for q_idx, name in enumerate(_WORK_QUANTITIES):
        values = [getattr(e.work, name) for e in executions]
        collapsed, scalar = _collapse_scalar(values)
        if collapsed:
            quantities[name] = scalar
            continue
        if workspace is not None:
            column = workspace.buffer(phase, step_idx, q_idx, total)
        else:
            # Workspace-less fallback path (callers without a ConcatWorkspace);
            # the workspace branch above is the hot one.
            column = np.empty(total, dtype=np.float64)  # repro: ignore[numpy-hygiene]
        pieces = [
            np.asarray(value, dtype=np.float64)
            if isinstance(value, np.ndarray)
            else np.broadcast_to(np.float64(value), n)
            for value, n in zip(values, lengths)
        ]
        np.concatenate(pieces, out=column)
        quantities[name] = column
    return PerTupleWork(n_tuples=total, **quantities)


def concat_step_series(
    series_list: list[StepSeries],
    phase: str,
    working_set: WorkingSet | None,
    columnar: bool = True,
    workspace: ConcatWorkspace | None = None,
) -> StepSeries:
    """Merge the same-phase step series of all partition pairs into one.

    The merged series processes the concatenation of all pairs' tuples; the
    per-step working set is overridden with the per-pair table size because
    that is what the probe's random accesses actually touch.

    ``columnar`` selects the single-column fill kernel (optionally reusing a
    grow-only :class:`ConcatWorkspace`); ``columnar=False`` keeps the
    historical per-pair materialise-and-concatenate loop as the bit-matched
    reference.
    """
    if not series_list:
        raise PartitionError("no step series to concatenate")
    n_steps = series_list[0].n_steps
    merged: list[StepExecution] = []
    for step_idx in range(n_steps):
        executions = [series[step_idx] for series in series_list]
        lengths = [e.n_tuples for e in executions]
        total = int(sum(lengths))
        if columnar:
            work = _concat_columnar(executions, lengths, total, phase, step_idx, workspace)
        else:
            work = PerTupleWork(
                n_tuples=total,
                instructions=_concat_per_tuple([e.work.instructions for e in executions], lengths),
                random_accesses=_concat_per_tuple([e.work.random_accesses for e in executions], lengths),
                sequential_bytes=_concat_per_tuple([e.work.sequential_bytes for e in executions], lengths),
                global_atomics=_concat_per_tuple([e.work.global_atomics for e in executions], lengths),
                local_atomics=_concat_per_tuple([e.work.local_atomics for e in executions], lengths),
            )
        template = executions[0]
        conflict = {
            kind: max(e.conflict_ratio.get(kind, 0.0) for e in executions)
            for kind in ("cpu", "gpu")
        }
        merged.append(
            StepExecution(
                step=template.step,
                work=work,
                working_set=working_set if template.working_set is not None else None,
                conflict_ratio=conflict,
                intermediate_bytes_per_tuple=template.intermediate_bytes_per_tuple,
                grouped=template.grouped,
            )
        )
    return StepSeries(phase=phase, executions=merged)


def join_partition_pair(
    build_part: Relation,
    probe_part: Relation,
    build_hashes: np.ndarray | None,
    probe_hashes: np.ndarray | None,
    config: HashJoinConfig,
    reuse_hashes: bool,
    allocator: MemoryAllocator,
) -> tuple[StepSeries, StepSeries, JoinResult, int]:
    """Join one partition pair with the fine-grained SHJ steps.

    Returns ``(build series, probe series, result, table bytes)``.  The body
    only depends on the pair's tuples and the allocator *configuration* (the
    bulk paths bump the arena and add to counters without reading history),
    so the serial shared-allocator loop and the process-pool workers with
    private allocators produce bit-identical outcomes.
    """
    table = HashTable(
        n_buckets=config.bucket_count_for(max(len(build_part), 1)),
        allocator=allocator,
        shared_between_devices=config.shared_hash_table,
    )
    build_buckets = (
        bucket_of_hashed(build_hashes, table.n_buckets)
        if reuse_hashes and build_hashes is not None
        else None
    )
    probe_buckets = (
        bucket_of_hashed(probe_hashes, table.n_buckets)
        if reuse_hashes and probe_hashes is not None
        else None
    )
    build_outcome = execute_build(build_part, table, config, buckets=build_buckets)
    probe_outcome = execute_probe(probe_part, table, config, buckets=probe_buckets)
    return build_outcome.series, probe_outcome.series, probe_outcome.result, table.nbytes


class PartitionedHashJoin:
    """The PHJ operator: radix partitioning followed by per-pair SHJ."""

    def __init__(
        self,
        config: HashJoinConfig | None = None,
        partition_config: PartitionConfig | None = None,
        target_partition_tuples: int = 64_000,
        use_kernels: bool = True,
        concat_workspace: ConcatWorkspace | None = None,
        parallel: bool = False,
        n_workers: int | None = None,
    ) -> None:
        """``use_kernels=False`` routes the partition phase and the per-pair
        series merge through the scalar reference paths (the pre-kernel
        per-pass loop and materialise-and-concatenate merge); the results
        are bit-identical either way.  ``concat_workspace`` opts into a
        shared grow-only buffer set for drivers that consume each run's
        series before starting the next run.  ``parallel=True`` joins the
        independent partition pairs on the shared process pool (``n_workers``
        processes); ``parallel=False`` keeps the serial per-pair loop as the
        bit-matched reference."""
        self.config = config or HashJoinConfig()
        self.partition_config = partition_config
        self.target_partition_tuples = target_partition_tuples
        self.use_kernels = use_kernels
        self.concat_workspace = concat_workspace
        self.parallel = parallel
        self.n_workers = n_workers

    def _partition_config_for(self, build: Relation) -> PartitionConfig:
        if self.partition_config is not None:
            return self.partition_config
        return plan_partitioning(len(build), self.target_partition_tuples)

    def run(self, build: Relation, probe: Relation) -> PHJRun:
        partition_config = self._partition_config_for(build)
        arena_capacity = (
            arena_capacity_for(len(build), len(probe)) + (len(build) + len(probe)) * 16
        )
        allocator = self.config.make_allocator(arena_capacity)

        partition_phase = execute_partition_phase(
            build, probe, partition_config, self.config, allocator,
            fused=self.use_kernels,
        )

        build_parts = partition_phase.build_partitions.partitions_with_hashes()
        probe_parts = partition_phase.probe_partitions.partitions_with_hashes()
        # The carried partition-phase hashes equal the bucket hashes only
        # when both consumers share the murmur seed.
        reuse_hashes = partition_config.hash_seed == self.config.hash_seed

        pairs = [
            (build_part, probe_part, build_hashes, probe_hashes)
            for (build_part, build_hashes), (probe_part, probe_hashes) in zip(
                build_parts, probe_parts
            )
            if len(build_part) or len(probe_part)
        ]

        if self.parallel and len(pairs) > 1:
            from .parallel import run_fine_pairs

            outcomes = run_fine_pairs(
                pairs, self.config, reuse_hashes, arena_capacity, allocator,
                n_workers=self.n_workers,
            )
        else:
            outcomes = [
                join_partition_pair(
                    build_part, probe_part, build_hashes, probe_hashes,
                    self.config, reuse_hashes, allocator,
                )
                for build_part, probe_part, build_hashes, probe_hashes in pairs
            ]

        build_series_per_pair: list[StepSeries] = []
        probe_series_per_pair: list[StepSeries] = []
        results: list[JoinResult] = []
        max_table_bytes = 0
        for build_series_one, probe_series_one, result, table_bytes in outcomes:
            build_series_per_pair.append(build_series_one)
            probe_series_per_pair.append(probe_series_one)
            results.append(result)
            max_table_bytes = max(max_table_bytes, table_bytes)

        pair_ws = WorkingSet(
            bytes=float(max_table_bytes),
            shared_between_devices=self.config.shared_hash_table,
        )
        build_series = concat_step_series(
            build_series_per_pair, "build", pair_ws,
            columnar=self.use_kernels, workspace=self.concat_workspace,
        )
        probe_series = concat_step_series(
            probe_series_per_pair, "probe", pair_ws,
            columnar=self.use_kernels, workspace=self.concat_workspace,
        )

        return PHJRun(
            partition_phase=partition_phase,
            build_series=build_series,
            probe_series=probe_series,
            result=JoinResult.concat(results),
            config=self.config,
            partition_config=partition_config,
            max_pair_table_bytes=max_table_bytes,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PartitionedHashJoin(config={self.config!r}, "
            f"partition_config={self.partition_config!r})"
        )
