"""The simple hash join (SHJ) decomposed into fine-grained steps.

Algorithm 1 of the paper: the build phase inserts every tuple of ``R`` into
the chained hash table (steps ``b1``–``b4``); the probe phase looks up every
tuple of ``S`` (steps ``p1``–``p4``) and emits matching rid pairs.  The
executor here really performs both phases (over numpy arrays via
:class:`~repro.hashjoin.hashtable.HashTable`) and records per-tuple work so
that any co-processing scheme can later split each step between the CPU and
the GPU at an arbitrary ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..data.relation import Relation
from ..hardware.cache import WorkingSet
from ..opencl.allocator import MemoryAllocator, make_allocator
from .hashtable import (
    BUCKET_HEADER_BYTES,
    HEADER_VISIT_INSTRUCTIONS,
    KEY_NODE_BYTES,
    KEY_SEARCH_BASE_INSTRUCTIONS,
    KEY_SEARCH_PER_NODE_INSTRUCTIONS,
    MATCH_VISIT_BASE_INSTRUCTIONS,
    MATCH_VISIT_PER_MATCH_INSTRUCTIONS,
    RID_INSERT_INSTRUCTIONS,
    RID_NODE_BYTES,
    HashTable,
    default_bucket_count,
)
from .murmur import DEFAULT_SEED, MURMUR_INSTRUCTIONS_PER_KEY, bucket_of
from .result import JoinResult
from .steps import (
    BUILD_STEPS,
    PROBE_STEPS,
    PerTupleWork,
    StepExecution,
    StepSeries,
)

#: Extra per-tuple instructions and bytes paid when the divergence-grouping
#: optimisation pre-sorts the inputs of a workload-dependent step.
GROUPING_INSTRUCTIONS_PER_TUPLE = 6.0
GROUPING_SEQUENTIAL_BYTES_PER_TUPLE = 8.0


@dataclass(frozen=True)
class HashJoinConfig:
    """Tuning knobs shared by all hash-join variants (Section 3.3)."""

    #: Number of hash buckets; ``None`` sizes the table to ~1 key per bucket.
    n_buckets: int | None = None
    #: "basic" (one global atomic per allocation) or "block" (the optimised
    #: allocator of the paper).
    allocator_kind: str = "block"
    #: Block size of the optimised allocator (Figure 11; best ~2 KB).
    allocator_block_bytes: int = 2048
    #: Shared hash table between the CPU and the GPU vs. separate per-device
    #: tables merged afterwards (Figure 10).
    shared_hash_table: bool = True
    #: Workload-divergence grouping of the workload-dependent steps.
    grouping: bool = False
    #: Seed of MurmurHash 2.0.
    hash_seed: int = DEFAULT_SEED

    def make_allocator(self, capacity_bytes: int) -> MemoryAllocator:
        return make_allocator(
            self.allocator_kind,
            capacity_bytes=capacity_bytes,
            block_bytes=self.allocator_block_bytes,
        )

    def bucket_count_for(self, expected_keys: int) -> int:
        if self.n_buckets is not None:
            return self.n_buckets
        return default_bucket_count(expected_keys)


@dataclass
class BuildOutcome:
    """Result of executing the build step series."""

    series: StepSeries
    table: HashTable


@dataclass
class ProbeOutcome:
    """Result of executing the probe step series."""

    series: StepSeries
    result: JoinResult


@dataclass
class SHJRun:
    """A fully executed simple hash join."""

    build: BuildOutcome
    probe: ProbeOutcome
    config: HashJoinConfig

    @property
    def result(self) -> JoinResult:
        return self.probe.result

    @property
    def step_series(self) -> list[StepSeries]:
        return [self.build.series, self.probe.series]

    @property
    def table(self) -> HashTable:
        return self.build.table


def arena_capacity_for(build_tuples: int, probe_tuples: int) -> int:
    """Pre-allocated arena size able to hold the table and the join output."""
    table_bytes = build_tuples * (KEY_NODE_BYTES + RID_NODE_BYTES)
    output_bytes = max(probe_tuples, build_tuples) * 8 * 4
    return max(table_bytes * 2 + output_bytes, 1 << 16)


def make_table(
    build_tuples: int,
    probe_tuples: int,
    config: HashJoinConfig,
    allocator: MemoryAllocator | None = None,
) -> HashTable:
    """Create a hash table sized for ``build_tuples`` build-side tuples."""
    allocator = allocator or config.make_allocator(
        arena_capacity_for(build_tuples, probe_tuples)
    )
    return HashTable(
        n_buckets=config.bucket_count_for(build_tuples),
        allocator=allocator,
        shared_between_devices=config.shared_hash_table,
    )


# ---------------------------------------------------------------------------
# Build phase: b1 .. b4
# ---------------------------------------------------------------------------
def execute_build(
    build: Relation,
    table: HashTable,
    config: HashJoinConfig | None = None,
    buckets: np.ndarray | None = None,
) -> BuildOutcome:
    """Run the build phase of SHJ on ``build`` into ``table``.

    ``buckets`` optionally carries precomputed bucket numbers (the PHJ
    driver derives them from the hash values the partition phase already
    evaluated); they must equal ``bucket_of(build.keys, table.n_buckets,
    seed=config.hash_seed)``.  The charged b1 work is unchanged — the step
    still stands for the hash computation wherever its value was produced.
    """
    config = config or HashJoinConfig()
    n = len(build)
    allocator = table.allocator

    # b1: compute hash bucket number for every tuple.
    if buckets is None:
        buckets = (
            bucket_of(build.keys, table.n_buckets, seed=config.hash_seed)
            if n
            else np.empty(0, dtype=np.int64)
        )
    b1 = StepExecution(
        step=BUILD_STEPS[0],
        work=PerTupleWork(
            n_tuples=n,
            instructions=MURMUR_INSTRUCTIONS_PER_KEY,
            sequential_bytes=12.0,
        ),
        working_set=None,
        intermediate_bytes_per_tuple=12.0,
    )

    # b2-b4: insert every tuple (real side effects happen here).
    work = table.bulk_insert(build.keys, build.rids, buckets)
    table_ws = table.working_set()
    header_ws = WorkingSet(
        bytes=float(table.n_buckets * BUCKET_HEADER_BYTES),
        shared_between_devices=table.shared_between_devices,
    )
    galloc_key, lalloc_key = allocator.atomics_per_request(KEY_NODE_BYTES)
    galloc_rid, lalloc_rid = allocator.atomics_per_request(RID_NODE_BYTES)

    b2 = StepExecution(
        step=BUILD_STEPS[1],
        work=PerTupleWork(
            n_tuples=n,
            instructions=HEADER_VISIT_INSTRUCTIONS,
            random_accesses=1.0,
            global_atomics=1.0,
        ),
        working_set=header_ws,
        conflict_ratio=dict(work.latch_conflict),
        intermediate_bytes_per_tuple=8.0,
    )

    visited = work.key_nodes_visited
    created = work.new_key_created
    b3_work = PerTupleWork(
        n_tuples=n,
        instructions=KEY_SEARCH_BASE_INSTRUCTIONS
        + KEY_SEARCH_PER_NODE_INSTRUCTIONS * visited,
        random_accesses=visited,
        global_atomics=created * galloc_key,
        local_atomics=created * lalloc_key,
    )
    b3 = StepExecution(
        step=BUILD_STEPS[2],
        work=_with_grouping_overhead(b3_work, config.grouping),
        working_set=table_ws,
        conflict_ratio={
            "cpu": allocator.conflict_ratio("cpu", KEY_NODE_BYTES),
            "gpu": allocator.conflict_ratio("gpu", KEY_NODE_BYTES),
        },
        grouped=config.grouping,
        intermediate_bytes_per_tuple=8.0,
    )

    b4 = StepExecution(
        step=BUILD_STEPS[3],
        work=PerTupleWork(
            n_tuples=n,
            instructions=RID_INSERT_INSTRUCTIONS,
            random_accesses=1.0,
            sequential_bytes=float(RID_NODE_BYTES),
            global_atomics=galloc_rid,
            local_atomics=lalloc_rid,
        ),
        working_set=table_ws,
        conflict_ratio={
            "cpu": allocator.conflict_ratio("cpu", RID_NODE_BYTES),
            "gpu": allocator.conflict_ratio("gpu", RID_NODE_BYTES),
        },
        intermediate_bytes_per_tuple=0.0,
    )

    series = StepSeries(phase="build", executions=[b1, b2, b3, b4])
    return BuildOutcome(series=series, table=table)


# ---------------------------------------------------------------------------
# Probe phase: p1 .. p4
# ---------------------------------------------------------------------------
def execute_probe(
    probe: Relation,
    table: HashTable,
    config: HashJoinConfig | None = None,
    buckets: np.ndarray | None = None,
) -> ProbeOutcome:
    """Run the probe phase of SHJ with ``probe`` against ``table``.

    ``buckets`` optionally carries precomputed bucket numbers, exactly as
    in :func:`execute_build`.
    """
    config = config or HashJoinConfig()
    n = len(probe)
    allocator = table.allocator

    if buckets is None:
        buckets = (
            bucket_of(probe.keys, table.n_buckets, seed=config.hash_seed)
            if n
            else np.empty(0, dtype=np.int64)
        )
    p1 = StepExecution(
        step=PROBE_STEPS[0],
        work=PerTupleWork(
            n_tuples=n,
            instructions=MURMUR_INSTRUCTIONS_PER_KEY,
            sequential_bytes=12.0,
        ),
        working_set=None,
        intermediate_bytes_per_tuple=12.0,
    )

    result, work = table.bulk_probe(probe.keys, probe.rids, buckets)
    table_ws = table.working_set()
    header_ws = WorkingSet(
        bytes=float(table.n_buckets * BUCKET_HEADER_BYTES),
        shared_between_devices=table.shared_between_devices,
    )

    p2 = StepExecution(
        step=PROBE_STEPS[1],
        work=PerTupleWork(
            n_tuples=n,
            instructions=HEADER_VISIT_INSTRUCTIONS,
            random_accesses=1.0,
        ),
        working_set=header_ws,
        intermediate_bytes_per_tuple=8.0,
    )

    visited = work.key_nodes_visited
    p3_work = PerTupleWork(
        n_tuples=n,
        instructions=KEY_SEARCH_BASE_INSTRUCTIONS
        + KEY_SEARCH_PER_NODE_INSTRUCTIONS * visited,
        random_accesses=visited,
    )
    p3 = StepExecution(
        step=PROBE_STEPS[2],
        work=_with_grouping_overhead(p3_work, config.grouping),
        working_set=table_ws,
        grouped=config.grouping,
        intermediate_bytes_per_tuple=8.0,
    )

    matches = work.matches
    galloc_out, lalloc_out = allocator.atomics_per_request(8)
    p4_work = PerTupleWork(
        n_tuples=n,
        instructions=MATCH_VISIT_BASE_INSTRUCTIONS
        + MATCH_VISIT_PER_MATCH_INSTRUCTIONS * matches,
        random_accesses=matches,
        sequential_bytes=8.0 * matches,
        global_atomics=matches * galloc_out,
        local_atomics=matches * lalloc_out,
    )
    p4 = StepExecution(
        step=PROBE_STEPS[3],
        work=_with_grouping_overhead(p4_work, config.grouping),
        working_set=table_ws,
        conflict_ratio={
            "cpu": allocator.conflict_ratio("cpu", 8),
            "gpu": allocator.conflict_ratio("gpu", 8),
        },
        grouped=config.grouping,
        intermediate_bytes_per_tuple=0.0,
    )

    series = StepSeries(phase="probe", executions=[p1, p2, p3, p4])
    return ProbeOutcome(series=series, result=result)


def _with_grouping_overhead(work: PerTupleWork, grouping: bool) -> PerTupleWork:
    """Charge the grouping pass when the optimisation is enabled."""
    if not grouping:
        return work
    return replace(
        work,
        instructions=work.instructions + GROUPING_INSTRUCTIONS_PER_TUPLE,
        sequential_bytes=work.sequential_bytes + GROUPING_SEQUENTIAL_BYTES_PER_TUPLE,
    )


# ---------------------------------------------------------------------------
# Whole-join convenience wrapper
# ---------------------------------------------------------------------------
class SimpleHashJoin:
    """The SHJ operator: build then probe, with fine-grained step accounting."""

    def __init__(self, config: HashJoinConfig | None = None) -> None:
        self.config = config or HashJoinConfig()

    def run(self, build: Relation, probe: Relation) -> SHJRun:
        table = make_table(len(build), len(probe), self.config)
        build_outcome = execute_build(build, table, self.config)
        probe_outcome = execute_probe(probe, table, self.config)
        return SHJRun(build=build_outcome, probe=probe_outcome, config=self.config)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimpleHashJoin(config={self.config!r})"
