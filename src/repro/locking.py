"""Named lock construction plus the opt-in runtime lock-order sanitizer.

``make_lock`` started life (ISSUE 6) as the one idiom through which every
lock in the codebase is created, so the ``lock-discipline`` checker could
recognise lock-owning classes.  ISSUE 9 grows it into the anchor of the
whole-program concurrency analysis:

* every ``make_lock(name)`` call registers its **name** — the stable node id
  the static ``lock-order`` pass (:mod:`repro.analysis.lock_order`) uses for
  its acquisition graph, and the id the runtime sanitizer reports in
  violation messages.  Raw ``threading.Lock()`` construction outside this
  module is now a ``lock-discipline`` finding, so the lock population the
  static and dynamic halves see is complete.
* with ``REPRO_LOCK_SANITIZER=1`` in the environment, ``make_lock`` returns
  a :class:`SanitizedLock` wrapper that records per-thread acquisition
  stacks and a process-global order graph.  Acquiring ``B`` while holding
  ``A`` records the edge ``A -> B``; if the inverse edge was ever observed
  (by any thread), :class:`LockOrderViolation` is raised with both witness
  sites — the dynamic complement of the static cycle check, run by the CI
  ``sanitizer`` job over the service and parallel-join test subset.

Fork safety: the registry/order guards are process-global locks, so this
module registers an ``os.register_at_fork`` hook replacing them with fresh
locks in the child — another thread may hold a guard at fork time, and the
child (which inherits the locked state but not the thread) would otherwise
deadlock on first use.  The registry and edge *data* survive the fork; a
fork happens between bytecodes, so the dicts are structurally consistent.

Use ``reentrant=True`` when public methods of the owning class call other
public methods that take the same lock; plain mutual exclusion wants the
cheaper non-reentrant lock.  The return type is the context-manager
protocol because ``threading.Lock``/``RLock`` are factory functions, not
types — and ``with self._lock:`` is the dominant operation at call sites.
"""

from __future__ import annotations

import os
import sys
import threading
from typing import Any, ContextManager

__all__ = [
    "LockOrderViolation",
    "SanitizedLock",
    "lock_order_edges",
    "make_lock",
    "registered_locks",
    "reset_lock_order_state",
    "sanitizer_enabled",
]

#: Environment toggle for the runtime sanitizer (checked per make_lock call,
#: so tests can flip it with monkeypatch without reimporting).
SANITIZER_ENV = "REPRO_LOCK_SANITIZER"

# Internal guards are *raw* locks on purpose: the sanitizer must never
# instrument its own bookkeeping (instrumented internals would recurse and
# would pollute the order graph with implementation edges).
_REGISTRY_GUARD = threading.Lock()
#: Creation count per lock name — the registry the static lock-order pass
#: is seeded from and tests introspect.
_REGISTRY: dict[str, int] = {}

_ORDER_GUARD = threading.Lock()
#: Observed acquisition-order edges: ``(held name, acquired name) -> site``.
_EDGES: dict[tuple[str, str], str] = {}

_HELD = threading.local()


class LockOrderViolation(RuntimeError):
    """Two locks were observed acquired in both orders (potential deadlock)."""


def sanitizer_enabled() -> bool:
    """Whether ``REPRO_LOCK_SANITIZER=1`` is set in the environment."""
    return os.environ.get(SANITIZER_ENV, "") == "1"


def registered_locks() -> dict[str, int]:
    """Creation counts per lock name, for every ``make_lock`` call so far."""
    with _REGISTRY_GUARD:
        return dict(_REGISTRY)


def lock_order_edges() -> dict[tuple[str, str], str]:
    """The observed ``(held, acquired) -> site`` edges (sanitizer mode)."""
    with _ORDER_GUARD:
        return dict(_EDGES)


def reset_lock_order_state() -> None:
    """Drop all observed edges (test isolation between sanitizer cases)."""
    with _ORDER_GUARD:
        _EDGES.clear()


def _held_stack() -> list["SanitizedLock"]:
    stack = getattr(_HELD, "stack", None)
    if stack is None:
        stack = _HELD.stack = []
    return stack


def _caller_site(depth: int) -> str:
    frame = sys._getframe(depth)
    return f"{os.path.basename(frame.f_code.co_filename)}:{frame.f_lineno}"


class SanitizedLock:
    """A lock wrapper recording per-thread acquisition order.

    Wraps a raw ``threading`` lock and, on every acquisition, records an
    order edge from each lock the acquiring thread already holds to this
    one.  If the inverse of a new edge was ever observed, the acquisition
    raises :class:`LockOrderViolation` *before* touching the raw lock — the
    test run fails at the witness site instead of deadlocking later.
    Re-entering a held reentrant lock records nothing (self-edges are not
    order facts); re-entering a held non-reentrant lock raises immediately
    (the raw lock would deadlock the thread for good).
    """

    __slots__ = ("name", "reentrant", "_raw")

    def __init__(self, name: str, raw: Any, reentrant: bool) -> None:
        self.name = name
        self.reentrant = reentrant
        self._raw = raw

    # -- order bookkeeping ---------------------------------------------
    def _check_order(self, site: str) -> None:
        stack = _held_stack()
        if any(held is self for held in stack):
            if self.reentrant:
                return
            raise LockOrderViolation(
                f"thread re-acquiring non-reentrant lock {self.name!r} at "
                f"{site} (already held by this thread) — this deadlocks"
            )
        if not stack:
            return
        violation: str | None = None
        with _ORDER_GUARD:
            for held in stack:
                if held.name == self.name:
                    continue
                inverse = _EDGES.get((self.name, held.name))
                if inverse is not None:
                    violation = (
                        f"lock-order inversion: acquiring {self.name!r} "
                        f"while holding {held.name!r} at {site}, but the "
                        f"opposite order was observed at {inverse}"
                    )
                    break
                _EDGES.setdefault((held.name, self.name), site)
        if violation is not None:
            raise LockOrderViolation(violation)

    # -- lock protocol --------------------------------------------------
    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._check_order(_caller_site(2))
        acquired = bool(self._raw.acquire(blocking, timeout))
        if acquired:
            _held_stack().append(self)
        return acquired

    def release(self) -> None:
        stack = _held_stack()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is self:
                del stack[i]
                break
        self._raw.release()

    def locked(self) -> bool:
        return bool(self._raw.locked())

    def __enter__(self) -> bool:
        self._check_order(_caller_site(2))
        acquired = bool(self._raw.__enter__())
        _held_stack().append(self)
        return acquired

    def __exit__(self, *exc_info: Any) -> None:
        stack = _held_stack()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is self:
                del stack[i]
                break
        self._raw.__exit__(*exc_info)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "RLock" if self.reentrant else "Lock"
        return f"SanitizedLock({self.name!r}, {kind})"


def make_lock(name: str = "", *, reentrant: bool = False) -> ContextManager[bool]:
    """A named ``threading`` lock; reentrant when the owner re-enters its API.

    ``name`` is the stable node id under which the static ``lock-order``
    pass and the runtime sanitizer file this lock; an empty name falls back
    to the caller's ``file:line`` so anonymous locks still get a stable,
    distinct id.  Under ``REPRO_LOCK_SANITIZER=1`` the returned object is a
    :class:`SanitizedLock`; otherwise it is the raw ``threading`` lock with
    zero overhead.
    """
    if not name:
        name = _caller_site(2)
    with _REGISTRY_GUARD:
        _REGISTRY[name] = _REGISTRY.get(name, 0) + 1
    raw = threading.RLock() if reentrant else threading.Lock()
    if sanitizer_enabled():
        return SanitizedLock(name, raw, reentrant)
    return raw


def _reset_guards_after_fork() -> None:
    # A forked child inherits the *state* of these guards but not the
    # threads that may hold them; fresh locks make the module usable again.
    # The per-thread held stack of the forking thread stays valid (its locks
    # survived the fork); other threads' stacks died with their threads.
    global _REGISTRY_GUARD, _ORDER_GUARD
    _REGISTRY_GUARD = threading.Lock()
    _ORDER_GUARD = threading.Lock()


os.register_at_fork(after_in_child=_reset_guards_after_fork)
