"""Shared lock-construction helper.

``SharedEstimateCache`` and ``PlanService`` used to spell their lock
creation independently (``threading.RLock()`` vs ``threading.Lock()``);
:func:`make_lock` is the one idiom both use now — and the one the
``lock-discipline`` checker (:mod:`repro.analysis.lock_discipline`)
recognises as establishing a lock-owning class, alongside the raw
``threading`` constructors.

Use ``reentrant=True`` when public methods of the class call other public
methods that take the same lock (the shared cache's ``stats`` calling
``hit_rate``); plain mutual exclusion wants the cheaper non-reentrant lock.

The return type is the context-manager protocol rather than a concrete lock
class because ``threading.Lock``/``RLock`` are factory functions, not
types — and ``with self._lock:`` is the only operation the callers use.
"""

from __future__ import annotations

import threading
from typing import ContextManager

__all__ = ["make_lock"]


def make_lock(reentrant: bool = False) -> ContextManager[bool]:
    """A ``threading`` lock; reentrant when the owner re-enters its own API."""
    if reentrant:
        return threading.RLock()
    return threading.Lock()
