"""Deterministic, seedable fault injection for the serving tier (ISSUE 10).

The chaos suite needs failures that are *reproducible*: the same seed must
kill the same worker after the same number of routed connections, fail the
same cache-store transactions and break the same process-pool chunk, run
after run.  This module is the single source of those failures:

* :class:`FaultSpec` — one scheduled fault: a *site* (a named hook threaded
  through the production code), an *action* (``raise`` an :class:`OSError`,
  ``kill`` a worker, ``reset`` a client socket, add ``latency``), and a
  trigger window (skip the first ``after`` matching events, then fire for
  the next ``count``).
* :class:`FaultPlan` — an ordered tuple of specs plus the seed that produced
  it; JSON round-trippable so plans travel through ``REPRO_FAULT_PLAN`` (a
  path or inline JSON) and ``repro serve --fault-plan``.
* :class:`FaultInjector` — the process-global arming state: per-spec match
  counters behind a lock, so every ``fire()`` sequence is deterministic for
  a fixed plan and event order.

Production code calls the module-level helpers, which are no-ops (a single
``None`` check) when no plan is installed — the hooks cost nothing in the
fault-free fast path:

``fire(site, **ctx)``
    Return the specs armed for this event (selector-matched, inside their
    trigger window).  Callers interpret actions that need site-specific
    mechanics (``kill``, ``reset``).
``check(site, **ctx)``
    Raise :class:`FaultError` (an ``OSError``) if a ``raise`` spec fires —
    the one-liner used by I/O sites such as ``cachestore.write``.
``latency(site, **ctx)``
    Sum of injected delays for this event; async callers sleep with
    ``asyncio.sleep``, never ``time.sleep``.

Fork semantics: the plan itself is inherited by forked children (workers
must see latency/IO specs installed before the fork), but match counters
and the guard lock are reset in the child via ``os.register_at_fork`` so
each process counts its own events from zero and no lock is inherited in a
possibly-held state.
"""

from __future__ import annotations

import json
import os
import random
import signal
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Mapping, Sequence

from .locking import make_lock

__all__ = [
    "ACTIONS",
    "FAULT_PLAN_ENV",
    "SITES",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "active_injector",
    "active_plan",
    "check",
    "clear_plan",
    "fire",
    "inject",
    "install_from_env",
    "install_plan",
    "kill_self",
    "latency",
]

#: Environment variable holding a fault plan: a path to a JSON file, or the
#: JSON text itself (detected by a leading ``{``).
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Hook sites threaded through the production code.  Adding a site here is
#: the contract that some caller fires it; specs naming unknown sites are
#: rejected at plan-parse time so typos fail loudly.
SITES = (
    "pool.route",  # router: fires after each connection is shipped to a worker
    "worker.start",  # worker serve loop: fires once at startup (crash-loop drills)
    "server.reply",  # per-connection writer: fires before each reply frame
    "scheduler.dispatch",  # micro-batch scheduler: fires per dispatched batch
    "cachestore.write",  # cache store: fires per commit attempt (incl. retries)
    "parallel.chunk",  # pair pool: fires as each chunk payload is submitted
)

#: What an armed spec does.  ``raise``/``latency`` are generic (handled by
#: :func:`check` / :func:`latency`); ``kill`` and ``reset`` need mechanics
#: only the call site has (a pid to SIGKILL, a transport to abort) and are
#: interpreted by the caller from :func:`fire`'s return value.
ACTIONS = ("raise", "kill", "reset", "latency")


class FaultError(OSError):
    """The injected I/O error.  A subclass of :class:`OSError` so production
    ``except OSError`` recovery paths treat it exactly like the disk/socket
    failures it stands in for, while tests can still assert the failure was
    the injected one."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Trigger window: among the events at ``site`` whose context matches the
    ``worker``/``chunk`` selectors, skip the first ``after`` and fire for
    the next ``count``.  Counters live in the installed
    :class:`FaultInjector`, per process.
    """

    site: str
    action: str = "raise"
    after: int = 0
    count: int = 1
    worker: int | None = None
    chunk: int | None = None
    latency_s: float = 0.0
    message: str = ""

    def __post_init__(self) -> None:
        _require(self.site in SITES, f"unknown fault site {self.site!r}")
        _require(self.action in ACTIONS, f"unknown fault action {self.action!r}")
        _require(
            isinstance(self.after, int) and self.after >= 0,
            "after must be a non-negative int",
        )
        _require(
            isinstance(self.count, int) and self.count >= 1,
            "count must be a positive int",
        )
        for name in ("worker", "chunk"):
            value = getattr(self, name)
            _require(
                value is None or (isinstance(value, int) and value >= 0),
                f"{name} selector must be a non-negative int",
            )
        _require(
            isinstance(self.latency_s, (int, float))
            and self.latency_s >= 0.0
            and self.latency_s == self.latency_s  # not NaN
            and self.latency_s != float("inf"),
            "latency_s must be a finite non-negative number",
        )
        if self.action == "latency":
            _require(self.latency_s > 0.0, "latency action requires latency_s > 0")

    def matches(self, ctx: Mapping[str, Any]) -> bool:
        """Does this spec's selector accept the event context?  A selector
        set on the spec but absent from the context does not match — call
        sites always pass the selectors they support."""
        for name in ("worker", "chunk"):
            wanted = getattr(self, name)
            if wanted is not None and ctx.get(name) != wanted:
                return False
        return True

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"site": self.site, "action": self.action}
        if self.after:
            out["after"] = self.after
        if self.count != 1:
            out["count"] = self.count
        if self.worker is not None:
            out["worker"] = self.worker
        if self.chunk is not None:
            out["chunk"] = self.chunk
        if self.latency_s:
            out["latency_s"] = self.latency_s
        if self.message:
            out["message"] = self.message
        return out

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "FaultSpec":
        if not isinstance(raw, Mapping):
            raise ValueError(f"fault spec must be an object, got {type(raw).__name__}")
        known = {
            "site",
            "action",
            "after",
            "count",
            "worker",
            "chunk",
            "latency_s",
            "message",
        }
        unknown = set(raw) - known
        _require(not unknown, f"unknown fault spec fields: {sorted(unknown)}")
        _require("site" in raw, "fault spec requires a site")
        return cls(**{key: raw[key] for key in known & set(raw)})


@dataclass(frozen=True)
class FaultPlan:
    """An ordered schedule of faults plus the seed that produced it (kept for
    reproducibility bookkeeping; the schedule itself is already explicit)."""

    faults: tuple[FaultSpec, ...] = ()
    seed: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for spec in self.faults:
            _require(isinstance(spec, FaultSpec), "faults must be FaultSpec instances")

    def to_json(self) -> str:
        payload: dict[str, Any] = {"faults": [spec.to_dict() for spec in self.faults]}
        if self.seed is not None:
            payload["seed"] = self.seed
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"fault plan is not valid JSON: {exc}") from exc
        if not isinstance(raw, Mapping):
            raise ValueError("fault plan must be a JSON object")
        faults_raw = raw.get("faults", [])
        if not isinstance(faults_raw, Sequence) or isinstance(faults_raw, (str, bytes)):
            raise ValueError("fault plan 'faults' must be a list")
        seed = raw.get("seed")
        _require(seed is None or isinstance(seed, int), "fault plan seed must be an int")
        return cls(
            faults=tuple(FaultSpec.from_dict(spec) for spec in faults_raw),
            seed=seed,
        )

    @classmethod
    def from_file(cls, path: str | Path) -> "FaultPlan":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    @classmethod
    def random(
        cls,
        seed: int,
        *,
        workers: int = 2,
        events: int = 12,
        max_faults: int = 4,
    ) -> "FaultPlan":
        """A seeded chaos schedule for the serving tier: worker kills,
        mid-reply socket resets, transient cache-store I/O errors and
        dispatch latency, with trigger points spread over roughly ``events``
        request-scale events.  Same seed, same plan — the chaos suite's
        determinism rests on this."""
        _require(workers >= 1, "workers must be >= 1")
        _require(events >= 1, "events must be >= 1")
        _require(max_faults >= 1, "max_faults must be >= 1")
        rng = random.Random(seed)
        faults: list[FaultSpec] = []
        for _ in range(rng.randint(1, max_faults)):
            kind = rng.choice(("kill", "reset", "io", "latency"))
            if kind == "kill":
                faults.append(
                    FaultSpec(
                        site="pool.route",
                        action="kill",
                        worker=rng.randrange(workers),
                        after=rng.randrange(events),
                    )
                )
            elif kind == "reset":
                faults.append(
                    FaultSpec(
                        site="server.reply",
                        action="reset",
                        after=rng.randrange(events),
                        count=rng.randint(1, 2),
                    )
                )
            elif kind == "io":
                faults.append(
                    FaultSpec(
                        site="cachestore.write",
                        action="raise",
                        after=rng.randrange(3),
                        count=rng.randint(1, 2),
                    )
                )
            else:
                faults.append(
                    FaultSpec(
                        site="scheduler.dispatch",
                        action="latency",
                        after=rng.randrange(max(1, events // 2)),
                        count=rng.randint(1, 3),
                        latency_s=round(rng.uniform(0.001, 0.01), 6),
                    )
                )
        return cls(faults=tuple(faults), seed=seed)


class FaultInjector:
    """Arming state for one installed plan: a per-spec counter of matched
    events, advanced under a lock so concurrent sites (router thread, worker
    event loops, flusher threads) see one deterministic global order per
    site.  ``fired`` tallies armed events per site for assertions and the
    pool/bench counters."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = make_lock("fault-injector")
        self._matched = [0] * len(plan.faults)
        self.fired: dict[str, int] = {}

    def fire(self, site: str, **ctx: Any) -> list[FaultSpec]:
        armed: list[FaultSpec] = []
        with self._lock:
            for index, spec in enumerate(self.plan.faults):
                if spec.site != site or not spec.matches(ctx):
                    continue
                seen = self._matched[index]
                self._matched[index] = seen + 1
                if spec.after <= seen < spec.after + spec.count:
                    armed.append(spec)
            if armed:
                self.fired[site] = self.fired.get(site, 0) + len(armed)
        return armed

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "specs": len(self.plan.faults),
                "matched": list(self._matched),
                "fired": dict(self.fired),
            }

    def reset(self) -> None:
        with self._lock:
            self._matched = [0] * len(self.plan.faults)
            self.fired = {}

    def _reinit_after_fork(self) -> None:
        # Fresh lock (the parent's may have been held at fork time) and
        # fresh counters: each process counts its own events from zero.
        self._lock = make_lock("fault-injector")
        self._matched = [0] * len(self.plan.faults)
        self.fired = {}


# ---------------------------------------------------------------------------
# Process-global installation.
# ---------------------------------------------------------------------------
_INJECTOR: FaultInjector | None = None
_INSTALL_GUARD = make_lock("fault-install")


def install_plan(plan: FaultPlan) -> FaultInjector:
    """Install ``plan`` process-wide, replacing any previous plan."""
    global _INJECTOR
    injector = FaultInjector(plan)
    with _INSTALL_GUARD:
        _INJECTOR = injector
    return injector


def clear_plan() -> None:
    global _INJECTOR
    with _INSTALL_GUARD:
        _INJECTOR = None


def active_plan() -> FaultPlan | None:
    injector = _INJECTOR
    return None if injector is None else injector.plan


def active_injector() -> FaultInjector | None:
    return _INJECTOR


@contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultInjector]:
    """Install ``plan`` for the duration of a ``with`` block (test scaffolding)."""
    global _INJECTOR
    injector = install_plan(plan)
    try:
        yield injector
    finally:
        with _INSTALL_GUARD:
            if _INJECTOR is injector:
                _INJECTOR = None


def install_from_env(environ: Mapping[str, str] | None = None) -> FaultInjector | None:
    """Install the plan named by :data:`FAULT_PLAN_ENV` (a path, or inline
    JSON starting with ``{``).  Returns ``None`` when the variable is unset;
    raises ``ValueError``/``OSError`` for a present-but-broken plan — a
    requested drill that cannot run should fail loudly, not silently serve
    without faults."""
    env = os.environ if environ is None else environ
    raw = env.get(FAULT_PLAN_ENV, "").strip()
    if not raw:
        return None
    if raw.startswith("{"):
        plan = FaultPlan.from_json(raw)
    else:
        plan = FaultPlan.from_file(raw)
    return install_plan(plan)


# ---------------------------------------------------------------------------
# Hook helpers — the only calls production code makes.
# ---------------------------------------------------------------------------
def fire(site: str, **ctx: Any) -> list[FaultSpec]:
    """Armed specs for this event; ``[]`` (no lock, no allocation beyond the
    check) when no plan is installed."""
    injector = _INJECTOR
    if injector is None:
        return []
    return injector.fire(site, **ctx)


def check(site: str, **ctx: Any) -> None:
    """Raise :class:`FaultError` if a ``raise`` spec fires at this event."""
    for spec in fire(site, **ctx):
        if spec.action == "raise":
            raise FaultError(spec.message or f"injected fault at {site}")


def latency(site: str, **ctx: Any) -> float:
    """Total injected delay for this event (0.0 when nothing fires)."""
    total = 0.0
    for spec in fire(site, **ctx):
        if spec.action == "latency":
            total += spec.latency_s
    return total


def kill_self(payload: object = None) -> None:  # pragma: no cover - dies by SIGKILL
    """Process-pool payload that SIGKILLs its own worker — the mechanism
    behind ``parallel.chunk`` ``kill`` specs.  Module-level so it pickles
    for :class:`~concurrent.futures.ProcessPoolExecutor` submission."""
    os.kill(os.getpid(), signal.SIGKILL)


def _reset_after_fork() -> None:
    global _INSTALL_GUARD
    _INSTALL_GUARD = make_lock("fault-install")
    injector = _INJECTOR
    if injector is not None:
        injector._reinit_after_fork()


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX in CI
    os.register_at_fork(after_in_child=_reset_after_fork)


# Activate a plan requested via the environment as soon as the package is
# imported, so `REPRO_FAULT_PLAN=... repro serve` drills every process —
# router and forked workers alike — without CLI plumbing in each entry point.
install_from_env()
