"""Figure 10: shared vs. separate hash tables for the DD build phase.

With a shared hash table the merge of per-device partial tables disappears
and the shared cache is reused across devices, which the paper measures as a
16% (SHJ-DD) and 26% (PHJ-DD) build-phase improvement together with a 2-4%
reduction in cache misses.
"""

from __future__ import annotations

from ..core.joins import run_join
from ..data.workload import JoinWorkload
from ..hardware.machine import Machine, coupled_machine
from .common import DEFAULT_TUPLES, ExperimentResult, improvement


def run_fig10(
    build_tuples: int = DEFAULT_TUPLES,
    probe_tuples: int | None = None,
    machine: Machine | None = None,
    seed: int = 42,
) -> ExperimentResult:
    """Build-phase time of SHJ-DD / PHJ-DD with separate and shared tables."""
    probe_tuples = probe_tuples if probe_tuples is not None else build_tuples
    workload = JoinWorkload.uniform(build_tuples, probe_tuples, seed=seed)

    result = ExperimentResult(
        experiment="Figure 10",
        description="Build phase of DD with separate vs shared hash tables",
        parameters={"build_tuples": build_tuples},
    )

    for algorithm in ("SHJ", "PHJ"):
        timings = {}
        for shared in (False, True):
            machine_instance = machine or coupled_machine()
            timing = run_join(
                algorithm,
                "DD",
                workload.build,
                workload.probe,
                machine=machine_instance,
                shared_hash_table=shared,
            )
            # The build phase bar of Figure 10 includes the merge that only the
            # separate-table configuration pays.
            build_s = timing.phase_seconds("build") + timing.merge_s
            timings[shared] = (build_s, timing.cache_stats)
            result.add_row(
                variant=f"{algorithm}-DD",
                hash_table="shared" if shared else "separate",
                build_s=build_s,
                merge_s=timing.merge_s,
                cache_misses=timing.cache_stats.misses,
                cache_miss_ratio=timing.cache_stats.miss_ratio,
            )
        gain = improvement(timings[False][0], timings[True][0])
        result.add_note(
            f"{algorithm}-DD: shared table improves the build phase by {gain:.1f}% "
            f"(paper: {'16' if algorithm == 'SHJ' else '26'}%)."
        )
    return result
