"""Experiment runners: one per table / figure of the paper's evaluation."""

from .common import DEFAULT_TUPLES, PAPER_TUPLES, ExperimentResult, improvement, summarise
from .fig03_breakdown import run_fig03
from .fig04_unit_costs import calibrate_phj_steps, run_fig04
from .fig05_06_ratios import run_fig05, run_fig06
from .fig07_08_model import run_fig07, run_fig08
from .fig09_montecarlo import run_fig09
from .fig10_sharing import run_fig10
from .fig11_12_allocator import DEFAULT_BLOCK_SIZES, PAPER_BLOCK_SIZES, run_fig11, run_fig12
from .fig13_15_endtoend import (
    DEFAULT_SIZE_SWEEP,
    ENDTOEND_SCHEMES,
    run_fig13,
    run_fig14,
    run_fig15,
)
from .fig16_18_basicunit import run_fig16, run_fig17, run_fig18
from .fig19_external import run_fig19, small_buffer_machine
from .fig20_latch import latch_benchmark_time, run_fig20
from .headline import run_grouping_study, run_headline
from .table1_hardware import run_table1
from .table3_granularity import run_table3

#: All experiment runners keyed by their paper artefact.
ALL_EXPERIMENTS = {
    "table1": run_table1,
    "fig03": run_fig03,
    "fig04": run_fig04,
    "fig05": run_fig05,
    "fig06": run_fig06,
    "fig07": run_fig07,
    "fig08": run_fig08,
    "fig09": run_fig09,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "fig12": run_fig12,
    "table3": run_table3,
    "fig13": run_fig13,
    "fig14": run_fig14,
    "fig15": run_fig15,
    "fig16": run_fig16,
    "fig17": run_fig17,
    "fig18": run_fig18,
    "fig19": run_fig19,
    "fig20": run_fig20,
    "headline": run_headline,
    "grouping": run_grouping_study,
}

__all__ = [
    "ALL_EXPERIMENTS",
    "DEFAULT_BLOCK_SIZES",
    "DEFAULT_SIZE_SWEEP",
    "DEFAULT_TUPLES",
    "ENDTOEND_SCHEMES",
    "ExperimentResult",
    "PAPER_BLOCK_SIZES",
    "PAPER_TUPLES",
    "calibrate_phj_steps",
    "improvement",
    "latch_benchmark_time",
    "run_fig03",
    "run_fig04",
    "run_fig05",
    "run_fig06",
    "run_fig07",
    "run_fig08",
    "run_fig09",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_fig13",
    "run_fig14",
    "run_fig15",
    "run_fig16",
    "run_fig17",
    "run_fig18",
    "run_fig19",
    "run_fig20",
    "run_grouping_study",
    "run_headline",
    "run_table1",
    "run_table3",
    "small_buffer_machine",
    "summarise",
]
