"""Table 3: fine-grained vs. coarse-grained step definitions in PL.

PHJ-PL uses per-tuple steps with cache-reusing shared tables; PHJ-PL'
(the coarse-grained definition of Blanas et al. [4]) treats one partition
pair per work item with a private hash table per pair.  The paper measures
PHJ-PL' to be slower with roughly twice the L2 cache misses and a higher
miss ratio.
"""

from __future__ import annotations

from ..core.executor import CoProcessingExecutor
from ..core.joins import run_join
from ..core.schemes import plan_ratios
from ..costmodel.calibration import CalibrationTable
from ..data.workload import JoinWorkload
from ..hardware.machine import Machine, coupled_machine
from ..hashjoin.coarse import CoarseGrainedPHJ
from .common import DEFAULT_TUPLES, ExperimentResult


def run_table3(
    build_tuples: int = DEFAULT_TUPLES,
    probe_tuples: int | None = None,
    machine: Machine | None = None,
    seed: int = 42,
) -> ExperimentResult:
    """Compare PHJ-PL against the coarse-grained PHJ-PL'."""
    probe_tuples = probe_tuples if probe_tuples is not None else build_tuples
    workload = JoinWorkload.uniform(build_tuples, probe_tuples, seed=seed)

    result = ExperimentResult(
        experiment="Table 3",
        description="Fine-grained (PHJ-PL) vs coarse-grained (PHJ-PL') step definitions",
        parameters={"build_tuples": build_tuples},
    )

    # Fine-grained PHJ-PL.
    fine_machine = machine or coupled_machine()
    fine = run_join("PHJ", "PL", workload.build, workload.probe, machine=fine_machine)
    result.add_row(
        variant="PHJ-PL",
        elapsed_s=fine.total_s,
        cache_misses=fine.cache_stats.misses,
        cache_miss_ratio=fine.cache_stats.miss_ratio,
    )

    # Coarse-grained PHJ-PL': partition pairs as work items, private tables.
    coarse_machine = coupled_machine()
    coarse_run = CoarseGrainedPHJ().run(workload.build, workload.probe)
    executor = CoProcessingExecutor(coarse_machine)
    total_s = 0.0
    for series in coarse_run.step_series:
        steps = CalibrationTable.from_series([series], coarse_machine).step_costs()
        plan = plan_ratios("PL", series.phase, steps)
        total_s += executor.execute_series(series, plan.ratios, pipelined=True).elapsed_s
    result.add_row(
        variant="PHJ-PL'",
        elapsed_s=total_s,
        cache_misses=coarse_machine.cache.stats.misses,
        cache_miss_ratio=coarse_machine.cache.stats.miss_ratio,
    )

    slowdown = total_s / fine.total_s if fine.total_s else 0.0
    result.add_note(
        f"PHJ-PL' is {slowdown:.2f}x slower than PHJ-PL "
        "(paper: 2.2s vs 1.6s, with 15M vs 7M L2 misses and 23% vs 10% miss ratio)."
    )
    assert coarse_run.result.match_count == fine.result.match_count
    return result
