"""Figures 13-15: end-to-end comparisons.

* Figure 13: elapsed time of CPU-only / DD / OL / PL for SHJ and PHJ while
  the build relation grows (uniform data); a visible jump occurs once the
  hash table exceeds the shared 4 MB cache.
* Figure 14: the same sweep on the high-skew data set (25% of tuples share
  one key); skew does not break the co-processing advantage.
* Figure 15: PHJ time breakdown at join selectivities 12.5%, 50% and 100%
  for DD, OL and PL; only the probe (and for PL also the build) phases react,
  and only mildly.
"""

from __future__ import annotations

from ..core.joins import run_join
from ..costmodel.batch import EstimateCache
from ..data.generator import SKEW_PRESETS
from ..data.workload import JoinWorkload, selectivity_sweep
from ..hardware.machine import Machine, coupled_machine
from .common import DEFAULT_TUPLES, ExperimentResult

#: Scaled-down build-size sweep (the paper sweeps 64K .. 16M).
DEFAULT_SIZE_SWEEP: tuple[int, ...] = (16_000, 32_000, 64_000, 128_000, 256_000)

#: Schemes compared in Figures 13/14.
ENDTOEND_SCHEMES: tuple[str, ...] = ("CPU-only", "DD", "OL", "PL")


def _size_sweep(
    experiment: str,
    skew_preset: str,
    build_sizes: tuple[int, ...],
    probe_tuples: int,
    machine: Machine | None,
    seed: int,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment=experiment,
        description=(
            f"Elapsed time vs build-table size ({skew_preset} data, "
            f"probe fixed at {probe_tuples} tuples)"
        ),
        parameters={
            "build_sizes": list(build_sizes),
            "probe_tuples": probe_tuples,
            "skew": SKEW_PRESETS[skew_preset],
        },
    )
    cache = EstimateCache()  # schemes at the same size share their evaluations
    for algorithm in ("SHJ", "PHJ"):
        for build_tuples in build_sizes:
            workload = JoinWorkload.skewed(skew_preset, build_tuples, probe_tuples, seed=seed)
            for scheme in ENDTOEND_SCHEMES:
                timing = run_join(
                    algorithm,
                    scheme,
                    workload.build,
                    workload.probe,
                    machine=machine or coupled_machine(),
                    cache=cache,
                )
                result.add_row(
                    algorithm=algorithm,
                    scheme=scheme,
                    build_tuples=build_tuples,
                    elapsed_s=timing.total_s,
                    matches=timing.result.match_count,
                )
    result.add_note(
        "Paper: DD and PL beat single-device execution across sizes; elapsed time "
        "jumps once the build table no longer fits the 4 MB cache."
    )
    return result


def run_fig13(
    build_sizes: tuple[int, ...] = DEFAULT_SIZE_SWEEP,
    probe_tuples: int = DEFAULT_TUPLES,
    machine: Machine | None = None,
    seed: int = 42,
) -> ExperimentResult:
    """Figure 13: uniform data."""
    return _size_sweep("Figure 13", "uniform", build_sizes, probe_tuples, machine, seed)


def run_fig14(
    build_sizes: tuple[int, ...] = DEFAULT_SIZE_SWEEP,
    probe_tuples: int = DEFAULT_TUPLES,
    machine: Machine | None = None,
    seed: int = 42,
) -> ExperimentResult:
    """Figure 14: high-skew data (25% duplicates of one key)."""
    return _size_sweep("Figure 14", "high-skew", build_sizes, probe_tuples, machine, seed)


def run_fig15(
    build_tuples: int = DEFAULT_TUPLES,
    probe_tuples: int | None = None,
    selectivities: tuple[float, ...] = (0.125, 0.5, 1.0),
    machine: Machine | None = None,
    seed: int = 42,
) -> ExperimentResult:
    """Figure 15: PHJ time breakdown with the join selectivity varied."""
    probe_tuples = probe_tuples if probe_tuples is not None else build_tuples
    result = ExperimentResult(
        experiment="Figure 15",
        description="PHJ phase breakdown with join selectivity varied (DD/OL/PL)",
        parameters={"build_tuples": build_tuples, "selectivities": list(selectivities)},
    )
    workloads = selectivity_sweep(build_tuples, probe_tuples, tuple(selectivities), seed=seed)
    cache = EstimateCache()
    for workload, selectivity in zip(workloads, selectivities):
        for scheme in ("DD", "OL", "PL"):
            timing = run_join(
                "PHJ",
                scheme,
                workload.build,
                workload.probe,
                machine=machine or coupled_machine(),
                cache=cache,
            )
            result.add_row(
                scheme=scheme,
                selectivity_pct=selectivity * 100.0,
                partition_s=timing.phase_seconds("partition"),
                build_s=timing.phase_seconds("build"),
                probe_s=timing.phase_seconds("probe"),
                total_s=timing.total_s,
                matches=timing.result.match_count,
            )
    result.add_note(
        "Paper: higher selectivity lengthens the probe slightly (e.g. DD 0.47 -> 0.58 s); "
        "the overall impact is marginal because only rid pairs are emitted."
    )
    return result
