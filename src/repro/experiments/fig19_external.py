"""Figure 19: joins on data sets larger than the zero copy buffer (Appendix).

When the relations no longer fit the 512 MB zero copy buffer, the join stages
chunks through the buffer: partition the inputs chunk by chunk, copy the
intermediate partitions out, then join each partition pair in-buffer with
SHJ-PL or PHJ-PL.  The paper reports partition time growing roughly linearly
with the input, data-copy time at about 4% of the total, and PHJ-PL up to 9%
faster than SHJ-PL on each pair.

To keep the scaled-down runs meaningful the experiment shrinks the zero copy
buffer in proportion to the scaled relation sizes.
"""

from __future__ import annotations

from dataclasses import replace

from ..core.joins import external_pair_joiner
from ..data.workload import JoinWorkload
from ..hardware.machine import Machine
from ..hardware.specs import COUPLED_A8_3870K, MB
from .common import ExperimentResult

#: Scaled-down sweep: number of tuples per relation.
DEFAULT_EXTERNAL_SIZES: tuple[int, ...] = (50_000, 100_000, 200_000, 400_000)

#: Zero copy buffer used for the scaled runs (paper: 512 MB for 16M+ tuples).
DEFAULT_BUFFER_BYTES = 2 * MB


def small_buffer_machine(buffer_bytes: int = DEFAULT_BUFFER_BYTES) -> Machine:
    """A coupled machine whose zero copy buffer is shrunk for scaled runs."""
    spec = replace(COUPLED_A8_3870K, zero_copy_buffer_bytes=buffer_bytes)
    return Machine(spec)


def run_fig19(
    sizes: tuple[int, ...] = DEFAULT_EXTERNAL_SIZES,
    buffer_bytes: int = DEFAULT_BUFFER_BYTES,
    chunk_tuples: int = 100_000,
    seed: int = 42,
) -> ExperimentResult:
    """Out-of-buffer joins with SHJ-PL and PHJ-PL on each partition pair."""
    from ..hashjoin.external import ExternalHashJoin

    result = ExperimentResult(
        experiment="Figure 19",
        description="Joins larger than the zero copy buffer (|R| = |S| varied)",
        parameters={
            "sizes": list(sizes),
            "buffer_bytes": buffer_bytes,
            "chunk_tuples": chunk_tuples,
        },
    )

    for n_tuples in sizes:
        workload = JoinWorkload.uniform(n_tuples, n_tuples, seed=seed)
        for pair_algorithm in ("SHJ", "PHJ"):
            machine = small_buffer_machine(buffer_bytes)
            joiner = external_pair_joiner(pair_algorithm, "PL", machine=machine)
            external = ExternalHashJoin(joiner, machine=machine, chunk_tuples=chunk_tuples)
            run = external.run(workload.build, workload.probe, seed=seed)
            breakdown = run.breakdown
            result.add_row(
                pair_join=f"{pair_algorithm}-PL",
                tuples_per_relation=n_tuples,
                fits_in_buffer=run.fits_in_buffer,
                super_partitions=run.n_super_partitions,
                partition_s=breakdown.partition_s,
                join_s=breakdown.join_s,
                data_copy_s=breakdown.data_copy_s,
                total_s=breakdown.total_s,
                copy_pct=100.0 * breakdown.data_copy_s / breakdown.total_s
                if breakdown.total_s else 0.0,
                matches=run.result.match_count,
            )
    result.add_note(
        "Paper: partition and join time grow nearly linearly with the input; the "
        "data copy between system memory and the buffer is ~4% of the total."
    )
    return result
