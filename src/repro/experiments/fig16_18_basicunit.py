"""Figures 16-18: the BasicUnit coarse-grained scheduling baseline (Appendix).

Figure 16 compares BasicUnit (dynamic chunk dispatch, all steps of a phase on
one device per chunk) against the fine-grained DD and PL variants; the paper
measures SHJ-PL / PHJ-PL to be 31% / 25% faster than their BasicUnit
counterparts.  Figures 17 and 18 report the per-phase CPU/GPU ratios that the
BasicUnit scheduling converges to, which differ markedly from the per-step
optima of Figures 5 and 6.
"""

from __future__ import annotations

from ..core.basicunit import BasicUnitScheduler
from ..core.joins import run_join
from ..data.workload import JoinWorkload
from ..hardware.machine import Machine, coupled_machine
from ..hashjoin.partition import PartitionedHashJoin
from ..hashjoin.simple import HashJoinConfig, SimpleHashJoin
from .common import DEFAULT_TUPLES, ExperimentResult, improvement


def _basicunit_run(algorithm: str, workload: JoinWorkload, machine: Machine):
    # The paper tunes the chunk size per device at its 16M-tuple scale; keep
    # the chunks proportional to the (possibly scaled-down) workload so the
    # dynamic dispatch has enough granularity to balance the devices.
    n = max(workload.build_tuples, workload.probe_tuples)
    scheduler = BasicUnitScheduler(
        machine=machine,
        cpu_chunk_tuples=max(n // 64, 500),
        gpu_chunk_tuples=max(n // 16, 2_000),
    )
    if algorithm == "SHJ":
        run = SimpleHashJoin(HashJoinConfig()).run(workload.build, workload.probe)
        series = [run.build.series, run.probe.series]
    else:
        run = PartitionedHashJoin(config=HashJoinConfig()).run(workload.build, workload.probe)
        series = [*run.partition_phase.series_per_pass, run.build_series, run.probe_series]
    return scheduler.schedule(series)


def run_fig16(
    build_tuples: int = DEFAULT_TUPLES,
    probe_tuples: int | None = None,
    machine: Machine | None = None,
    seed: int = 42,
) -> ExperimentResult:
    """BasicUnit vs DD vs PL for SHJ and PHJ."""
    probe_tuples = probe_tuples if probe_tuples is not None else build_tuples
    workload = JoinWorkload.uniform(build_tuples, probe_tuples, seed=seed)

    result = ExperimentResult(
        experiment="Figure 16",
        description="BasicUnit coarse-grained scheduling vs fine-grained co-processing",
        parameters={"build_tuples": build_tuples},
    )

    for algorithm in ("SHJ", "PHJ"):
        basic = _basicunit_run(algorithm, workload, machine or coupled_machine())
        result.add_row(variant=f"BasicUnit ({algorithm})", elapsed_s=basic.total_s)
        timings = {}
        for scheme in ("DD", "PL"):
            timing = run_join(
                algorithm, scheme, workload.build, workload.probe,
                machine=machine or coupled_machine(),
            )
            timings[scheme] = timing.total_s
            result.add_row(variant=f"{algorithm}-{scheme}", elapsed_s=timing.total_s)
        result.add_note(
            f"{algorithm}: PL is {improvement(basic.total_s, timings['PL']):.1f}% faster than "
            f"BasicUnit (paper: {'31' if algorithm == 'SHJ' else '25'}%)."
        )
    return result


def _ratio_result(
    experiment: str, algorithm: str, build_tuples: int, probe_tuples: int | None,
    machine: Machine | None, seed: int,
) -> ExperimentResult:
    probe_tuples = probe_tuples if probe_tuples is not None else build_tuples
    workload = JoinWorkload.uniform(build_tuples, probe_tuples, seed=seed)
    basic = _basicunit_run(algorithm, workload, machine or coupled_machine())
    result = ExperimentResult(
        experiment=experiment,
        description=f"Per-phase workload ratios of {algorithm} under BasicUnit scheduling",
        parameters={"build_tuples": build_tuples},
    )
    for phase, ratio in basic.ratios_by_phase().items():
        result.add_row(
            phase=phase,
            cpu_ratio_pct=round(ratio * 100.0, 1),
            gpu_ratio_pct=round((1.0 - ratio) * 100.0, 1),
        )
    result.add_note(
        "The same ratio applies to every step of a phase, unlike the per-step optima "
        "of Figures 5/6 — the source of BasicUnit's inefficiency."
    )
    return result


def run_fig17(
    build_tuples: int = DEFAULT_TUPLES,
    probe_tuples: int | None = None,
    machine: Machine | None = None,
    seed: int = 42,
) -> ExperimentResult:
    """Figure 17: BasicUnit ratios for SHJ."""
    return _ratio_result("Figure 17", "SHJ", build_tuples, probe_tuples, machine, seed)


def run_fig18(
    build_tuples: int = DEFAULT_TUPLES,
    probe_tuples: int | None = None,
    machine: Machine | None = None,
    seed: int = 42,
) -> ExperimentResult:
    """Figure 18: BasicUnit ratios for PHJ."""
    return _ratio_result("Figure 18", "PHJ", build_tuples, probe_tuples, machine, seed)
