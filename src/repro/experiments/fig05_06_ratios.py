"""Figures 5 and 6: optimal per-step workload ratios for SHJ-PL and PHJ-PL.

The cost model picks a different CPU ratio for every step: hash-computation
steps go (almost) entirely to the GPU while several memory-bound steps get
a large CPU share, which is exactly why fine-grained co-processing beats the
phase-level DD split.  The grey areas of the paper's figures — the
intermediate results implied by consecutive ratio differences — are reported
as a byte volume per step transition.
"""

from __future__ import annotations

from ..core.joins import run_join
from ..data.workload import JoinWorkload
from ..hardware.machine import Machine, coupled_machine
from .common import DEFAULT_TUPLES, ExperimentResult


def _ratio_rows(result: ExperimentResult, variant_timing, variant: str) -> None:
    for plan, phase in zip(variant_timing.plans, variant_timing.phases):
        previous = None
        for step, ratio in zip(phase.steps, plan.ratios):
            change = 0.0 if previous is None else abs(ratio - previous)
            result.add_row(
                variant=variant,
                phase=plan.phase,
                step=step.name,
                cpu_ratio=round(ratio, 4),
                gpu_ratio=round(1.0 - ratio, 4),
                ratio_change_vs_prev=round(change, 4),
                intermediate_bytes=step.exchanged_bytes,
            )
            previous = ratio


def run_fig05(
    build_tuples: int = DEFAULT_TUPLES,
    probe_tuples: int | None = None,
    machine: Machine | None = None,
    seed: int = 42,
) -> ExperimentResult:
    """Optimal per-step ratios of SHJ-PL on the coupled architecture."""
    probe_tuples = probe_tuples if probe_tuples is not None else build_tuples
    machine = machine or coupled_machine()
    workload = JoinWorkload.uniform(build_tuples, probe_tuples, seed=seed)
    timing = run_join("SHJ", "PL", workload.build, workload.probe, machine=machine)
    result = ExperimentResult(
        experiment="Figure 5",
        description="Optimal workload ratios of SHJ-PL steps (coupled architecture)",
        parameters={"build_tuples": build_tuples},
    )
    _ratio_rows(result, timing, "SHJ-PL")
    result.add_note(
        "Paper: ratios vary widely across steps; the GPU takes all of b1/p1 while "
        "several later steps get a large CPU share."
    )
    return result


def run_fig06(
    build_tuples: int = DEFAULT_TUPLES,
    probe_tuples: int | None = None,
    machine: Machine | None = None,
    seed: int = 42,
) -> ExperimentResult:
    """Optimal per-step ratios of PHJ-PL on the coupled architecture."""
    probe_tuples = probe_tuples if probe_tuples is not None else build_tuples
    machine = machine or coupled_machine()
    workload = JoinWorkload.uniform(build_tuples, probe_tuples, seed=seed)
    timing = run_join("PHJ", "PL", workload.build, workload.probe, machine=machine)
    result = ExperimentResult(
        experiment="Figure 6",
        description="Optimal workload ratios of PHJ-PL steps (coupled architecture)",
        parameters={"build_tuples": build_tuples},
    )
    _ratio_rows(result, timing, "PHJ-PL")
    result.add_note(
        "Hash-computation steps (n1/b1/p1) are assigned (almost) entirely to the GPU."
    )
    return result
