"""Figure 4: per-step unit costs (ns/tuple) on the CPU and the GPU for PHJ.

The paper measures each step of PHJ with the CPU-only and the GPU-only
algorithm and reports the average processing time per tuple.  The key shape:
hash-computation steps (n1, b1, p1) are accelerated by more than 15x on the
GPU, while the pointer-chasing / divergent steps (b3, p3) perform about the
same on both devices.
"""

from __future__ import annotations

from ..costmodel.calibration import CalibrationTable
from ..data.workload import JoinWorkload
from ..hardware.machine import Machine, coupled_machine
from ..hashjoin.partition import PartitionedHashJoin
from ..hashjoin.simple import HashJoinConfig
from .common import DEFAULT_TUPLES, ExperimentResult


def calibrate_phj_steps(
    build_tuples: int = DEFAULT_TUPLES,
    probe_tuples: int | None = None,
    machine: Machine | None = None,
    seed: int = 42,
) -> CalibrationTable:
    """Execute PHJ once and calibrate every step's per-tuple cost."""
    probe_tuples = probe_tuples if probe_tuples is not None else build_tuples
    machine = machine or coupled_machine()
    workload = JoinWorkload.uniform(build_tuples, probe_tuples, seed=seed)
    run = PartitionedHashJoin(config=HashJoinConfig()).run(workload.build, workload.probe)
    series = [*run.partition_phase.series_per_pass, run.build_series, run.probe_series]
    return CalibrationTable.from_series(series, machine)


def run_fig04(
    build_tuples: int = DEFAULT_TUPLES,
    probe_tuples: int | None = None,
    machine: Machine | None = None,
    seed: int = 42,
) -> ExperimentResult:
    """Regenerate the Figure 4 unit-cost table."""
    table = calibrate_phj_steps(build_tuples, probe_tuples, machine=machine, seed=seed)
    result = ExperimentResult(
        experiment="Figure 4",
        description="Unit costs per step on the CPU and the GPU (PHJ, ns/tuple)",
        parameters={"build_tuples": build_tuples},
    )
    for row in table.unit_cost_rows():
        result.add_row(**row)

    hash_steps = [r for r in result.rows if r["step"] in ("n1", "b1", "p1")]
    pointer_steps = [r for r in result.rows if r["step"] in ("b3", "p3")]
    if hash_steps:
        min_speedup = min(float(r["gpu_speedup"]) for r in hash_steps)
        result.add_note(
            f"Hash-computation steps (n1/b1/p1) GPU speedup >= {min_speedup:.1f}x "
            "(paper: more than 15x)."
        )
    if pointer_steps:
        ratios = [float(r["gpu_speedup"]) for r in pointer_steps]
        result.add_note(
            "Pointer-chasing steps (b3/p3) CPU and GPU are close: "
            f"GPU/CPU speedups {', '.join(f'{r:.2f}x' for r in ratios)} (paper: very close)."
        )
    return result
