"""Figures 11 and 12: the software memory allocator.

Figure 11 sweeps the block size of the optimised allocator for PHJ-DD/OL/PL
and reports (a) the elapsed time and (b) the lock overhead, estimated — as in
the paper — as the difference between the measured time and the cost model's
estimate (the model does not include latch contention).  Performance improves
until about 2 KB blocks and is stable beyond.

Figure 12 compares the basic allocator (one global atomic per request)
against the optimised block allocator for all SHJ and PHJ variants; the paper
reports up to 36% / 39% improvement.
"""

from __future__ import annotations

from ..core.joins import run_join
from ..costmodel.batch import EstimateCache
from ..data.workload import JoinWorkload
from ..hardware.machine import Machine, coupled_machine
from .common import DEFAULT_TUPLES, ExperimentResult, improvement

#: Allocation block sizes swept in Figure 11 (bytes).
PAPER_BLOCK_SIZES: tuple[int, ...] = (
    8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768
)

#: A reduced sweep for quick benchmark runs.
DEFAULT_BLOCK_SIZES: tuple[int, ...] = (8, 32, 128, 512, 2048, 8192, 32768)


def run_fig11(
    build_tuples: int = DEFAULT_TUPLES,
    probe_tuples: int | None = None,
    block_sizes: tuple[int, ...] = DEFAULT_BLOCK_SIZES,
    schemes: tuple[str, ...] = ("DD", "OL", "PL"),
    machine: Machine | None = None,
    seed: int = 42,
) -> ExperimentResult:
    """PHJ elapsed time and lock overhead with the allocation block size varied."""
    probe_tuples = probe_tuples if probe_tuples is not None else build_tuples
    workload = JoinWorkload.uniform(build_tuples, probe_tuples, seed=seed)

    result = ExperimentResult(
        experiment="Figure 11",
        description="PHJ elapsed time and lock overhead vs allocation block size",
        parameters={"build_tuples": build_tuples, "block_sizes": list(block_sizes)},
    )

    cache = EstimateCache()
    for scheme in schemes:
        best = None
        for block in block_sizes:
            timing = run_join(
                "PHJ",
                scheme,
                workload.build,
                workload.probe,
                machine=machine or coupled_machine(),
                cache=cache,
                join_config=_allocator_config(block),
            )
            lock_overhead = max(timing.total_s - timing.estimated_s, 0.0)
            result.add_row(
                variant=f"PHJ-{scheme}",
                block_bytes=block,
                elapsed_s=timing.total_s,
                estimated_s=timing.estimated_s,
                lock_overhead_s=lock_overhead,
            )
            if best is None or timing.total_s < best[1]:
                best = (block, timing.total_s)
        if best is not None:
            result.add_note(f"PHJ-{scheme}: best elapsed time at block size {best[0]} bytes.")
    result.add_note(
        "Paper: performance improves with larger blocks and stabilises beyond 2 KB; "
        "the lock overhead (measured minus estimated) shrinks accordingly."
    )
    return result


def run_fig12(
    build_tuples: int = DEFAULT_TUPLES,
    probe_tuples: int | None = None,
    machine: Machine | None = None,
    schemes: tuple[str, ...] = ("DD", "OL", "PL"),
    block_bytes: int = 2048,
    seed: int = 42,
) -> ExperimentResult:
    """Basic vs optimised memory allocator for the SHJ and PHJ variants."""
    probe_tuples = probe_tuples if probe_tuples is not None else build_tuples
    workload = JoinWorkload.uniform(build_tuples, probe_tuples, seed=seed)

    result = ExperimentResult(
        experiment="Figure 12",
        description="Hash join elapsed time with the basic vs the optimised allocator",
        parameters={"build_tuples": build_tuples, "block_bytes": block_bytes},
    )

    cache = EstimateCache()
    for algorithm in ("SHJ", "PHJ"):
        for scheme in schemes:
            timings = {}
            for kind in ("basic", "block"):
                timing = run_join(
                    algorithm,
                    scheme,
                    workload.build,
                    workload.probe,
                    machine=machine or coupled_machine(),
                    cache=cache,
                    join_config=_allocator_config(block_bytes, kind=kind),
                )
                timings[kind] = timing.total_s
                result.add_row(
                    variant=f"{algorithm}-{scheme}",
                    allocator="Basic" if kind == "basic" else "Ours",
                    elapsed_s=timing.total_s,
                )
            result.add_note(
                f"{algorithm}-{scheme}: optimised allocator improves by "
                f"{improvement(timings['basic'], timings['block']):.1f}% "
                "(paper: up to 36% on SHJ and 39% on PHJ)."
            )
    return result


def _allocator_config(block_bytes: int, kind: str = "block"):
    from ..hashjoin.simple import HashJoinConfig

    return HashJoinConfig(allocator_kind=kind, allocator_block_bytes=block_bytes)
