"""Table 1: hardware configuration of the simulated machines.

The structural values (core counts, frequencies, buffer and cache sizes) come
straight from the spec constants in :mod:`repro.hardware.specs`, which in turn
are taken from the paper's Table 1 for the AMD A8-3870K APU and the discrete
Radeon HD 7970 reference GPU.
"""

from __future__ import annotations

from ..hardware.specs import table1_rows
from .common import ExperimentResult


def run_table1() -> ExperimentResult:
    """Regenerate Table 1 from the spec constants."""
    result = ExperimentResult(
        experiment="Table 1",
        description="Configuration of the AMD A8-3870K APU (and discrete HD 7970 reference)",
    )
    for row in table1_rows():
        result.add_row(**row)
    result.add_note(
        "The timing parameters of the simulator (latencies, bandwidths, atomic costs) "
        "are calibration constants documented in DESIGN.md, not part of Table 1."
    )
    return result
