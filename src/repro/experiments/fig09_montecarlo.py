"""Figure 9: Monte Carlo validation of the cost-model-chosen ratios.

One thousand PL executions with randomly generated ratio settings form a CDF
of elapsed times; the ratios chosen by the cost model land very close to the
best simulated run, and the per-run prediction error stays below ~15% for
most runs.  The experiment is run for the build phase of SHJ-PL and the probe
phase of PHJ-PL, as in the paper.
"""

from __future__ import annotations

from ..core.executor import CoProcessingExecutor
from ..costmodel.batch import EstimateCache
from ..costmodel.calibration import CalibrationTable
from ..costmodel.montecarlo import MonteCarloStudy, run_monte_carlo
from ..costmodel.optimizer import optimize_pl
from ..data.workload import JoinWorkload
from ..hardware.machine import Machine, coupled_machine
from ..hashjoin.partition import PartitionedHashJoin
from ..hashjoin.simple import HashJoinConfig, SimpleHashJoin
from .common import ExperimentResult

#: Smaller default than the other experiments: each Monte Carlo sample is a
#: full measured execution of the phase.
DEFAULT_MC_TUPLES = 50_000


def _study_for_series(series, machine: Machine, n_samples: int, seed: int) -> MonteCarloStudy:
    steps = CalibrationTable.from_series([series], machine).step_costs()
    executor = CoProcessingExecutor(machine)

    def measure(ratios) -> float:
        return executor.execute_series(series, list(ratios), pipelined=True).elapsed_s

    # One cache serves both the PL optimisation and the Monte Carlo batch, so
    # ratio vectors the optimiser already evaluated are not re-estimated.
    cache = EstimateCache()
    chosen = optimize_pl(steps, cache=cache)
    return run_monte_carlo(
        steps, measure, chosen.ratios, n_samples=n_samples, seed=seed, cache=cache
    )


def run_fig09(
    build_tuples: int = DEFAULT_MC_TUPLES,
    probe_tuples: int | None = None,
    n_samples: int = 200,
    machine: Machine | None = None,
    seed: int = 42,
) -> ExperimentResult:
    """Monte Carlo CDFs for SHJ-PL (build) and PHJ-PL (probe)."""
    probe_tuples = probe_tuples if probe_tuples is not None else build_tuples
    machine = machine or coupled_machine()
    workload = JoinWorkload.uniform(build_tuples, probe_tuples, seed=seed)

    shj = SimpleHashJoin(HashJoinConfig()).run(workload.build, workload.probe)
    phj = PartitionedHashJoin(config=HashJoinConfig()).run(workload.build, workload.probe)

    result = ExperimentResult(
        experiment="Figure 9",
        description="CDF of Monte Carlo ratio settings vs the cost model's pick",
        parameters={"build_tuples": build_tuples, "n_samples": n_samples},
    )

    cases = [
        ("SHJ-PL build", shj.build.series),
        ("PHJ-PL probe", phj.probe_series),
    ]
    for label, series in cases:
        study = _study_for_series(series, machine, n_samples, seed)
        for elapsed, fraction in study.cdf(n_points=20):
            result.add_row(case=label, kind="cdf", elapsed_s=elapsed, fraction=fraction)
        result.add_row(
            case=label,
            kind="summary",
            elapsed_s=study.chosen_measured_s,
            fraction=study.chosen_percentile(),
            best_random_s=study.best_measured_s,
            worst_random_s=study.worst_measured_s,
            error_p90_pct=study.error_quantile(0.9) * 100.0,
        )
        result.add_note(
            f"{label}: cost-model pick is within "
            f"{100.0 * (study.chosen_measured_s / study.best_measured_s - 1.0):.1f}% of the best "
            f"of {n_samples} random settings and beats {study.chosen_percentile():.0%} of them."
        )
    result.add_note(
        "Paper: the chosen ratios are very close to the best Monte Carlo run; the "
        "prediction error is below 15% in most cases."
    )
    return result
