"""Shared infrastructure of the experiment runners.

Every experiment module exposes a ``run_*`` function returning an
:class:`ExperimentResult`: a labelled list of dict rows plus free-form notes.
Benchmarks execute the runners at reduced scale (the ``scale`` arguments
default to sizes that finish in seconds); passing the paper's sizes
reproduces the original setting.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Mapping

#: Default scaled-down relation size used by the experiment runners: large
#: enough that the SHJ hash table exceeds the 4 MB shared cache (so the
#: memory-stall behaviour the paper studies is visible), small enough that
#: the whole suite runs in minutes.
DEFAULT_TUPLES = 200_000

#: The paper's default relation size (Section 5.1).
PAPER_TUPLES = 16_000_000


@dataclass
class ExperimentResult:
    """Rows of one regenerated table or figure."""

    experiment: str
    description: str
    rows: list[dict[str, object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    parameters: dict[str, object] = field(default_factory=dict)

    def add_row(self, **values: object) -> None:
        self.rows.append(dict(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column_names(self) -> list[str]:
        names: list[str] = []
        for row in self.rows:
            for key in row:
                if key not in names:
                    names.append(key)
        return names

    def column(self, name: str) -> list[object]:
        return [row.get(name) for row in self.rows]

    # ------------------------------------------------------------------
    def to_text(self, float_format: str = "{:.4g}") -> str:
        """Human-readable fixed-width table (what the benches print)."""
        names = self.column_names()
        if not names:
            return f"== {self.experiment} ==\n(no rows)\n"

        def fmt(value: object) -> str:
            if isinstance(value, bool):
                return str(value)
            if isinstance(value, float):
                return float_format.format(value)
            return str(value)

        cells = [[fmt(row.get(name, "")) for name in names] for row in self.rows]
        widths = [
            max(len(name), *(len(row[i]) for row in cells)) if cells else len(name)
            for i, name in enumerate(names)
        ]
        lines = [f"== {self.experiment}: {self.description} =="]
        lines.append("  ".join(name.ljust(width) for name, width in zip(names, widths)))
        lines.append("  ".join("-" * width for width in widths))
        for row in cells:
            lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines) + "\n"

    def to_dict(self) -> dict[str, object]:
        """Machine-readable form (what the benchmark JSON artifacts embed)."""
        return {
            "experiment": self.experiment,
            "description": self.description,
            "parameters": dict(self.parameters),
            "rows": [dict(row) for row in self.rows],
            "notes": list(self.notes),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def to_markdown(self) -> str:
        names = self.column_names()
        if not names:
            return f"### {self.experiment}\n\n(no rows)\n"
        lines = [f"### {self.experiment}: {self.description}", ""]
        lines.append("| " + " | ".join(names) + " |")
        lines.append("|" + "|".join("---" for _ in names) + "|")
        for row in self.rows:
            cells = []
            for name in names:
                value = row.get(name, "")
                cells.append(f"{value:.4g}" if isinstance(value, float) else str(value))
            lines.append("| " + " | ".join(cells) + " |")
        lines.append("")
        for note in self.notes:
            lines.append(f"*{note}*")
        return "\n".join(lines) + "\n"


def improvement(baseline: float, candidate: float) -> float:
    """Relative improvement of ``candidate`` over ``baseline`` in percent."""
    if baseline <= 0:
        return 0.0
    return (1.0 - candidate / baseline) * 100.0


def summarise(results: Iterable[ExperimentResult]) -> str:
    return "\n".join(result.to_text() for result in results)
