"""Section 5.5 headline numbers and the divergence-grouping study (Section 5.4).

The paper's headline: fine-grained pipelined co-processing (PL) improves over
CPU-only, GPU-only and conventional co-processing (DD) by up to 53%, 35% and
28% respectively, and PHJ-PL is usually 2-6% faster than SHJ-PL.  The grouping
study reports a 5-10% end-to-end gain from reducing workload divergence on
skewed data.
"""

from __future__ import annotations

from dataclasses import replace

from ..core.joins import run_join
from ..costmodel.batch import EstimateCache
from ..data.workload import JoinWorkload
from ..hardware.machine import Machine, coupled_machine
from ..hashjoin.simple import HashJoinConfig
from .common import DEFAULT_TUPLES, ExperimentResult, improvement


def run_headline(
    build_tuples: int = DEFAULT_TUPLES,
    probe_tuples: int | None = None,
    machine: Machine | None = None,
    seed: int = 42,
) -> ExperimentResult:
    """PL vs CPU-only / GPU-only / DD for both SHJ and PHJ (Section 5.5)."""
    probe_tuples = probe_tuples if probe_tuples is not None else build_tuples
    workload = JoinWorkload.uniform(build_tuples, probe_tuples, seed=seed)

    result = ExperimentResult(
        experiment="Headline (Section 5.5)",
        description="Fine-grained PL vs CPU-only, GPU-only and conventional DD",
        parameters={"build_tuples": build_tuples},
    )

    totals: dict[str, float] = {}
    cache = EstimateCache()  # shared: the schemes re-evaluate identical steps
    for algorithm in ("SHJ", "PHJ"):
        for scheme in ("CPU-only", "GPU-only", "DD", "PL"):
            timing = run_join(
                algorithm, scheme, workload.build, workload.probe,
                machine=machine or coupled_machine(), cache=cache,
            )
            totals[f"{algorithm}-{scheme}"] = timing.total_s
            result.add_row(algorithm=algorithm, scheme=scheme, elapsed_s=timing.total_s)

    for algorithm in ("SHJ", "PHJ"):
        pl = totals[f"{algorithm}-PL"]
        result.add_note(
            f"{algorithm}: PL improves over CPU-only by "
            f"{improvement(totals[f'{algorithm}-CPU-only'], pl):.0f}%, GPU-only by "
            f"{improvement(totals[f'{algorithm}-GPU-only'], pl):.0f}%, DD by "
            f"{improvement(totals[f'{algorithm}-DD'], pl):.0f}% "
            "(paper: up to 53%, 35% and 28%)."
        )
    result.add_note(
        f"PHJ-PL vs SHJ-PL: {improvement(totals['SHJ-PL'], totals['PHJ-PL']):.1f}% "
        "(paper: PHJ-PL usually 2-6% faster)."
    )
    return result


def run_grouping_study(
    build_tuples: int = DEFAULT_TUPLES,
    probe_tuples: int | None = None,
    skew_preset: str = "high-skew",
    machine: Machine | None = None,
    seed: int = 42,
) -> ExperimentResult:
    """Workload-divergence grouping on skewed data (Section 5.4 text result)."""
    probe_tuples = probe_tuples if probe_tuples is not None else build_tuples
    workload = JoinWorkload.skewed(skew_preset, build_tuples, probe_tuples, seed=seed)

    result = ExperimentResult(
        experiment="Grouping (Section 5.4)",
        description="Workload-divergence grouping on skewed data (GPU-heavy PL runs)",
        parameters={"build_tuples": build_tuples, "skew": skew_preset},
    )

    totals = {}
    for grouping in (False, True):
        config = replace(HashJoinConfig(), grouping=grouping)
        timing = run_join(
            "SHJ", "PL", workload.build, workload.probe,
            machine=machine or coupled_machine(), join_config=config,
        )
        totals[grouping] = timing.total_s
        result.add_row(
            grouping="grouped" if grouping else "ungrouped",
            elapsed_s=timing.total_s,
        )
    result.add_note(
        f"Grouping improves the skewed SHJ-PL run by "
        f"{improvement(totals[False], totals[True]):.1f}% (paper: 5-10%, larger on the GPU)."
    )
    return result
