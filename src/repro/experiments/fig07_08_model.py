"""Figures 7 and 8: estimated vs. measured time under ratio sweeps.

Figure 7 sweeps the single workload ratio of SHJ-DD separately for the build
and the probe phase and compares the cost model's estimate with the measured
time.  Figure 8 does the same for a constrained PL setting: steps b1 and p1
are off-loaded entirely to the GPU and one common ratio ``r`` is applied to
all the remaining steps.
"""

from __future__ import annotations

import numpy as np

from ..costmodel.calibration import CalibrationTable
from ..core.executor import CoProcessingExecutor
from ..costmodel.batch import estimate_series_batch
from ..data.workload import JoinWorkload
from ..hardware.machine import Machine, coupled_machine
from ..hashjoin.simple import HashJoinConfig, SimpleHashJoin
from .common import DEFAULT_TUPLES, ExperimentResult


def _shj_series(build_tuples: int, probe_tuples: int, seed: int):
    workload = JoinWorkload.uniform(build_tuples, probe_tuples, seed=seed)
    run = SimpleHashJoin(HashJoinConfig()).run(workload.build, workload.probe)
    return run.build.series, run.probe.series


def run_fig07(
    build_tuples: int = DEFAULT_TUPLES,
    probe_tuples: int | None = None,
    machine: Machine | None = None,
    ratio_step: float = 0.1,
    seed: int = 42,
) -> ExperimentResult:
    """SHJ-DD: estimated vs measured time with the workload ratio varied."""
    probe_tuples = probe_tuples if probe_tuples is not None else build_tuples
    machine = machine or coupled_machine()
    build_series, probe_series = _shj_series(build_tuples, probe_tuples, seed)
    executor = CoProcessingExecutor(machine)

    result = ExperimentResult(
        experiment="Figure 7",
        description="Estimated and measured time for SHJ-DD with workload ratios varied",
        parameters={"build_tuples": build_tuples, "ratio_step": ratio_step},
    )

    ratios = np.round(np.arange(0.0, 1.0 + 1e-9, ratio_step), 6)
    for phase_name, series in (("build", build_series), ("probe", probe_series)):
        steps = CalibrationTable.from_series([series], machine).step_costs()
        # The whole DD sweep is one batched model evaluation (one row per ratio).
        matrix = np.repeat(ratios[:, np.newaxis], series.n_steps, axis=1)
        estimates = estimate_series_batch(steps, matrix).total_s
        best_ratio, best_measured = None, float("inf")
        for ratio, estimated in zip(ratios, estimates.tolist()):
            vector = [float(ratio)] * series.n_steps
            measured = executor.execute_series(series, vector, pipelined=False).elapsed_s
            if measured < best_measured:
                best_measured, best_ratio = measured, float(ratio)
            result.add_row(
                phase=phase_name,
                cpu_ratio_pct=float(ratio) * 100.0,
                estimated_s=estimated,
                measured_s=measured,
                relative_error_pct=100.0 * abs(estimated - measured) / measured if measured else 0.0,
            )
        result.add_note(f"{phase_name}: measured optimum at CPU ratio {best_ratio:.0%}.")

    result.add_note(
        "Paper: the estimate tracks the measurement closely but sits slightly below "
        "it because the model excludes lock contention."
    )
    return result


def run_fig08(
    build_tuples: int = DEFAULT_TUPLES,
    probe_tuples: int | None = None,
    machine: Machine | None = None,
    ratio_step: float = 0.1,
    seed: int = 42,
) -> ExperimentResult:
    """Special PL case: b1/p1 fully on the GPU, one ratio r for the other steps."""
    probe_tuples = probe_tuples if probe_tuples is not None else build_tuples
    machine = machine or coupled_machine()
    build_series, probe_series = _shj_series(build_tuples, probe_tuples, seed)
    executor = CoProcessingExecutor(machine)

    result = ExperimentResult(
        experiment="Figure 8",
        description=(
            "Estimated and measured time for the PL special case: b1/p1 off-loaded "
            "to the GPU, data-dividing ratio r on all other steps"
        ),
        parameters={"build_tuples": build_tuples, "ratio_step": ratio_step},
    )

    ratios = np.round(np.arange(0.0, 1.0 + 1e-9, ratio_step), 6)
    for phase_name, series in (("build", build_series), ("probe", probe_series)):
        steps = CalibrationTable.from_series([series], machine).step_costs()
        # Constrained-PL sweep: first step pinned to the GPU, one ratio for the
        # rest — again a single batched evaluation.
        matrix = np.repeat(ratios[:, np.newaxis], series.n_steps, axis=1)
        matrix[:, 0] = 0.0
        estimates = estimate_series_batch(steps, matrix).total_s
        for ratio, estimated in zip(ratios, estimates.tolist()):
            vector = [0.0] + [float(ratio)] * (series.n_steps - 1)
            measured = executor.execute_series(series, vector, pipelined=True).elapsed_s
            result.add_row(
                phase=phase_name,
                cpu_ratio_pct=float(ratio) * 100.0,
                estimated_s=estimated,
                measured_s=measured,
                relative_error_pct=100.0 * abs(estimated - measured) / measured if measured else 0.0,
            )

    result.add_note(
        "Paper: the prediction is close across r and identifies the suitable ratio."
    )
    return result
