"""Figure 20: latch micro-benchmark on the CPU and the GPU (Appendix).

The micro-benchmark generates an array of N integers and lets K threads
perform X atomic increments on it in total (K = 256 on the CPU, 8192 on the
GPU, X = 16M in the paper), under uniform, low-skew and high-skew target
distributions.  The observed behaviour: contention cost falls as N grows
(more distinct latch targets), rises again slightly once the array no longer
fits the cache (memory stalls), and the high-skew distribution benefits from
data locality that partially compensates the latch contention.
"""

from __future__ import annotations

import numpy as np

from ..hardware.machine import CPU, GPU, Machine, coupled_machine
from ..hardware.workstats import WorkStats
from ..hardware.cache import WorkingSet
from ..opencl.atomics import concurrent_hardware_threads, contention_ratio
from .common import ExperimentResult

#: Array sizes swept (number of 4-byte integers); the paper goes up to 16M.
DEFAULT_ARRAY_SIZES: tuple[int, ...] = (
    1, 4, 16, 64, 256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576, 4_194_304
)

#: Increments performed in total (paper: 16M); scaled default below.
DEFAULT_TOTAL_INCREMENTS = 1_000_000

#: Instructions per increment (load, add, store around the atomic).
INCREMENT_INSTRUCTIONS = 8.0


def effective_targets(n_integers: int, skew: float, hot_duplication: int = 16) -> float:
    """Effective number of distinct latch targets under a skewed access mix.

    A fraction ``skew`` of the increments hammer a small set of hot elements
    (mirroring the skewed data sets, where each duplicated key appears
    ``hot_duplication`` times); the rest spread uniformly over the array.  The
    effective target count is the inverse Herfindahl concentration of that
    access distribution.
    """
    if n_integers <= 0:
        raise ValueError("n_integers must be positive")
    if not 0.0 <= skew <= 1.0:
        raise ValueError("skew must be in [0, 1]")
    if skew == 0.0 or n_integers == 1:
        return float(n_integers)
    hot_elements = max(int(np.ceil(skew * n_integers / hot_duplication)), 1)
    cold_elements = max(n_integers - hot_elements, 1)
    concentration = (skew**2) / hot_elements + ((1.0 - skew) ** 2) / cold_elements
    return 1.0 / max(concentration, 1e-12)


def latch_benchmark_time(
    device: str,
    n_integers: int,
    total_increments: int,
    skew: float,
    machine: Machine | None = None,
) -> float:
    """Simulated seconds for the latch micro-benchmark on one device."""
    machine = machine or coupled_machine()
    threads = concurrent_hardware_threads(device)
    targets = effective_targets(n_integers, skew)
    conflict = contention_ratio(threads, targets, access_probability=0.5)

    # Skewed accesses enjoy better data locality: the hot element is cache
    # resident regardless of the array size.
    array_bytes = n_integers * 4
    working_set = WorkingSet(bytes=float(array_bytes) * (1.0 - skew), shared_between_devices=True)
    stats = WorkStats(
        tuples=total_increments,
        instructions=INCREMENT_INSTRUCTIONS * total_increments,
        random_accesses=1.0 * total_increments,
        global_atomics=1.0 * total_increments,
        divergence=0.0,
        atomic_conflict_ratio=conflict,
    )
    return machine.step_seconds(device, stats, working_set)


def run_fig20(
    array_sizes: tuple[int, ...] = DEFAULT_ARRAY_SIZES,
    total_increments: int = DEFAULT_TOTAL_INCREMENTS,
    machine: Machine | None = None,
) -> ExperimentResult:
    """Locking-overhead micro-benchmark on the CPU and the GPU."""
    machine = machine or coupled_machine()
    result = ExperimentResult(
        experiment="Figure 20",
        description="Latch micro-benchmark: K threads performing X increments on N integers",
        parameters={
            "array_sizes": list(array_sizes),
            "total_increments": total_increments,
            "threads_cpu": concurrent_hardware_threads(CPU),
            "threads_gpu": concurrent_hardware_threads(GPU),
        },
    )
    skews = {"uniform": 0.0, "low-skew": 0.10, "high-skew": 0.25}
    for device in (CPU, GPU):
        for label, skew in skews.items():
            for n_integers in array_sizes:
                elapsed = latch_benchmark_time(
                    device, n_integers, total_increments, skew, machine=machine
                )
                result.add_row(
                    device=device,
                    distribution=label,
                    n_integers=n_integers,
                    elapsed_s=elapsed,
                )
    result.add_note(
        "Paper: the overhead decreases as the array grows until it no longer fits "
        "the 4 MB cache; beyond that, high-skew runs are slightly faster than "
        "uniform because data locality compensates the latch contention."
    )
    return result
