"""Figure 3: time breakdown on the discrete and coupled architectures.

The paper runs SHJ-DD, SHJ-OL, PHJ-DD and PHJ-OL on both the emulated
discrete architecture and the coupled APU and breaks the elapsed time into
data transfer, merge, partition, build and probe.  The headline observations
are that (a) the PCI-e transfer costs 4-10% of the total on the discrete
machine, (b) the merge of separate hash tables costs even more (14-18% for
DD), and (c) both vanish on the coupled architecture.
"""

from __future__ import annotations

from ..core.joins import run_join
from ..costmodel.batch import EstimateCache
from ..data.workload import JoinWorkload
from ..hardware.machine import coupled_machine, discrete_machine
from .common import DEFAULT_TUPLES, ExperimentResult


def run_fig03(
    build_tuples: int = DEFAULT_TUPLES,
    probe_tuples: int | None = None,
    seed: int = 42,
) -> ExperimentResult:
    """Regenerate the Figure 3 breakdown at the given scale."""
    probe_tuples = probe_tuples if probe_tuples is not None else build_tuples
    workload = JoinWorkload.uniform(build_tuples, probe_tuples, seed=seed)

    result = ExperimentResult(
        experiment="Figure 3",
        description="Time breakdown on discrete and coupled architectures",
        parameters={"build_tuples": build_tuples, "probe_tuples": probe_tuples},
    )

    variants = [("SHJ", "DD"), ("SHJ", "OL"), ("PHJ", "DD"), ("PHJ", "OL")]
    cache = EstimateCache()
    for algorithm, scheme in variants:
        for arch_name, machine_factory in (("discrete", discrete_machine), ("coupled", coupled_machine)):
            timing = run_join(
                algorithm, scheme, workload.build, workload.probe,
                machine=machine_factory(), cache=cache,
            )
            breakdown = timing.breakdown()
            result.add_row(
                variant=f"{algorithm}-{scheme}",
                architecture=arch_name,
                data_transfer_s=breakdown["data_transfer_s"],
                merge_s=breakdown["merge_s"],
                partition_s=breakdown["partition_s"],
                build_s=breakdown["build_s"],
                probe_s=breakdown["probe_s"],
                total_s=breakdown["total_s"],
                transfer_pct=100.0 * breakdown["data_transfer_s"] / breakdown["total_s"]
                if breakdown["total_s"] else 0.0,
                merge_pct=100.0 * breakdown["merge_s"] / breakdown["total_s"]
                if breakdown["total_s"] else 0.0,
            )

    result.add_note(
        "Paper: PCI-e transfer is 4-10% of discrete-architecture time; merge is "
        "14-18% for DD; both are eliminated on the coupled architecture."
    )
    return result
