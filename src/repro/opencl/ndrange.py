"""OpenCL-style index spaces: work items, work groups and wavefronts.

OpenCL (Section 2.2 of the paper) executes a kernel over an *NDRange* of work
items; work items are grouped into work groups (mapped to compute units), and
the hardware executes them in SIMD batches — *wavefronts* of 64 work items on
AMD, *warps* of 32 on NVIDIA.  The reproduction keeps this terminology because
the wavefront granularity is what makes workload divergence expensive on the
GPU (Section 3.3, "Workload divergence").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

#: AMD executes 64 work items per wavefront (the terminology used in the paper).
AMD_WAVEFRONT_WIDTH = 64
#: NVIDIA warp width, kept for reference.
NVIDIA_WARP_WIDTH = 32

#: Work-group sizes that fully utilise the two devices of the APU, mirroring
#: the "tuned OpenCL configuration" remark in Section 5.1.
DEFAULT_CPU_WORK_GROUP = 1
DEFAULT_GPU_WORK_GROUP = 256


class NDRangeError(ValueError):
    """Raised for inconsistent NDRange configurations."""


@dataclass(frozen=True)
class NDRange:
    """A one-dimensional launch configuration."""

    global_size: int
    local_size: int

    def __post_init__(self) -> None:
        if self.global_size < 0:
            raise NDRangeError("global_size must be non-negative")
        if self.local_size <= 0:
            raise NDRangeError("local_size must be positive")

    @property
    def n_work_groups(self) -> int:
        if self.global_size == 0:
            return 0
        return (self.global_size + self.local_size - 1) // self.local_size

    def work_groups(self) -> Iterator[range]:
        """Iterate the global-id ranges of each work group."""
        for group in range(self.n_work_groups):
            start = group * self.local_size
            stop = min(start + self.local_size, self.global_size)
            yield range(start, stop)

    def wavefronts(self, width: int = AMD_WAVEFRONT_WIDTH) -> Iterator[range]:
        """Iterate the global-id ranges of each wavefront.

        Wavefronts never span work groups: a group smaller than the wavefront
        width still occupies a full wavefront issue slot.
        """
        if width <= 0:
            raise NDRangeError("wavefront width must be positive")
        for group in self.work_groups():
            for start in range(group.start, group.stop, width):
                yield range(start, min(start + width, group.stop))

    @classmethod
    def for_device(cls, n_items: int, device_kind: str) -> "NDRange":
        """Launch configuration tuned per device, as in the paper's setup."""
        if device_kind == "cpu":
            return cls(global_size=n_items, local_size=DEFAULT_CPU_WORK_GROUP)
        if device_kind == "gpu":
            return cls(global_size=n_items, local_size=DEFAULT_GPU_WORK_GROUP)
        raise NDRangeError(f"unknown device kind {device_kind!r}")


@dataclass(frozen=True)
class WorkItemId:
    """Identity of one work item within an NDRange."""

    global_id: int
    local_id: int
    group_id: int

    @classmethod
    def from_global(cls, global_id: int, ndrange: NDRange) -> "WorkItemId":
        group_id = global_id // ndrange.local_size
        local_id = global_id % ndrange.local_size
        return cls(global_id=global_id, local_id=local_id, group_id=group_id)
