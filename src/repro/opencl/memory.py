"""Logical OpenCL memory spaces: global, local and private buffers.

OpenCL exposes a three-level logical memory hierarchy (Section 2.2): global
memory visible to all work items, a small fast local memory shared within a
work group (32 KB per compute unit on the APU), and per-work-item private
memory.  The buffers here are thin wrappers over numpy arrays that enforce
capacity limits and count accesses, so kernels written against them exercise
the same constraints as the paper's OpenCL kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class LocalMemoryExceededError(RuntimeError):
    """Raised when a work group requests more local memory than the CU has."""


@dataclass
class AccessCounters:
    reads: int = 0
    writes: int = 0

    @property
    def total(self) -> int:
        return self.reads + self.writes


class GlobalBuffer:
    """A buffer in OpenCL global memory (the zero copy buffer on the APU)."""

    def __init__(self, size: int, dtype: np.dtype | type = np.int64, fill: int = 0) -> None:
        if size < 0:
            raise ValueError("size must be non-negative")
        self.array = np.full(size, fill, dtype=dtype)
        self.counters = AccessCounters()

    def __len__(self) -> int:
        return int(self.array.shape[0])

    @property
    def nbytes(self) -> int:
        return int(self.array.nbytes)

    def read(self, index: int) -> int:
        self.counters.reads += 1
        return int(self.array[index])

    def write(self, index: int, value: int) -> None:
        self.counters.writes += 1
        self.array[index] = value

    def bulk_read(self, indices: np.ndarray) -> np.ndarray:
        self.counters.reads += int(np.asarray(indices).shape[0])
        return self.array[indices]

    def bulk_write(self, indices: np.ndarray, values: np.ndarray) -> None:
        self.counters.writes += int(np.asarray(indices).shape[0])
        self.array[indices] = values


class LocalBuffer:
    """Per-work-group local memory with the device's 32 KB capacity limit."""

    def __init__(self, n_items: int, item_bytes: int = 8, capacity_bytes: int = 32 * 1024) -> None:
        required = n_items * item_bytes
        if required > capacity_bytes:
            raise LocalMemoryExceededError(
                f"work group requested {required} bytes of local memory "
                f"(capacity {capacity_bytes})"
            )
        self.array = np.zeros(n_items, dtype=np.int64)
        self.item_bytes = item_bytes
        self.capacity_bytes = capacity_bytes
        self.counters = AccessCounters()

    def read(self, index: int) -> int:
        self.counters.reads += 1
        return int(self.array[index])

    def write(self, index: int, value: int) -> None:
        self.counters.writes += 1
        self.array[index] = value

    @property
    def nbytes(self) -> int:
        return int(self.array.shape[0]) * self.item_bytes
