"""Software dynamic-memory allocators (Section 3.3, "Memory allocator").

OpenCL 1.2 cannot allocate memory inside a kernel, so the paper pre-allocates
an array and serves requests from it:

* the **basic allocator** keeps one global free pointer and advances it with a
  global ``atomic_add`` for *every* request — simple, but the single hot word
  serialises the GPU's thousands of work items;
* the **optimised (block) allocator** lets work item 0 of a work group grab a
  whole block with one global atomic, after which the group's work items
  carve the block using a cheap local-memory pointer.  The block size is a
  tuning knob (Figure 11, best ≈ 2 KB).

Both allocators here really hand out offsets into a pre-allocated arena (the
hash table and partition buffers are built inside it) and count the atomics
they issue so the device model can charge latch time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .atomics import AtomicCounter, concurrent_hardware_threads, contention_ratio


class ArenaExhaustedError(RuntimeError):
    """Raised when the pre-allocated arena cannot serve a request."""


@dataclass
class AllocatorStats:
    """Operation counters of one allocator instance."""

    requests: int = 0
    allocated_bytes: int = 0
    wasted_bytes: int = 0
    global_atomics: int = 0
    local_atomics: int = 0
    blocks_grabbed: int = 0

    def merge(self, other: "AllocatorStats") -> "AllocatorStats":
        return AllocatorStats(
            requests=self.requests + other.requests,
            allocated_bytes=self.allocated_bytes + other.allocated_bytes,
            wasted_bytes=self.wasted_bytes + other.wasted_bytes,
            global_atomics=self.global_atomics + other.global_atomics,
            local_atomics=self.local_atomics + other.local_atomics,
            blocks_grabbed=self.blocks_grabbed + other.blocks_grabbed,
        )


class Arena:
    """A pre-allocated byte arena shared by all work groups."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.capacity_bytes = capacity_bytes
        self._free_pointer = AtomicCounter(0, scope=AtomicCounter.GLOBAL)

    @property
    def used_bytes(self) -> int:
        return self._free_pointer.load()

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def bump(self, nbytes: int) -> int:
        """Advance the global pointer; returns the previous offset."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if self.used_bytes + nbytes > self.capacity_bytes:
            raise ArenaExhaustedError(
                f"arena exhausted: requested {nbytes} bytes, "
                f"{self.free_bytes} of {self.capacity_bytes} free"
            )
        return self._free_pointer.add(nbytes)

    @property
    def global_atomics(self) -> int:
        return self._free_pointer.stats.global_ops

    def absorb(self, nbytes: int, n_bumps: int) -> None:
        """Replay ``n_bumps`` pointer advances totalling ``nbytes`` at once.

        Used when partition pairs were joined by workers with private arenas:
        the driver arena absorbs each worker's usage with one capacity-checked
        advance whose atomic-op count equals the individual bumps it stands
        for, so the merged counters match the serial shared-arena run exactly.
        """
        if n_bumps < 0:
            raise ValueError("n_bumps must be non-negative")
        if n_bumps == 0:
            if nbytes:
                raise ValueError("cannot absorb bytes without any bumps")
            return
        self.bump(nbytes)
        self._free_pointer.stats.global_ops += n_bumps - 1

    def reset(self) -> None:
        self._free_pointer.reset(0)
        self._free_pointer.stats.global_ops = 0


class MemoryAllocator:
    """Common interface of the basic and block allocators."""

    name = "abstract"

    def __init__(self, arena: Arena) -> None:
        self.arena = arena
        self.stats = AllocatorStats()

    # -- allocation ----------------------------------------------------
    def allocate(self, nbytes: int, group_id: int = 0) -> int:
        """Allocate ``nbytes`` on behalf of a work item of ``group_id``.

        Returns the byte offset of the allocation inside the arena.
        """
        raise NotImplementedError

    def bulk_allocate(self, n_requests: int, request_bytes: int, n_groups: int = 1) -> int:
        """Serve ``n_requests`` equal-sized requests issued by ``n_groups`` work groups.

        This is the vectorised equivalent of calling :meth:`allocate` once per
        request: the arena pointer advances by the total size, and the atomic
        counters are updated with the same totals the per-request path would
        produce.  Returns the starting byte offset of the contiguous region.
        """
        if n_requests < 0 or request_bytes < 0:
            raise ValueError("n_requests and request_bytes must be non-negative")
        if n_requests == 0:
            return self.arena.used_bytes
        global_per_request, local_per_request = self.atomics_per_request(max(request_bytes, 1))
        offset = self.arena.bump(n_requests * request_bytes)
        self.stats.requests += n_requests
        self.stats.allocated_bytes += n_requests * request_bytes
        self.stats.global_atomics += int(round(global_per_request * n_requests))
        self.stats.local_atomics += int(round(local_per_request * n_requests))
        return offset

    # -- cost accounting -----------------------------------------------
    def atomics_per_request(self, request_bytes: int) -> tuple[float, float]:
        """Average (global, local) atomics issued per allocation request."""
        raise NotImplementedError

    def conflict_ratio(self, device_kind: str, request_bytes: int,
                       work_fraction_in_atomic: float = 0.3) -> float:
        """Contention ratio of the allocator's *global* atomics on a device.

        ``work_fraction_in_atomic`` is the fraction of a work item's time spent
        inside the global atomic section when it does issue one; the effective
        access probability scales down with how rarely global atomics happen.
        """
        global_per_request, _ = self.atomics_per_request(request_bytes)
        threads = concurrent_hardware_threads(device_kind)
        access_probability = min(1.0, work_fraction_in_atomic * global_per_request)
        return contention_ratio(threads, 1.0, access_probability)

    def absorb(self, stats: AllocatorStats, arena_bytes: int, arena_bumps: int) -> None:
        """Fold a worker allocator's effects into this one.

        ``stats`` are the worker's counters (all additive), ``arena_bytes`` /
        ``arena_bumps`` its arena usage.  The bulk allocation paths depend
        only on the allocator *configuration*, never on its history, so pairs
        joined against private worker allocators produce the same step series
        as against the shared one — absorbing the deltas in pair order makes
        the driver's counters bit-identical to the serial run too.
        """
        self.stats = self.stats.merge(stats)
        self.arena.absorb(arena_bytes, arena_bumps)

    def reset(self) -> None:
        self.stats = AllocatorStats()


class BasicAllocator(MemoryAllocator):
    """One global pointer, one global atomic per request."""

    name = "basic"

    def allocate(self, nbytes: int, group_id: int = 0) -> int:
        offset = self.arena.bump(nbytes)
        self.stats.requests += 1
        self.stats.allocated_bytes += nbytes
        self.stats.global_atomics += 1
        return offset

    def atomics_per_request(self, request_bytes: int) -> tuple[float, float]:
        return 1.0, 0.0


class BlockAllocator(MemoryAllocator):
    """The optimised allocator: per-work-group blocks, local-pointer carving.

    ``block_bytes`` is the tuning knob studied in Figure 11; the paper settles
    on 2 KB.
    """

    DEFAULT_BLOCK_BYTES = 2048

    def __init__(self, arena: Arena, block_bytes: int = DEFAULT_BLOCK_BYTES) -> None:
        super().__init__(arena)
        if block_bytes <= 0:
            raise ValueError("block_bytes must be positive")
        self.block_bytes = block_bytes
        # group_id -> (next offset within block, remaining bytes)
        self._group_blocks: dict[int, tuple[int, int]] = {}

    def allocate(self, nbytes: int, group_id: int = 0) -> int:
        if nbytes > self.block_bytes:
            # Oversized requests bypass the block and hit the global pointer,
            # like work item 0 grabbing a dedicated block.
            offset = self.arena.bump(nbytes)
            self.stats.requests += 1
            self.stats.allocated_bytes += nbytes
            self.stats.global_atomics += 1
            self.stats.blocks_grabbed += 1
            return offset

        offset, remaining = self._group_blocks.get(group_id, (0, 0))
        if remaining < nbytes:
            # Work item 0 of the group grabs a fresh block (one global atomic);
            # whatever was left of the old block is wasted.
            self.stats.wasted_bytes += remaining
            offset = self.arena.bump(self.block_bytes)
            remaining = self.block_bytes
            self.stats.global_atomics += 1
            self.stats.blocks_grabbed += 1

        # The request itself is served with a local-memory atomic on the
        # group's local pointer.
        self.stats.requests += 1
        self.stats.allocated_bytes += nbytes
        self.stats.local_atomics += 1
        self._group_blocks[group_id] = (offset + nbytes, remaining - nbytes)
        return offset

    def atomics_per_request(self, request_bytes: int) -> tuple[float, float]:
        if request_bytes <= 0:
            raise ValueError("request_bytes must be positive")
        requests_per_block = max(1.0, self.block_bytes / request_bytes)
        return 1.0 / requests_per_block, 1.0

    def reset(self) -> None:
        super().reset()
        self._group_blocks.clear()


def make_allocator(
    kind: str,
    arena: Arena | None = None,
    capacity_bytes: int = 1 << 30,
    block_bytes: int = BlockAllocator.DEFAULT_BLOCK_BYTES,
) -> MemoryAllocator:
    """Factory for the two allocator variants compared in Figure 12."""
    arena = arena or Arena(capacity_bytes)
    if kind == "basic":
        return BasicAllocator(arena)
    if kind in ("block", "optimized", "ours"):
        return BlockAllocator(arena, block_bytes=block_bytes)
    raise ValueError(f"unknown allocator kind {kind!r}; expected 'basic' or 'block'")
