"""OpenCL-style execution abstraction (paper Section 2.2 and 3.3)."""

from .allocator import (
    AllocatorStats,
    Arena,
    ArenaExhaustedError,
    BasicAllocator,
    BlockAllocator,
    MemoryAllocator,
    make_allocator,
)
from .atomics import (
    AtomicCounter,
    AtomicStats,
    Latch,
    LatchTable,
    concurrent_hardware_threads,
    contention_ratio,
)
from .kernel import Kernel, KernelBody, LaunchResult, WorkItemReport
from .memory import (
    AccessCounters,
    GlobalBuffer,
    LocalBuffer,
    LocalMemoryExceededError,
)
from .ndrange import (
    AMD_WAVEFRONT_WIDTH,
    DEFAULT_CPU_WORK_GROUP,
    DEFAULT_GPU_WORK_GROUP,
    NVIDIA_WARP_WIDTH,
    NDRange,
    NDRangeError,
    WorkItemId,
)
from .wavefront import (
    DivergenceReport,
    divergence_factor,
    grouped_divergence,
    wavefront_divergence,
)

__all__ = [
    "AMD_WAVEFRONT_WIDTH",
    "AccessCounters",
    "AllocatorStats",
    "Arena",
    "ArenaExhaustedError",
    "AtomicCounter",
    "AtomicStats",
    "BasicAllocator",
    "BlockAllocator",
    "DEFAULT_CPU_WORK_GROUP",
    "DEFAULT_GPU_WORK_GROUP",
    "DivergenceReport",
    "GlobalBuffer",
    "Kernel",
    "KernelBody",
    "Latch",
    "LatchTable",
    "LaunchResult",
    "LocalBuffer",
    "LocalMemoryExceededError",
    "MemoryAllocator",
    "NDRange",
    "NDRangeError",
    "NVIDIA_WARP_WIDTH",
    "WorkItemId",
    "WorkItemReport",
    "concurrent_hardware_threads",
    "contention_ratio",
    "divergence_factor",
    "grouped_divergence",
    "make_allocator",
    "wavefront_divergence",
]
