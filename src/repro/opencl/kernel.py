"""A minimal kernel-launch abstraction over the simulated devices.

The paper writes every join step as one OpenCL kernel and launches it on
either compute device.  The reproduction's per-tuple reference path does the
same: a :class:`Kernel` wraps a per-work-item Python callable, a launch
enumerates the NDRange work group by work group, and the per-item work
reports are folded into a :class:`~repro.hardware.workstats.WorkStats` with
wavefront-divergence accounting.  (The bulk numpy path in
:mod:`repro.hashjoin.vectorized` bypasses this for speed but produces the
same statistics.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..hardware.workstats import WorkStats
from .ndrange import NDRange, WorkItemId
from .wavefront import wavefront_divergence


@dataclass
class WorkItemReport:
    """Work performed by one work item (one tuple, usually)."""

    instructions: float = 0.0
    random_accesses: float = 0.0
    sequential_bytes: float = 0.0
    global_atomics: float = 0.0
    local_atomics: float = 0.0

    @property
    def workload(self) -> float:
        """Scalar proxy of this item's execution time, used for divergence."""
        return self.instructions + 10.0 * self.random_accesses + 5.0 * self.global_atomics


#: A kernel body: (work item id, kernel arguments) -> per-item work report.
KernelBody = Callable[[WorkItemId, dict], WorkItemReport]


@dataclass
class LaunchResult:
    """Outcome of one kernel launch."""

    stats: WorkStats
    reports: list[WorkItemReport] = field(default_factory=list)


class Kernel:
    """A named per-work-item kernel."""

    def __init__(self, name: str, body: KernelBody) -> None:
        self.name = name
        self.body = body

    def launch(
        self,
        ndrange: NDRange,
        args: dict | None = None,
        wavefront_width: int = 64,
        atomic_conflict_ratio: float = 0.0,
        keep_reports: bool = False,
    ) -> LaunchResult:
        """Execute the kernel over ``ndrange`` and aggregate its work stats."""
        args = args or {}
        reports: list[WorkItemReport] = []
        instructions = 0.0
        random_accesses = 0.0
        sequential_bytes = 0.0
        global_atomics = 0.0
        local_atomics = 0.0
        workloads: list[float] = []

        for global_id in range(ndrange.global_size):
            item = WorkItemId.from_global(global_id, ndrange)
            report = self.body(item, args)
            instructions += report.instructions
            random_accesses += report.random_accesses
            sequential_bytes += report.sequential_bytes
            global_atomics += report.global_atomics
            local_atomics += report.local_atomics
            workloads.append(report.workload)
            if keep_reports:
                reports.append(report)

        divergence = wavefront_divergence(
            np.asarray(workloads, dtype=np.float64), width=wavefront_width
        ).divergence
        stats = WorkStats(
            tuples=ndrange.global_size,
            instructions=instructions,
            sequential_bytes=sequential_bytes,
            random_accesses=random_accesses,
            global_atomics=global_atomics,
            local_atomics=local_atomics,
            divergence=divergence,
            atomic_conflict_ratio=atomic_conflict_ratio,
        )
        return LaunchResult(stats=stats, reports=reports)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Kernel({self.name!r})"
