"""Atomic operations, latches and contention estimation.

OpenCL 1.2 has no dynamic memory allocation and no mutexes inside kernels;
the paper therefore builds latches from ``atomic_add`` (Section 3.3, "Memory
allocator") both in global and in local memory.  This module provides:

* functional atomic counters / latches whose operation counts feed the device
  timing model, and
* an analytical contention estimator that turns "how many threads hammer how
  many distinct latch words" into the conflict ratio consumed by
  :meth:`repro.hardware.device.DeviceModel.atomic_time`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class AtomicStats:
    """Counts of atomic operations issued against one scope."""

    global_ops: int = 0
    local_ops: int = 0

    def merge(self, other: "AtomicStats") -> "AtomicStats":
        return AtomicStats(
            global_ops=self.global_ops + other.global_ops,
            local_ops=self.local_ops + other.local_ops,
        )


class AtomicCounter:
    """An ``atomic_add`` counter living in global or local memory."""

    GLOBAL = "global"
    LOCAL = "local"

    def __init__(self, initial: int = 0, scope: str = GLOBAL) -> None:
        if scope not in (self.GLOBAL, self.LOCAL):
            raise ValueError(f"scope must be 'global' or 'local', got {scope!r}")
        self.value = int(initial)
        self.scope = scope
        self.stats = AtomicStats()

    def add(self, amount: int = 1) -> int:
        """Atomically add ``amount``; returns the *previous* value (OpenCL semantics)."""
        previous = self.value
        self.value += int(amount)
        if self.scope == self.GLOBAL:
            self.stats.global_ops += 1
        else:
            self.stats.local_ops += 1
        return previous

    def load(self) -> int:
        return self.value

    def reset(self, value: int = 0) -> None:
        self.value = int(value)


class Latch:
    """A spin latch built from an atomic word, protecting one object.

    Only the *accounting* matters for the simulator — acquisition always
    succeeds immediately because execution is sequential — but every
    acquire/release pair is recorded so the caller can charge atomic costs and
    estimate contention.
    """

    def __init__(self, scope: str = AtomicCounter.GLOBAL) -> None:
        self._counter = AtomicCounter(scope=scope)
        self.acquisitions = 0
        self.held = False

    def acquire(self) -> None:
        if self.held:
            raise RuntimeError("latch is not re-entrant")
        self._counter.add(1)
        self.acquisitions += 1
        self.held = True

    def release(self) -> None:
        if not self.held:
            raise RuntimeError("latch released without being held")
        self._counter.add(-1)
        self.held = False

    def __enter__(self) -> "Latch":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    @property
    def stats(self) -> AtomicStats:
        return self._counter.stats


class LatchTable:
    """A family of latches, one per protected object (e.g. one per hash bucket)."""

    def __init__(self, n_latches: int, scope: str = AtomicCounter.GLOBAL) -> None:
        if n_latches <= 0:
            raise ValueError("n_latches must be positive")
        self.n_latches = n_latches
        self.scope = scope
        self.acquisitions = np.zeros(n_latches, dtype=np.int64)

    def acquire_release(self, index: int) -> None:
        """Record one acquire/release on latch ``index``."""
        self.acquisitions[index % self.n_latches] += 1

    @property
    def total_acquisitions(self) -> int:
        return int(self.acquisitions.sum())

    def conflict_ratio(self, concurrent_threads: int) -> float:
        """Observed-skew-aware contention across the latch family.

        The probability that an acquisition collides with another thread is
        driven by how concentrated the acquisitions are: with a uniform spread
        over many latches contention is negligible, with a single hot latch
        (data skew) it approaches the single-target estimate.
        """
        total = self.total_acquisitions
        if total == 0 or concurrent_threads <= 1:
            return 0.0
        # Herfindahl-style concentration of acquisitions across latches.
        shares = self.acquisitions[self.acquisitions > 0] / total
        concentration = float(np.sum(shares * shares))  # 1/n_eff
        effective_targets = max(1.0, 1.0 / concentration)
        return contention_ratio(concurrent_threads, effective_targets)


def contention_ratio(
    concurrent_threads: float,
    distinct_targets: float,
    access_probability: float = 1.0,
) -> float:
    """Probability that an atomic operation hits a currently-contended target.

    ``concurrent_threads`` hardware threads each issue atomics against
    ``distinct_targets`` objects, spending ``access_probability`` of their time
    inside the atomic section.  The returned ratio is
    ``E / (1 + E)`` with ``E`` the expected number of competitors per target,
    which saturates at 1.0 for heavy contention (the basic allocator on the
    GPU) and goes to 0 for many targets or rare atomics.
    """
    if concurrent_threads <= 1 or distinct_targets <= 0:
        return 0.0
    if not 0.0 <= access_probability <= 1.0:
        raise ValueError("access_probability must be in [0, 1]")
    expected_competitors = (concurrent_threads - 1) * access_probability / distinct_targets
    return expected_competitors / (1.0 + expected_competitors)


def concurrent_hardware_threads(device_kind: str) -> int:
    """Number of concurrently executing work items used for contention estimates.

    The paper's latch micro-benchmark (Appendix, Figure 20) uses 8192 work
    items on the GPU and 256 on the CPU; we adopt the same degree of
    concurrency as the default occupancy of each device.
    """
    if device_kind == "gpu":
        return 8192
    if device_kind == "cpu":
        return 256
    raise ValueError(f"unknown device kind {device_kind!r}")
