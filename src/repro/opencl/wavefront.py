"""Wavefront lock-step execution and workload-divergence accounting.

All work items of a wavefront run in SIMD lock-step, so the wavefront's
execution time equals the *worst* execution time among its work items
(Section 3.3).  Divergent per-tuple workloads — e.g. skewed key-list lengths
in steps ``b3``/``p3`` — therefore waste GPU cycles.  This module quantifies
that waste and implements the grouping optimisation the paper borrows from
[18]: sorting the input by expected workload before forming wavefronts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .ndrange import AMD_WAVEFRONT_WIDTH


@dataclass(frozen=True)
class DivergenceReport:
    """Divergence of one launch's per-item workloads."""

    #: Sum of per-item workloads (useful work).
    useful_work: float
    #: Work actually paid for: each wavefront pays width x its maximum item.
    lockstep_work: float
    #: Number of wavefronts formed.
    n_wavefronts: int

    @property
    def divergence(self) -> float:
        """Wasted fraction of the lock-step work, in [0, 1]."""
        if self.lockstep_work <= 0:
            return 0.0
        return max(0.0, 1.0 - self.useful_work / self.lockstep_work)

    @property
    def slowdown(self) -> float:
        """Lock-step work divided by useful work (>= 1)."""
        if self.useful_work <= 0:
            return 1.0
        return self.lockstep_work / self.useful_work


def wavefront_divergence(
    workloads: np.ndarray,
    width: int = AMD_WAVEFRONT_WIDTH,
) -> DivergenceReport:
    """Compute divergence for per-item workloads assigned in input order."""
    workloads = np.asarray(workloads, dtype=np.float64)
    if workloads.ndim != 1:
        raise ValueError("workloads must be a one-dimensional array")
    if width <= 0:
        raise ValueError("width must be positive")
    n = workloads.shape[0]
    if n == 0:
        return DivergenceReport(useful_work=0.0, lockstep_work=0.0, n_wavefronts=0)

    n_wavefronts = (n + width - 1) // width
    padded = np.zeros(n_wavefronts * width, dtype=np.float64)
    padded[:n] = workloads
    per_wavefront_max = padded.reshape(n_wavefronts, width).max(axis=1)
    # Each wavefront retires with its slowest work item; only lanes that carry
    # real work items are counted, so uniform work has zero divergence even
    # when the last wavefront is partially filled.
    lane_counts = np.full(n_wavefronts, width, dtype=np.float64)
    if n % width:
        lane_counts[-1] = n % width
    lockstep = float(np.sum(per_wavefront_max * lane_counts))
    useful = float(np.sum(workloads))
    return DivergenceReport(useful_work=useful, lockstep_work=lockstep, n_wavefronts=n_wavefronts)


def grouped_divergence(
    workloads: np.ndarray,
    width: int = AMD_WAVEFRONT_WIDTH,
    n_groups: int = 32,
) -> tuple[DivergenceReport, np.ndarray]:
    """Divergence after the grouping optimisation of Section 3.3.

    Items are bucketed into ``n_groups`` groups of similar workload (the paper
    groups hash-bucket headers by key-list length) and wavefronts are formed
    within groups, so each wavefront sees similar work.  Returns the report
    and the permutation applied to the input.

    ``n_groups`` trades grouping overhead against divergence reduction; the
    cost of grouping itself is charged by the caller (one sequential pass).
    """
    workloads = np.asarray(workloads, dtype=np.float64)
    if n_groups <= 0:
        raise ValueError("n_groups must be positive")
    if workloads.shape[0] == 0:
        return wavefront_divergence(workloads, width), np.empty(0, dtype=np.int64)

    # Stable sort by quantised workload keeps the permutation cheap to apply
    # and mirrors "group the input data according to the amount of workload".
    lo, hi = float(workloads.min()), float(workloads.max())
    if hi <= lo:
        order = np.arange(workloads.shape[0], dtype=np.int64)
    else:
        bins = np.minimum(
            ((workloads - lo) / (hi - lo) * n_groups).astype(np.int64), n_groups - 1
        )
        order = np.argsort(bins, kind="stable").astype(np.int64)
    report = wavefront_divergence(workloads[order], width)
    return report, order


def divergence_factor(
    workloads: np.ndarray,
    width: int = AMD_WAVEFRONT_WIDTH,
    grouped: bool = False,
    n_groups: int = 32,
) -> float:
    """Convenience wrapper returning only the divergence fraction in [0, 1]."""
    if grouped:
        report, _ = grouped_divergence(workloads, width=width, n_groups=n_groups)
        return report.divergence
    return wavefront_divergence(workloads, width=width).divergence
