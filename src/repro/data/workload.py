"""Workload descriptions for the paper's experiments.

A :class:`JoinWorkload` bundles the generated relations together with the
parameters that produced them, and provides the named workloads used across
the evaluation section (default uniform, low-skew, high-skew, selectivity
sweeps, build-size sweeps).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .generator import SKEW_PRESETS, DatasetSpec, expected_match_count
from .relation import Relation

#: Build-table sizes swept in Figures 13 and 14 (64K ... 16M tuples).
PAPER_BUILD_SIZE_SWEEP: tuple[int, ...] = (
    64_000,
    128_000,
    256_000,
    512_000,
    1_000_000,
    2_000_000,
    4_000_000,
    6_000_000,
    8_000_000,
    10_000_000,
    12_000_000,
    14_000_000,
    16_000_000,
)

#: Join selectivities evaluated in Figure 15.
PAPER_SELECTIVITIES: tuple[float, ...] = (0.125, 0.5, 1.0)


@dataclass
class JoinWorkload:
    """A fully materialised R ⋈ S workload."""

    build: Relation
    probe: Relation
    spec: DatasetSpec
    label: str = field(default="workload")

    @classmethod
    def from_spec(cls, spec: DatasetSpec, label: str = "workload") -> "JoinWorkload":
        build, probe = spec.generate()
        return cls(build=build, probe=probe, spec=spec, label=label)

    @classmethod
    def uniform(
        cls, build_tuples: int, probe_tuples: int, seed: int = 42
    ) -> "JoinWorkload":
        spec = DatasetSpec(build_tuples=build_tuples, probe_tuples=probe_tuples, seed=seed)
        return cls.from_spec(spec, label="uniform")

    @classmethod
    def skewed(
        cls,
        preset: str,
        build_tuples: int,
        probe_tuples: int,
        seed: int = 42,
    ) -> "JoinWorkload":
        spec = DatasetSpec.named_skew(preset, build_tuples, probe_tuples, seed=seed)
        return cls.from_spec(spec, label=preset)

    @classmethod
    def with_selectivity(
        cls,
        selectivity: float,
        build_tuples: int,
        probe_tuples: int,
        seed: int = 42,
    ) -> "JoinWorkload":
        spec = DatasetSpec(
            build_tuples=build_tuples,
            probe_tuples=probe_tuples,
            selectivity=selectivity,
            seed=seed,
        )
        return cls.from_spec(spec, label=f"selectivity-{selectivity:g}")

    # ------------------------------------------------------------------
    @property
    def build_tuples(self) -> int:
        return len(self.build)

    @property
    def probe_tuples(self) -> int:
        return len(self.probe)

    @property
    def total_bytes(self) -> int:
        return self.build.nbytes + self.probe.nbytes

    def expected_matches(self) -> int:
        """Ground-truth join cardinality (independent of the join operators)."""
        return expected_match_count(self.build, self.probe)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"JoinWorkload(label={self.label!r}, |R|={self.build_tuples}, "
            f"|S|={self.probe_tuples})"
        )


def build_size_sweep(
    probe_tuples: int,
    skew_preset: str = "uniform",
    sizes: tuple[int, ...] = PAPER_BUILD_SIZE_SWEEP,
    seed: int = 42,
) -> list[JoinWorkload]:
    """Workloads for Figures 13/14: fixed probe size, varying build size."""
    if skew_preset not in SKEW_PRESETS:
        raise ValueError(f"unknown skew preset {skew_preset!r}")
    return [
        JoinWorkload.from_spec(
            DatasetSpec(
                build_tuples=size,
                probe_tuples=probe_tuples,
                skew=SKEW_PRESETS[skew_preset],
                seed=seed,
            ),
            label=f"{skew_preset}-|R|={size}",
        )
        for size in sizes
    ]


def selectivity_sweep(
    build_tuples: int,
    probe_tuples: int,
    selectivities: tuple[float, ...] = PAPER_SELECTIVITIES,
    seed: int = 42,
) -> list[JoinWorkload]:
    """Workloads for Figure 15: varying join selectivity."""
    return [
        JoinWorkload.with_selectivity(s, build_tuples, probe_tuples, seed=seed)
        for s in selectivities
    ]
