"""Synthetic data-set generators following Section 5.1 of the paper.

The paper evaluates on relations of <key, rid> tuples:

* a default of 16M tuples per relation with uniformly distributed keys,
* two skewed data sets where ``s%`` of the tuples carry one duplicated key
  value (``low-skew``: s = 10, ``high-skew``: s = 25),
* probe relations whose join selectivity (fraction of probe tuples that find a
  match) is varied between 12.5% and 100%.

All generators are deterministic given a seed so experiments are repeatable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .relation import Relation

#: Named skew presets from the paper (fraction of tuples with the hot key).
SKEW_PRESETS: dict[str, float] = {
    "uniform": 0.0,
    "low-skew": 0.10,
    "high-skew": 0.25,
}

#: Default relation cardinality in the paper (16M tuples).
PAPER_DEFAULT_TUPLES = 16_000_000


class GeneratorError(ValueError):
    """Raised for inconsistent generator parameters."""


def _rng(seed: int | None) -> np.random.Generator:
    return np.random.default_rng(seed)


#: Multiplicity of each duplicated ("hot") key in the skewed data sets.  The
#: paper duplicates s% of the tuples' key values; bounding the multiplicity
#: per hot key keeps the join output linear in the input (FK-join style) while
#: still producing skewed chains, divergent wavefront work and latch hot spots.
HOT_KEY_DUPLICATES = 16


def generate_build_relation(
    n_tuples: int,
    skew: float = 0.0,
    seed: int | None = 42,
    key_space: int | None = None,
    name: str = "R",
    hot_key_duplicates: int = HOT_KEY_DUPLICATES,
) -> Relation:
    """Generate the build relation ``R``.

    Parameters
    ----------
    n_tuples:
        Relation cardinality.
    skew:
        Fraction ``s`` of tuples carrying duplicated ("hot") key values, as in
        the paper's ``low-skew`` (0.10) and ``high-skew`` (0.25) data sets.
        ``0.0`` produces unique keys.
    seed:
        Seed for the pseudo random permutation of key positions.
    key_space:
        Upper bound (exclusive) of the key domain.  Defaults to a domain large
        enough to hold ``n_tuples`` distinct keys.
    name:
        Relation name.
    hot_key_duplicates:
        Number of tuples sharing each duplicated key value.
    """
    if n_tuples < 0:
        raise GeneratorError("n_tuples must be non-negative")
    if not 0.0 <= skew <= 1.0:
        raise GeneratorError(f"skew must be in [0, 1], got {skew}")
    if hot_key_duplicates <= 1:
        raise GeneratorError("hot_key_duplicates must be at least 2")

    rng = _rng(seed)
    if key_space is None:
        key_space = max(2 * n_tuples, 16)

    n_hot = int(round(n_tuples * skew))
    n_regular = n_tuples - n_hot
    n_hot_keys = int(np.ceil(n_hot / hot_key_duplicates)) if n_hot else 0

    distinct_needed = n_regular + n_hot_keys
    distinct = (
        np.asarray(rng.choice(key_space, size=distinct_needed, replace=False), dtype=np.int64)
        if distinct_needed
        else np.empty(0, dtype=np.int64)
    )
    regular_keys = distinct[:n_regular]
    if n_hot:
        hot_values = distinct[n_regular:]
        hot_keys = np.repeat(hot_values, hot_key_duplicates)[:n_hot]
        keys = np.concatenate([regular_keys, hot_keys])
    else:
        keys = regular_keys

    rng.shuffle(keys)
    rids = np.arange(n_tuples, dtype=np.int64)
    return Relation(keys=keys, rids=rids, name=name)


def generate_probe_relation(
    build: Relation,
    n_tuples: int,
    selectivity: float = 1.0,
    skew: float = 0.0,
    seed: int | None = 43,
    name: str = "S",
) -> Relation:
    """Generate the probe relation ``S`` against an existing build relation.

    ``selectivity`` is the fraction of probe tuples that find at least one
    match in ``build`` (12.5%, 50% and 100% in Figure 15).  Matching tuples
    draw their keys from ``build``; the remainder draw keys guaranteed to miss.
    ``skew`` concentrates the *matching* probes onto a single hot build key.
    """
    if n_tuples < 0:
        raise GeneratorError("n_tuples must be non-negative")
    if not 0.0 <= selectivity <= 1.0:
        raise GeneratorError(f"selectivity must be in [0, 1], got {selectivity}")
    if not 0.0 <= skew <= 1.0:
        raise GeneratorError(f"skew must be in [0, 1], got {skew}")
    if build.is_empty() and selectivity > 0.0 and n_tuples > 0:
        raise GeneratorError("cannot generate matching probes against an empty build relation")

    rng = _rng(seed)
    n_match = int(round(n_tuples * selectivity))
    n_miss = n_tuples - n_match

    parts: list[np.ndarray] = []
    if n_match:
        build_keys = build.keys
        n_hot = int(round(n_match * skew))
        n_uniform = n_match - n_hot
        if n_uniform:
            parts.append(rng.choice(build_keys, size=n_uniform, replace=True))
        if n_hot:
            hot_key = build_keys[rng.integers(0, build_keys.shape[0])]
            parts.append(np.full(n_hot, hot_key, dtype=np.int64))
    if n_miss:
        # Keys strictly above the build key domain never match.
        miss_base = int(build.keys.max()) + 1 if not build.is_empty() else 1
        parts.append(miss_base + rng.integers(0, max(n_miss, 1), size=n_miss))

    keys = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
    keys = np.asarray(keys, dtype=np.int64)
    rng.shuffle(keys)
    rids = np.arange(n_tuples, dtype=np.int64)
    return Relation(keys=keys, rids=rids, name=name)


@dataclass(frozen=True)
class DatasetSpec:
    """Parameters for one R ⋈ S experiment data set."""

    build_tuples: int
    probe_tuples: int
    skew: float = 0.0
    selectivity: float = 1.0
    seed: int = 42

    def __post_init__(self) -> None:
        if self.build_tuples < 0 or self.probe_tuples < 0:
            raise GeneratorError("relation sizes must be non-negative")

    @classmethod
    def paper_default(cls, scale: float = 1.0) -> "DatasetSpec":
        """The paper's default 16M ⋈ 16M uniform data set, optionally scaled."""
        n = max(int(PAPER_DEFAULT_TUPLES * scale), 1)
        return cls(build_tuples=n, probe_tuples=n)

    @classmethod
    def named_skew(
        cls, preset: str, build_tuples: int, probe_tuples: int, seed: int = 42
    ) -> "DatasetSpec":
        """Build a spec from the paper's skew preset names."""
        if preset not in SKEW_PRESETS:
            raise GeneratorError(
                f"unknown skew preset {preset!r}; expected one of {sorted(SKEW_PRESETS)}"
            )
        return cls(
            build_tuples=build_tuples,
            probe_tuples=probe_tuples,
            skew=SKEW_PRESETS[preset],
            seed=seed,
        )

    def generate(self) -> tuple[Relation, Relation]:
        """Materialise the (R, S) relation pair for this spec."""
        build = generate_build_relation(
            self.build_tuples, skew=self.skew, seed=self.seed, name="R"
        )
        probe = generate_probe_relation(
            build,
            self.probe_tuples,
            selectivity=self.selectivity,
            skew=self.skew,
            seed=self.seed + 1,
            name="S",
        )
        return build, probe


def expected_match_count(build: Relation, probe: Relation) -> int:
    """Exact number of join result tuples for R ⋈ S on equality of keys.

    Computed independently from the join operators so tests can cross-check
    operator output against ground truth.
    """
    if build.is_empty() or probe.is_empty():
        return 0
    build_keys, build_counts = np.unique(build.keys, return_counts=True)
    probe_keys, probe_counts = np.unique(probe.keys, return_counts=True)
    common, build_idx, probe_idx = np.intersect1d(
        build_keys, probe_keys, assume_unique=True, return_indices=True
    )
    del common
    return int(np.sum(build_counts[build_idx] * probe_counts[probe_idx]))
