"""Synthetic data sets and workload descriptions (paper Section 5.1)."""

from .generator import (
    PAPER_DEFAULT_TUPLES,
    SKEW_PRESETS,
    DatasetSpec,
    GeneratorError,
    expected_match_count,
    generate_build_relation,
    generate_probe_relation,
)
from .relation import TUPLE_BYTES, Relation, RelationError
from .workload import (
    PAPER_BUILD_SIZE_SWEEP,
    PAPER_SELECTIVITIES,
    JoinWorkload,
    build_size_sweep,
    selectivity_sweep,
)

__all__ = [
    "DatasetSpec",
    "GeneratorError",
    "JoinWorkload",
    "PAPER_BUILD_SIZE_SWEEP",
    "PAPER_DEFAULT_TUPLES",
    "PAPER_SELECTIVITIES",
    "Relation",
    "RelationError",
    "SKEW_PRESETS",
    "TUPLE_BYTES",
    "build_size_sweep",
    "expected_match_count",
    "generate_build_relation",
    "generate_probe_relation",
    "selectivity_sweep",
]
