"""Column-oriented relation container used by every join operator.

The paper (Section 5.1) uses relations of two four-byte integer attributes,
``rid`` (record id) and ``key``.  They are either base relations of a
column-oriented database or the <key, rid> extraction from wider rows.  We
keep exactly that layout: two parallel ``numpy`` arrays of ``int32``/``int64``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Number of bytes per tuple (4-byte key + 4-byte record id), as in the paper.
TUPLE_BYTES = 8


class RelationError(ValueError):
    """Raised when a relation is constructed from inconsistent columns."""


@dataclass(frozen=True)
class Relation:
    """An in-memory relation of ``<key, rid>`` tuples.

    Attributes
    ----------
    keys:
        Join key of every tuple.  Stored as ``int64`` internally so hash
        arithmetic cannot overflow, but generators only produce values that
        fit in an unsigned 32-bit integer to match the paper's 4-byte keys.
    rids:
        Record identifier of every tuple.
    name:
        Optional human readable name (``"R"`` / ``"S"`` in the paper).
    """

    keys: np.ndarray
    rids: np.ndarray
    name: str = field(default="relation")

    def __post_init__(self) -> None:
        keys = np.asarray(self.keys, dtype=np.int64)
        rids = np.asarray(self.rids, dtype=np.int64)
        if keys.ndim != 1 or rids.ndim != 1:
            raise RelationError("keys and rids must be one-dimensional arrays")
        if keys.shape[0] != rids.shape[0]:
            raise RelationError(
                f"keys ({keys.shape[0]}) and rids ({rids.shape[0]}) "
                "must have the same length"
            )
        object.__setattr__(self, "keys", keys)
        object.__setattr__(self, "rids", rids)

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.keys.shape[0])

    @property
    def cardinality(self) -> int:
        """Number of tuples in the relation."""
        return len(self)

    @property
    def nbytes(self) -> int:
        """Size of the relation in bytes using the paper's 8-byte tuples."""
        return len(self) * TUPLE_BYTES

    def is_empty(self) -> bool:
        return len(self) == 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_keys(cls, keys: np.ndarray, name: str = "relation") -> "Relation":
        """Build a relation whose rids are the positional indices 0..n-1."""
        keys = np.asarray(keys, dtype=np.int64)
        return cls(keys=keys, rids=np.arange(keys.shape[0], dtype=np.int64), name=name)

    @classmethod
    def empty(cls, name: str = "relation") -> "Relation":
        return cls(
            keys=np.empty(0, dtype=np.int64),
            rids=np.empty(0, dtype=np.int64),
            name=name,
        )

    @classmethod
    def concat(cls, relations: list["Relation"], name: str = "relation") -> "Relation":
        """Concatenate several relations preserving tuple order."""
        if not relations:
            return cls.empty(name=name)
        keys = np.concatenate([r.keys for r in relations])
        rids = np.concatenate([r.rids for r in relations])
        return cls(keys=keys, rids=rids, name=name)

    # ------------------------------------------------------------------
    # Slicing
    # ------------------------------------------------------------------
    def take(self, indices: np.ndarray, name: str | None = None) -> "Relation":
        """Return a new relation containing the tuples at ``indices``."""
        indices = np.asarray(indices)
        return Relation(
            keys=self.keys[indices],
            rids=self.rids[indices],
            name=name if name is not None else self.name,
        )

    def slice(self, start: int, stop: int, name: str | None = None) -> "Relation":
        """Return the contiguous tuple range ``[start, stop)``."""
        return Relation(
            keys=self.keys[start:stop],
            rids=self.rids[start:stop],
            name=name if name is not None else self.name,
        )

    def split_by_ratio(self, ratio: float) -> tuple["Relation", "Relation"]:
        """Split the relation into a leading ``ratio`` fraction and the rest.

        Used by the data-dividing (DD) co-processing scheme: the first part is
        assigned to the CPU and the remainder to the GPU.
        """
        if not 0.0 <= ratio <= 1.0:
            raise ValueError(f"ratio must be within [0, 1], got {ratio}")
        cut = int(round(len(self) * ratio))
        return self.slice(0, cut), self.slice(cut, len(self))

    def split_chunks(self, chunk_size: int) -> list["Relation"]:
        """Split into fixed-size chunks (used by the BasicUnit scheduler)."""
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        return [
            self.slice(start, min(start + chunk_size, len(self)))
            for start in range(0, len(self), chunk_size)
        ]

    # ------------------------------------------------------------------
    # Statistics helpers used by cost-model instantiation
    # ------------------------------------------------------------------
    def distinct_key_count(self) -> int:
        if self.is_empty():
            return 0
        return int(np.unique(self.keys).shape[0])

    def average_duplicates_per_key(self) -> float:
        """Average number of tuples sharing one key value (>= 1.0)."""
        distinct = self.distinct_key_count()
        if distinct == 0:
            return 0.0
        return len(self) / distinct

    def key_histogram(self) -> dict[int, int]:
        """Exact key -> multiplicity histogram (small relations only)."""
        values, counts = np.unique(self.keys, return_counts=True)
        return {int(k): int(c) for k, c in zip(values, counts)}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Relation(name={self.name!r}, tuples={len(self)})"
