"""Command-line interface for running the paper's experiments.

Usage (after ``pip install -e .``)::

    python -m repro list
    python -m repro run fig04 --tuples 200000
    python -m repro run headline --tuples 256000 --format markdown
    python -m repro report --tuples 100000 --output report.md
    python -m repro join --algorithm PHJ --scheme PL --tuples 500000
    python -m repro plan workload.json --format json
    cat workload.json | python -m repro plan - --format json
    python -m repro serve --unix /tmp/plan.sock

``run`` executes a single experiment runner (see ``list`` for the names),
``report`` executes every runner and writes one combined markdown report,
``join`` runs a single co-processed join and prints its breakdown,
``plan`` feeds a JSON workload of optimisation/what-if requests (from a file
or stdin) through the multi-query plan service, and ``serve`` runs the
long-lived asyncio plan server — versioned JSON-lines protocol,
micro-batching scheduler, per-client weighted fairness (see
``docs/protocol.md``).
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
from typing import Callable, Sequence

from .core.joins import run_join
from .data.workload import JoinWorkload
from .experiments import ALL_EXPERIMENTS, ExperimentResult
from .hardware.machine import coupled_machine, discrete_machine
from .service import (
    PlanServer,
    PlanService,
    SharedEstimateCache,
    WorkloadError,
    load_workload,
)


def _supports_argument(runner: Callable, name: str) -> bool:
    return name in inspect.signature(runner).parameters


def _invoke_runner(runner: Callable, tuples: int | None) -> ExperimentResult:
    kwargs = {}
    if tuples is not None and _supports_argument(runner, "build_tuples"):
        kwargs["build_tuples"] = tuples
    return runner(**kwargs)


def _format_result(result: ExperimentResult, fmt: str) -> str:
    if fmt == "markdown":
        return result.to_markdown()
    return result.to_text()


# ---------------------------------------------------------------------------
# Sub-commands
# ---------------------------------------------------------------------------
def cmd_list(args: argparse.Namespace) -> int:
    print("Available experiments:")
    for name, runner in ALL_EXPERIMENTS.items():
        doc = (runner.__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else ""
        print(f"  {name:10s} {summary}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    if args.experiment not in ALL_EXPERIMENTS:
        print(f"unknown experiment {args.experiment!r}; try 'python -m repro list'",
              file=sys.stderr)
        return 2
    result = _invoke_runner(ALL_EXPERIMENTS[args.experiment], args.tuples)
    print(_format_result(result, args.format))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    sections: list[str] = ["# Reproduction report", ""]
    for name, runner in ALL_EXPERIMENTS.items():
        if args.only and name not in args.only:
            continue
        result = _invoke_runner(runner, args.tuples)
        sections.append(result.to_markdown())
        print(f"[done] {name}", file=sys.stderr)
    report = "\n".join(sections)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(report)
    return 0


def cmd_join(args: argparse.Namespace) -> int:
    workload = (
        JoinWorkload.skewed(args.skew, args.tuples, args.tuples, seed=args.seed)
        if args.skew != "uniform"
        else JoinWorkload.uniform(args.tuples, args.tuples, seed=args.seed)
    )
    machine = discrete_machine() if args.architecture == "discrete" else coupled_machine()
    timing = run_join(args.algorithm, args.scheme, workload.build, workload.probe,
                      machine=machine)
    print(f"variant      : {timing.variant} ({timing.architecture})")
    print(f"matches      : {timing.result.match_count}")
    print(f"elapsed (sim): {timing.total_s:.6f} s")
    print(f"estimated    : {timing.estimated_s:.6f} s")
    for key, value in timing.breakdown().items():
        print(f"  {key:16s} {value:.6f}")
    for phase, ratios in timing.ratios_by_phase().items():
        print(f"  ratios[{phase:9s}] {[round(r, 2) for r in ratios]}")
    return 0


def _format_plans(responses, stats, fmt: str) -> str:
    if fmt == "json":
        return json.dumps(
            {"plans": [r.to_dict() for r in responses], "stats": stats}, indent=2
        )
    if fmt == "markdown":
        lines = [
            "### Batch plan",
            "",
            "| id | scheme | total_s | evaluations | group | ratios |",
            "| --- | --- | --- | --- | --- | --- |",
        ]
        for r in responses:
            ratios = " ".join(f"{x:.2f}" for x in r.ratios)
            lines.append(
                f"| {r.request_id} | {r.scheme} | {r.total_s:.6f} | "
                f"{r.evaluations} | {r.group_size} | {ratios} |"
            )
        cache = stats["cache"]
        lines += [
            "",
            f"cache: {cache['hits']} hits / {cache['misses']} misses "
            f"({cache['hit_rate']:.1%} hit rate), "
            f"{stats['requests_deduplicated']} of {stats['requests_served']} "
            "requests deduplicated",
        ]
        return "\n".join(lines)
    lines = []
    for r in responses:
        ratios = [round(x, 2) for x in r.ratios]
        lines.append(
            f"{r.request_id:12s} scheme={r.scheme:8s} total={r.total_s:.6f} s  "
            f"evaluations={r.evaluations:<6d} group={r.group_size}  ratios={ratios}"
        )
    cache = stats["cache"]
    lines.append(
        f"cache: {cache['hits']} hits / {cache['misses']} misses "
        f"({cache['hit_rate']:.1%} hit rate), "
        f"{stats['requests_deduplicated']} of {stats['requests_served']} "
        "requests deduplicated"
    )
    return "\n".join(lines)


def cmd_plan(args: argparse.Namespace) -> int:
    try:
        if args.workload == "-":
            payload = json.load(sys.stdin)
        else:
            with open(args.workload, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
    except OSError as exc:
        print(f"cannot read workload: {exc}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"workload is not valid JSON: {exc}", file=sys.stderr)
        return 2
    try:
        requests = load_workload(payload)
    except WorkloadError as exc:
        print(f"invalid workload: {exc}", file=sys.stderr)
        return 2

    service = PlanService(
        cache=None if args.shared_cache else SharedEstimateCache()
    )
    responses = service.plan_many(requests)
    text = _format_plans(responses, service.stats(), args.format)
    if args.output:
        try:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
        except OSError as exc:
            print(f"cannot write plans: {exc}", file=sys.stderr)
            return 2
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text)
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the static-analysis suite (see ``docs/static-analysis.md``).

    Exit codes follow ``repro plan``: 0 clean, 1 findings, 2 config errors
    (unknown checker, unparseable source, unreadable allowlist, unwritable
    ``--output``).
    """
    from .analysis import (
        LintConfigError,
        all_checkers,
        load_allowlist,
        load_project,
        render_json,
        render_text,
        run_lint,
    )

    if args.list_checkers:
        for checker in all_checkers().values():
            print(f"{checker.id:16s} {checker.description}")
        return 0

    try:
        project = load_project(args.root, src=args.src, tests=args.tests)
        allowlist = load_allowlist(args.allowlist) if args.allowlist else set()
        result = run_lint(project, checker_ids=args.checker, allowlist=allowlist)
    except LintConfigError as exc:
        print(f"lint configuration error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        text = render_json(result, show_suppressed=args.show_suppressed)
    else:
        text = render_text(result, show_suppressed=args.show_suppressed)
    if args.output:
        try:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
        except OSError as exc:
            print(f"cannot write lint report: {exc}", file=sys.stderr)
            return 2
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text)
    return 0 if result.clean else 1


def _parse_weights(entries: Sequence[str]) -> dict[str, float]:
    """Parse repeated ``--weight client=N`` flags into a weight map."""
    import math

    weights: dict[str, float] = {}
    for entry in entries:
        client, sep, raw = entry.partition("=")
        if not sep or not client:
            raise ValueError(f"expected CLIENT=WEIGHT, got {entry!r}")
        weight = float(raw)
        # isfinite: NaN passes a plain `<= 0` check and would silently void
        # the fair queuing the flag exists to configure.
        if not (math.isfinite(weight) and weight > 0.0):
            raise ValueError(f"weight for {client!r} must be positive and finite")
        weights[client] = weight
    return weights


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import os
    import tempfile

    from .service.pool import (
        PoolConfig,
        WorkerPool,
        build_worker_server,
        install_stop_signals,
    )

    if not args.unix and not args.port:
        print("serve needs --unix PATH and/or --port PORT", file=sys.stderr)
        return 2
    try:
        weights = _parse_weights(args.weight or [])
    except ValueError as exc:
        print(f"invalid --weight: {exc}", file=sys.stderr)
        return 2
    if args.rate is not None and args.rate <= 0:
        print("--rate must be positive", file=sys.stderr)
        return 2
    if args.burst is not None and args.burst <= 0:
        print("--burst must be positive", file=sys.stderr)
        return 2
    if args.burst is not None and args.rate is None:
        print("--burst requires --rate (admission control is rate-based)",
              file=sys.stderr)
        return 2
    if args.workers < 1:
        print("--workers must be at least 1", file=sys.stderr)
        return 2
    if args.shared_cache and args.cache_store:
        print("--shared-cache and --cache-store are mutually exclusive "
              "(the store already shares the cache across workers and "
              "restarts)", file=sys.stderr)
        return 2
    if args.fault_plan:
        from . import faults

        # Installed (and exported) *before* any worker forks so every
        # process of the pool sees the same plan; the export also covers a
        # router that re-execs or respawns workers later.
        try:
            if args.fault_plan.lstrip().startswith("{"):
                plan = faults.FaultPlan.from_json(args.fault_plan)
            else:
                plan = faults.FaultPlan.from_file(args.fault_plan)
        except (OSError, ValueError) as exc:
            print(f"invalid --fault-plan: {exc}", file=sys.stderr)
            return 2
        faults.install_plan(plan)
        os.environ[faults.FAULT_PLAN_ENV] = plan.to_json()
        print(f"fault injection armed: {len(plan.faults)} fault(s)"
              + (f", seed {plan.seed}" if plan.seed is not None else ""),
              file=sys.stderr)

    cache_store = args.cache_store
    if args.workers > 1 and args.rate is not None and cache_store is None:
        # Per-worker buckets would admit N*rate fleet-wide; shared admission
        # needs shared state, so conjure a transient store for it.
        cache_store = os.path.join(
            tempfile.mkdtemp(prefix="repro-serve-"), "cache.db"
        )
        print(f"admission control across {args.workers} workers needs shared "
              f"state; using transient cache store {cache_store}",
              file=sys.stderr)

    config = PoolConfig(
        workers=args.workers,
        unix_path=args.unix or None,
        tcp_host=args.host,
        tcp_port=args.port or None,
        cache_store=cache_store,
        window_s=args.window_ms / 1000.0,
        max_batch=args.max_batch,
        weights=weights,
        admission_rate=args.rate,
        admission_burst=args.burst,
        default_timeout_s=args.default_timeout,
    )

    if args.workers > 1:
        try:
            pool = WorkerPool(config)
        except ValueError as exc:
            print(f"invalid serve configuration: {exc}", file=sys.stderr)
            return 2

        def _announce(ready: WorkerPool) -> None:
            if ready.unix_path is not None:
                print(f"plan server listening on unix:{ready.unix_path} "
                      f"({args.workers} workers)", file=sys.stderr)
            if ready.tcp_address is not None:
                print(f"plan server listening on "
                      f"tcp:{ready.tcp_address[0]}:{ready.tcp_address[1]} "
                      f"({args.workers} workers)", file=sys.stderr)

        try:
            pool.run_forever(on_ready=_announce)
        except KeyboardInterrupt:
            pass
        print("plan server stopped", file=sys.stderr)
        return 0

    try:
        if args.shared_cache:
            service = PlanService()  # the process-wide shared cache
            server = PlanServer(
                service=service,
                window_s=config.window_s,
                max_batch=config.max_batch,
                weights=weights,
                admission_rate=args.rate,
                admission_burst=args.burst,
                default_timeout_s=args.default_timeout,
            )
        else:
            server, service = build_worker_server(config)
    except ValueError as exc:
        print(f"invalid serve configuration: {exc}", file=sys.stderr)
        return 2

    async def _serve() -> None:
        loop = asyncio.get_running_loop()
        shutdown = asyncio.Event()
        # SIGTERM from a supervisor/container must drain exactly like ^C:
        # structured shutdown errors for queued work, cache flushed, socket
        # file unlinked — not an abrupt death mid-batch.
        installed = install_stop_signals(loop, shutdown)
        if args.unix:
            await server.start_unix(args.unix)
            print(f"plan server listening on unix:{args.unix}", file=sys.stderr)
        if args.port:
            await server.start_tcp(args.host, args.port)
            assert server.tcp_address is not None
            print(
                f"plan server listening on "
                f"tcp:{server.tcp_address[0]}:{server.tcp_address[1]}",
                file=sys.stderr,
            )
        try:
            await shutdown.wait()
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)
            await server.close()
            service.close()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    print("plan server stopped", file=sys.stderr)
    return 0


# ---------------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Revisiting Co-Processing for Hash Joins on the "
                    "Coupled CPU-GPU Architecture' (VLDB 2013)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    sub_list = subparsers.add_parser("list", help="list the available experiments")
    sub_list.set_defaults(func=cmd_list)

    sub_run = subparsers.add_parser("run", help="run one experiment and print its rows")
    sub_run.add_argument("experiment", help="experiment name (see 'list')")
    sub_run.add_argument("--tuples", type=int, default=None,
                         help="build-relation size (default: the runner's default)")
    sub_run.add_argument("--format", choices=("text", "markdown"), default="text")
    sub_run.set_defaults(func=cmd_run)

    sub_report = subparsers.add_parser("report", help="run every experiment into one report")
    sub_report.add_argument("--tuples", type=int, default=None)
    sub_report.add_argument("--output", default=None, help="write markdown to this file")
    sub_report.add_argument("--only", nargs="*", default=None,
                            help="restrict to these experiment names")
    sub_report.set_defaults(func=cmd_report)

    sub_join = subparsers.add_parser("join", help="run a single co-processed join")
    sub_join.add_argument("--algorithm", choices=("SHJ", "PHJ"), default="PHJ")
    sub_join.add_argument("--scheme", default="PL",
                          help="CPU-only, GPU-only, OL, DD or PL (default PL)")
    sub_join.add_argument("--tuples", type=int, default=200_000)
    sub_join.add_argument("--skew", choices=("uniform", "low-skew", "high-skew"),
                          default="uniform")
    sub_join.add_argument("--architecture", choices=("coupled", "discrete"),
                          default="coupled")
    sub_join.add_argument("--seed", type=int, default=42)
    sub_join.set_defaults(func=cmd_join)

    sub_plan = subparsers.add_parser(
        "plan",
        help="answer a JSON workload of optimisation/what-if requests through "
             "the multi-query plan service",
    )
    sub_plan.add_argument("workload",
                          help="path to a JSON workload file, or '-' to read "
                               "the workload from stdin")
    sub_plan.add_argument("--format", choices=("text", "markdown", "json"),
                          default="text")
    sub_plan.add_argument("--output", default=None, help="write the plans to this file")
    sub_plan.add_argument("--shared-cache", action="store_true",
                          help="use the process-wide estimate cache instead of a "
                               "fresh one (warm across repeated invocations in "
                               "the same process)")
    sub_plan.set_defaults(func=cmd_plan)

    sub_lint = subparsers.add_parser(
        "lint",
        help="run the AST-based invariant checkers (lock discipline, "
             "kernel-parity contracts, NumPy hygiene, async-blocking, wire "
             "precision) over src/ and tests/",
    )
    sub_lint.add_argument("--root", default=".",
                          help="repository root to lint (default: cwd)")
    sub_lint.add_argument("--src", default="src",
                          help="source tree relative to --root (default: src)")
    sub_lint.add_argument("--tests", default="tests",
                          help="test tree relative to --root (default: tests)")
    sub_lint.add_argument("--format", choices=("text", "json"), default="text",
                          help="output format (default text)")
    sub_lint.add_argument("--output", default=None,
                          help="write the report to this file")
    sub_lint.add_argument("--checker", action="append", metavar="ID",
                          help="run only this checker (repeatable; "
                               "default: all)")
    sub_lint.add_argument("--allowlist", default=None, metavar="FILE",
                          help="file of grandfathered finding keys "
                               "(one per line, # comments)")
    sub_lint.add_argument("--show-suppressed", action="store_true",
                          help="also list suppressed and allowlisted findings")
    sub_lint.add_argument("--list-checkers", action="store_true",
                          help="list registered checkers and exit")
    sub_lint.set_defaults(func=cmd_lint)

    sub_serve = subparsers.add_parser(
        "serve",
        help="run the asyncio plan server (JSON-lines protocol, micro-batching "
             "scheduler with per-client fairness) over TCP and/or a unix socket",
    )
    sub_serve.add_argument("--unix", default=None, metavar="PATH",
                           help="listen on a unix domain socket at PATH")
    sub_serve.add_argument("--workers", type=int, default=1,
                           help="pre-fork worker processes (default 1 = "
                                "serve in-process; N>1 runs a router that "
                                "hands accepted connections to N forked "
                                "workers)")
    sub_serve.add_argument("--cache-store", default=None, metavar="PATH",
                           help="SQLite WAL estimate-cache store shared by "
                                "all workers and across restarts (warm "
                                "start); omit for per-process in-memory "
                                "caches")
    sub_serve.add_argument("--host", default="127.0.0.1",
                           help="TCP bind address (default 127.0.0.1)")
    sub_serve.add_argument("--port", type=int, default=0,
                           help="TCP port to listen on (0 = disabled)")
    sub_serve.add_argument("--window-ms", type=float, default=2.0,
                           help="micro-batching coalescing window in ms "
                                "(default 2.0; 0 disables coalescing)")
    sub_serve.add_argument("--max-batch", type=int, default=64,
                           help="max requests per plan_many micro-batch "
                                "(default 64)")
    sub_serve.add_argument("--weight", action="append", metavar="CLIENT=W",
                           help="fair-queuing weight for a client id "
                                "(repeatable; default weight 1)")
    sub_serve.add_argument("--rate", type=float, default=None,
                           help="token-bucket admission: sustained requests/s "
                                "per client (default: unlimited)")
    sub_serve.add_argument("--burst", type=float, default=None,
                           help="token-bucket burst capacity per client "
                                "(default: equal to --rate)")
    sub_serve.add_argument("--default-timeout", type=float, default=None,
                           help="default per-request deadline in seconds for "
                                "submissions that do not set their own")
    sub_serve.add_argument("--shared-cache", action="store_true",
                           help="use the process-wide estimate cache instead "
                                "of a fresh one")
    sub_serve.add_argument("--fault-plan", default=None, metavar="PLAN",
                           help="staging drills: install a deterministic "
                                "fault-injection plan (a JSON file path, or "
                                "inline JSON starting with '{'); forked "
                                "workers inherit it — see "
                                "docs/fault-injection.md")
    sub_serve.set_defaults(func=cmd_serve)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
