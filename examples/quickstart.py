#!/usr/bin/env python3
"""Quickstart: run one co-processed hash join and inspect the outcome.

Generates the paper's default style of workload (two <key, rid> relations,
uniform keys), runs the fine-grained pipelined variant of the partitioned
hash join (PHJ-PL) on the simulated coupled CPU-GPU machine, and prints the
chosen per-step workload ratios, the simulated phase breakdown and the join
result cardinality.

Run with::

    python examples/quickstart.py [n_tuples]
"""

from __future__ import annotations

import sys

from repro import JoinWorkload, run_join


def main() -> None:
    n_tuples = int(sys.argv[1]) if len(sys.argv) > 1 else 200_000
    print(f"Generating a uniform {n_tuples:,} x {n_tuples:,} tuple workload ...")
    workload = JoinWorkload.uniform(build_tuples=n_tuples, probe_tuples=n_tuples, seed=42)

    print("Running PHJ with fine-grained pipelined co-processing (PHJ-PL) ...")
    timing = run_join("PHJ", "PL", workload.build, workload.probe)

    print()
    print(f"variant            : {timing.variant} on the {timing.architecture} architecture")
    print(f"join result        : {timing.result.match_count:,} matching rid pairs")
    print(f"simulated elapsed  : {timing.total_s * 1e3:.2f} ms")
    print(f"cost-model estimate: {timing.estimated_s * 1e3:.2f} ms")

    print("\nPer-phase breakdown (simulated seconds):")
    for name, value in timing.breakdown().items():
        print(f"  {name:16s} {value:.6f}")

    print("\nWorkload ratios chosen by the cost model (CPU share per step):")
    for phase, ratios in timing.ratios_by_phase().items():
        formatted = ", ".join(f"{r:.2f}" for r in ratios)
        print(f"  {phase:10s} [{formatted}]")

    print("\nThe GPU takes (almost) all of the hash-computation steps (n1/b1/p1)")
    print("while memory-bound steps are shared — the core observation of the paper.")


if __name__ == "__main__":
    main()
