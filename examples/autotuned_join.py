#!/usr/bin/env python3
"""Automatic tuning of the co-processing design space.

The paper argues that the fine-grained design space (algorithm, scheme,
workload ratios, allocator block size, shared vs. separate hash tables) has
too many knobs to tune by hand and shows that its cost model makes the choice
automatic.  This example uses :class:`repro.JoinPlanner` to tune those knobs
on a pilot sample of a skewed workload, prints the ranking of the candidate
configurations, and runs the chosen one on the full input.

Run with::

    python examples/autotuned_join.py [n_tuples]
"""

from __future__ import annotations

import sys

from repro import JoinPlanner, JoinWorkload, Scheme, coupled_machine


def main() -> None:
    n_tuples = int(sys.argv[1]) if len(sys.argv) > 1 else 200_000
    workload = JoinWorkload.skewed("low-skew", n_tuples, n_tuples, seed=7)

    planner = JoinPlanner(machine=coupled_machine(), pilot_fraction=0.05)
    print("Planning on a pilot sample of the workload ...")
    plan = planner.plan(workload.build, workload.probe)

    print("\nCandidate configurations (pilot-scale measured time):")
    for candidate in plan.ranking():
        config = candidate.config
        print(
            f"  {candidate.name:14s} allocator block {config.join_config.allocator_block_bytes:>6d} B, "
            f"shared table={config.shared_hash_table!s:5s}  ->  {candidate.measured_s * 1e3:8.3f} ms"
        )

    chosen = plan.chosen.config
    print(
        f"\nChosen configuration: {chosen.name} "
        f"(allocator block {chosen.join_config.allocator_block_bytes} B, "
        f"shared hash table: {chosen.shared_hash_table})"
    )

    print("\nRunning the chosen configuration on the full workload ...")
    timing = planner.plan_and_run(workload.build, workload.probe)
    print(f"  simulated elapsed : {timing.total_s * 1e3:.2f} ms")
    print(f"  join cardinality  : {timing.result.match_count:,} rid pairs")
    print(f"  ratios            : {timing.ratios_by_phase()}")


if __name__ == "__main__":
    main()
