#!/usr/bin/env python3
"""Cookbook: serve many what-if/optimisation questions in one batch.

A planning service (think: the optimiser endpoint of an HTAP system) receives
a burst of heterogeneous requests — "give me the best PL ratios for this
join", "would OL beat DD here?", "what if I pin the build phase to the GPU?"
— many of them over the same few calibrated step series.  This example feeds
32 mixed PL/OL/DD/what-if requests through :class:`repro.service.PlanService`
and shows the two wins over calling ``optimize_scheme`` per request:

* requests over the same step series are grouped, their candidate-ratio
  grids stacked, and evaluated by ~one vectorized engine call per series;
* the process-wide ``SharedEstimateCache`` stays warm, so re-planning the
  same workload a second time is answered almost entirely from cache.

Run with::

    python examples/multi_query_service.py [n_steps]
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.costmodel import StepCost, optimize_scheme
from repro.service import PlanRequest, PlanService, SharedEstimateCache


def calibrated_series(seed: int, n_steps: int) -> tuple[StepCost, ...]:
    """A synthetic calibrated step series (stands in for a pilot execution)."""
    rng = np.random.default_rng(seed)
    return tuple(
        StepCost(
            f"s{i}",
            int(rng.integers(50_000, 250_000)),
            cpu_unit_s=float(rng.uniform(2e-9, 2e-8)),
            gpu_unit_s=float(rng.uniform(1e-9, 2e-8)),
        )
        for i in range(n_steps)
    )


def build_workload(n_steps: int) -> list[PlanRequest]:
    """32 mixed requests over three distinct join workloads."""
    series = [calibrated_series(seed, n_steps) for seed in (11, 23, 31)]
    schemes = ("PL", "OL", "DD")
    requests = []
    for i in range(30):
        requests.append(
            PlanRequest(
                steps=series[(i // 3) % 3],
                scheme=schemes[i % 3],
                request_id=f"q{i:02d}",
            )
        )
    # Two what-if questions: all-GPU and an even split on workload 0.
    requests.append(
        PlanRequest(steps=series[0], scheme="WHAT-IF",
                    ratios=(0.0,) * n_steps, request_id="wi-gpu")
    )
    requests.append(
        PlanRequest(steps=series[0], scheme="WHAT-IF",
                    ratios=(0.5,) * n_steps, request_id="wi-even")
    )
    return requests


def main() -> None:
    n_steps = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    requests = build_workload(n_steps)

    start = time.perf_counter()
    sequential = [
        optimize_scheme(r.scheme, r.steps) for r in requests if r.scheme != "WHAT-IF"
    ]
    sequential_s = time.perf_counter() - start

    service = PlanService(cache=SharedEstimateCache())
    start = time.perf_counter()
    responses = service.plan_many(requests)
    service_s = time.perf_counter() - start

    start = time.perf_counter()
    service.plan_many(requests)  # the repeated workload hits the warm cache
    warm_s = time.perf_counter() - start

    print(f"{'request':>8s} {'scheme':>8s} {'total ms':>9s} {'evals':>6s} {'group':>6s}")
    for response in responses[:6]:
        print(
            f"{response.request_id:>8s} {response.scheme:>8s} "
            f"{response.total_s * 1e3:>9.3f} {response.evaluations:>6d} "
            f"{response.group_size:>6d}"
        )
    print(f"     ... {len(responses) - 6} more")

    stats = service.stats()
    print()
    print(f"sequential optimize_scheme x{len(sequential)}: {sequential_s * 1e3:8.1f} ms")
    print(f"service.plan_many (cold cache)       : {service_s * 1e3:8.1f} ms "
          f"({sequential_s / service_s:.1f}x)")
    print(f"service.plan_many (warm cache)       : {warm_s * 1e3:8.1f} ms "
          f"({sequential_s / warm_s:.1f}x)")
    print(f"unique tasks solved: {stats['tasks_solved']} "
          f"for {stats['requests_served']} requests "
          f"({stats['requests_deduplicated']} deduplicated); "
          f"cache hit rate {stats['cache']['hit_rate']:.1%}")


if __name__ == "__main__":
    main()
