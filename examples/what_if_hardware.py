#!/usr/bin/env python3
"""What-if study: how do the optimal ratios shift on future coupled chips?

The paper conjectures that its fine-grained design space applies to other
heterogeneous processors.  Because the reproduction runs on a parameterised
machine model, we can ask what happens when the integrated GPU grows: this
example scales the GPU core count of the simulated APU and reports how the
cost model re-balances the per-step workload ratios of SHJ-PL and how the
end-to-end elapsed time responds.

Run with::

    python examples/what_if_hardware.py [n_tuples]
"""

from __future__ import annotations

import sys
from dataclasses import replace

from repro import JoinWorkload, Machine, run_join
from repro.hardware import COUPLED_A8_3870K


def machine_with_gpu_cores(cores: int) -> Machine:
    """A coupled machine whose integrated GPU has the given core count."""
    spec = replace(
        COUPLED_A8_3870K,
        gpu=COUPLED_A8_3870K.gpu.scaled(cores=cores),
        name=f"hypothetical APU ({cores} GPU cores)",
    )
    return Machine(spec)


def main() -> None:
    n_tuples = int(sys.argv[1]) if len(sys.argv) > 1 else 150_000
    workload = JoinWorkload.uniform(n_tuples, n_tuples, seed=11)

    print(f"{'GPU cores':>10s} {'elapsed ms':>11s} {'CPU share (build)':>19s} {'CPU share (probe)':>19s}")
    for cores in (100, 400, 800, 1600):
        machine = machine_with_gpu_cores(cores)
        timing = run_join("SHJ", "PL", workload.build, workload.probe, machine=machine)
        ratios = timing.ratios_by_phase()
        build_share = sum(ratios["build"]) / len(ratios["build"])
        probe_share = sum(ratios["probe"]) / len(ratios["probe"])
        print(
            f"{cores:>10d} {timing.total_s * 1e3:>11.2f} "
            f"{build_share:>19.2f} {probe_share:>19.2f}"
        )

    print()
    print("As the integrated GPU grows, the cost model shifts work away from the CPU")
    print("and the join accelerates — but memory-bound steps keep a CPU share far")
    print("longer than the compute-bound hash steps do.")


if __name__ == "__main__":
    main()
