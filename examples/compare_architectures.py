#!/usr/bin/env python3
"""Discrete vs. coupled architecture: where does the time go?

Reproduces the Figure 3 experiment of the paper as a standalone script: the
same SHJ-DD / PHJ-DD joins are executed on the emulated discrete machine
(PCI-e transfers, separate hash tables that must be merged) and on the
coupled APU (no transfers, shared hash table), and the per-component time
breakdown is printed side by side.

Run with::

    python examples/compare_architectures.py [n_tuples]
"""

from __future__ import annotations

import sys

from repro import JoinWorkload, coupled_machine, discrete_machine, run_join


def describe(timing) -> dict[str, float]:
    breakdown = timing.breakdown()
    total = breakdown["total_s"]
    return {
        "total_ms": total * 1e3,
        "transfer_pct": 100.0 * breakdown["data_transfer_s"] / total if total else 0.0,
        "merge_pct": 100.0 * breakdown["merge_s"] / total if total else 0.0,
        "build_ms": breakdown["build_s"] * 1e3,
        "probe_ms": breakdown["probe_s"] * 1e3,
        "partition_ms": breakdown["partition_s"] * 1e3,
    }


def main() -> None:
    n_tuples = int(sys.argv[1]) if len(sys.argv) > 1 else 200_000
    workload = JoinWorkload.uniform(n_tuples, n_tuples, seed=42)

    header = (
        f"{'variant':10s} {'arch':9s} {'total ms':>9s} {'transfer %':>11s} "
        f"{'merge %':>8s} {'partition ms':>13s} {'build ms':>9s} {'probe ms':>9s}"
    )
    print(header)
    print("-" * len(header))

    for algorithm in ("SHJ", "PHJ"):
        for arch_name, factory in (("discrete", discrete_machine), ("coupled", coupled_machine)):
            timing = run_join(algorithm, "DD", workload.build, workload.probe, machine=factory())
            d = describe(timing)
            print(
                f"{algorithm + '-DD':10s} {arch_name:9s} {d['total_ms']:9.2f} "
                f"{d['transfer_pct']:11.1f} {d['merge_pct']:8.1f} "
                f"{d['partition_ms']:13.2f} {d['build_ms']:9.2f} {d['probe_ms']:9.2f}"
            )

    print()
    print("On the discrete machine the PCI-e transfer costs a few percent of the total")
    print("and the merge of per-device hash tables costs even more; the coupled")
    print("architecture eliminates both (Section 5.2 of the paper).")


if __name__ == "__main__":
    main()
