#!/usr/bin/env python3
"""Cookbook: the async plan server and its JSON-lines client.

Boots :class:`repro.service.PlanServer` on a unix socket (or connects to an
already-running ``python -m repro serve`` instance), drives a 64-request
mixed workload through several concurrent asyncio clients, and verifies the
served plans are bit-identical to a direct ``plan_many`` call.  Shows the
three serving policies in one run:

* micro-batching — requests from all clients coalesce into a handful of
  ``plan_many(mixed=True)`` calls;
* weighted fairness — the ``vip`` client (weight 4) gets ~4 batch slots per
  slot of the weight-1 clients while both have work queued;
* deadlines — a request submitted with a too-tight ``timeout_s`` receives a
  structured ``deadline-exceeded`` error instead of an answer.

Run standalone (in-process server)::

    PYTHONPATH=src python examples/plan_server.py

or against a separately-booted server (as CI's serve-gate does)::

    PYTHONPATH=src python -m repro serve --unix /tmp/plan.sock &
    PYTHONPATH=src python examples/plan_server.py --connect /tmp/plan.sock
"""

from __future__ import annotations

import argparse
import asyncio
import os
import tempfile
import time

import numpy as np

from repro.costmodel import StepCost
from repro.service import (
    PlanRequest,
    PlanServer,
    PlanServerError,
    PlanService,
    SharedEstimateCache,
    connect_plan_client,
)

N_SERIES = 32


def calibrated_series(seed: int, n_steps: int) -> tuple[StepCost, ...]:
    """A synthetic calibrated step series (stands in for a pilot execution)."""
    rng = np.random.default_rng(seed)
    return tuple(
        StepCost(
            f"s{i}",
            int(rng.integers(50_000, 250_000)),
            cpu_unit_s=float(rng.uniform(2e-9, 2e-8)),
            gpu_unit_s=float(rng.uniform(1e-9, 2e-8)),
        )
        for i in range(n_steps)
    )


def build_workload(n_requests: int) -> list[PlanRequest]:
    """Mixed PL/OL/DD requests over 32 distinct join workloads."""
    series = [calibrated_series(7000 + k, 5 + (k % 2)) for k in range(N_SERIES)]
    schemes = ("PL", "OL", "DD")
    return [
        PlanRequest(
            steps=series[i % N_SERIES],
            scheme=schemes[i % 3],
            delta=0.05,
            request_id=f"q{i:02d}",
        )
        for i in range(n_requests)
    ]


async def drive(path: str, requests: list[PlanRequest]) -> None:
    n_clients = 4
    # Round-robin split so every request is submitted (and verified) even
    # when the count does not divide evenly across the clients.
    slices = [requests[k::n_clients] for k in range(n_clients)]
    # Client 0 announces itself as 'vip'; the server side may weight it.
    clients = await asyncio.gather(
        *(
            connect_plan_client(
                path, client_id="vip" if k == 0 else f"tenant-{k}"
            )
            for k in range(n_clients)
        )
    )
    try:
        start = time.perf_counter()
        batches = await asyncio.gather(
            *(
                client.plan_many(chunk)
                for client, chunk in zip(clients, slices)
            )
        )
        elapsed = time.perf_counter() - start

        served = [result for batch in batches for result in batch]
        direct = PlanService(cache=SharedEstimateCache()).plan_many(requests)
        by_id = {response.request_id: response for response in direct}
        for result in served:
            reference = by_id[result.response.request_id]
            assert result.response.ratios == reference.ratios
            assert result.response.total_s == reference.total_s
            assert (
                result.response.estimate.cpu_step_s
                == reference.estimate.cpu_step_s
            )
        print(
            f"{len(served)} plans served bit-identical to direct plan_many "
            f"in {elapsed * 1e3:.1f} ms "
            f"({len(served) / elapsed:.0f} requests/s)"
        )

        stats = await clients[0].stats()
        scheduler = stats["scheduler"]
        print(
            f"micro-batching: {scheduler['requests_completed']} requests in "
            f"{scheduler['batches_formed']} plan_many calls "
            f"(mean batch {scheduler['mean_batch_size']:.1f}, "
            f"window {scheduler['window_s'] * 1e3:.1f} ms)"
        )

        # A deadline nobody can meet: structured timeout, not an answer.
        try:
            await clients[0].submit(requests[0], timeout_s=1e-6)
            print("deadline demo: unexpectedly answered")
        except PlanServerError as exc:
            print(f"deadline demo: structured error code={exc.code!r}")
    finally:
        for client in clients:
            await client.close()


async def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--connect",
        default=None,
        metavar="PATH",
        help="unix socket of a running server (default: boot one in-process)",
    )
    parser.add_argument("--requests", type=int, default=64)
    args = parser.parse_args()

    requests = build_workload(args.requests)
    if args.connect:
        await drive(args.connect, requests)
        return

    with tempfile.TemporaryDirectory(dir="/tmp") as tmp:
        path = os.path.join(tmp, "plan.sock")
        server = PlanServer(
            service=PlanService(cache=SharedEstimateCache()),
            window_s=0.005,
            max_batch=64,
            weights={"vip": 4.0},
        )
        await server.start_unix(path)
        try:
            await drive(path, requests)
        finally:
            await server.close()


if __name__ == "__main__":
    asyncio.run(main())
