#!/usr/bin/env python3
"""Joining relations larger than the zero copy buffer (paper Appendix).

The APU's zero copy buffer is small (512 MB on the A8-3870K), so larger
inputs are staged through it: partition chunk by chunk inside the buffer,
copy the partitions out to system memory, then join each partition pair
in-buffer with PHJ-PL.  This example shrinks the simulated buffer so the
out-of-buffer path triggers at demo scale and prints the Figure 19 style
breakdown (partition / join / data-copy time) for a sweep of input sizes.

Run with::

    python examples/out_of_buffer_join.py
"""

from __future__ import annotations

from repro.core import external_pair_joiner
from repro.data import JoinWorkload
from repro.experiments import small_buffer_machine
from repro.hashjoin import ExternalHashJoin


def main() -> None:
    buffer_bytes = 2 * 1024 * 1024  # 2 MB stand-in for the paper's 512 MB
    sizes = (50_000, 100_000, 200_000, 400_000)

    header = (
        f"{'tuples/relation':>16s} {'fits?':>6s} {'partitions':>11s} "
        f"{'partition ms':>13s} {'join ms':>9s} {'copy ms':>9s} {'copy %':>7s} {'matches':>10s}"
    )
    print(f"Zero copy buffer: {buffer_bytes // 1024} KB (scaled stand-in)")
    print(header)
    print("-" * len(header))

    for n_tuples in sizes:
        workload = JoinWorkload.uniform(n_tuples, n_tuples, seed=3)
        machine = small_buffer_machine(buffer_bytes)
        joiner = external_pair_joiner("PHJ", "PL", machine=machine)
        external = ExternalHashJoin(joiner, machine=machine, chunk_tuples=100_000)
        run = external.run(workload.build, workload.probe)
        b = run.breakdown
        copy_pct = 100.0 * b.data_copy_s / b.total_s if b.total_s else 0.0
        print(
            f"{n_tuples:>16,} {str(run.fits_in_buffer):>6s} {run.n_super_partitions:>11d} "
            f"{b.partition_s * 1e3:>13.2f} {b.join_s * 1e3:>9.2f} {b.data_copy_s * 1e3:>9.2f} "
            f"{copy_pct:>7.1f} {run.result.match_count:>10,}"
        )

    print()
    print("Partition and join time grow roughly linearly with the input; the staging")
    print("copies stay a small fraction of the total, as the paper reports (~4%).")


if __name__ == "__main__":
    main()
