"""The serving stack: wire protocol, micro-batching scheduler (fairness,
admission, deadlines) and the asyncio JSON-lines server/client pair.

The load-bearing guarantees pinned here (ISSUE 4):

* served plans are **bit-identical** to direct ``plan_many`` calls — the
  scheduler only changes which requests share a micro-batch, never how a
  task is solved, and the wire format round-trips floats exactly;
* a backlogged weight-1 client cannot starve a weight-4 client;
* a deadline-expired request gets a structured ``deadline-exceeded`` error
  and never touches the shared :class:`EstimateCache`.
"""

from __future__ import annotations

import asyncio
import json
import os
import socket
import tempfile
import time

import numpy as np
import pytest

from repro.costmodel import StepCost, optimize_scheme
from repro.service import (
    ERROR_ADMISSION,
    ERROR_DEADLINE,
    ERROR_INVALID,
    ERROR_SHUTDOWN,
    ERROR_UNSUPPORTED_VERSION,
    Envelope,
    ErrorReply,
    MicroBatchScheduler,
    PlanRequest,
    PlanResult,
    PlanServer,
    PlanServerError,
    PlanService,
    PlanSubmit,
    ProtocolError,
    SchedulerError,
    SharedEstimateCache,
    TokenBucket,
    WorkloadError,
    clear_stale_unix_socket,
    connect_plan_client,
    dedup_tasks,
)
from repro.service.protocol import (
    KIND_ERROR,
    KIND_HELLO,
    KIND_HELLO_OK,
    KIND_PLAN_RESULT,
    negotiate_version,
    response_from_wire,
    response_to_wire,
)


def random_steps(rng: np.random.Generator, n: int) -> tuple[StepCost, ...]:
    return tuple(
        StepCost(
            f"s{i}",
            int(rng.integers(10_000, 200_000)),
            cpu_unit_s=float(rng.uniform(1e-9, 5e-8)),
            gpu_unit_s=float(rng.uniform(1e-9, 5e-8)),
            intermediate_bytes_per_tuple=float(rng.uniform(0.0, 16.0)),
        )
        for i in range(n)
    )


def mixed_requests(n_requests: int, n_series: int, seed: int = 0) -> list[PlanRequest]:
    rng = np.random.default_rng(seed)
    series = [random_steps(rng, 4 + (k % 3)) for k in range(n_series)]
    schemes = ("PL", "OL", "DD")
    return [
        PlanRequest(
            steps=series[i % n_series],
            scheme=schemes[i % 3],
            request_id=f"q{i:02d}",
        )
        for i in range(n_requests)
    ]


def fresh_service() -> PlanService:
    return PlanService(cache=SharedEstimateCache())


def run_with_scheduler(coro_fn, **scheduler_kwargs):
    """Run ``coro_fn(scheduler, service)`` against a started scheduler."""

    async def go():
        service = scheduler_kwargs.pop("service", None) or fresh_service()
        scheduler = MicroBatchScheduler(
            service, use_executor=False, **scheduler_kwargs
        )
        await scheduler.start()
        try:
            return await coro_fn(scheduler, service)
        finally:
            await scheduler.close()

    return asyncio.run(go())


def run_with_server(coro_fn, **server_kwargs):
    """Run ``coro_fn(server, path)`` against a unix-socket server."""

    async def go():
        with tempfile.TemporaryDirectory(dir="/tmp") as tmp:
            path = os.path.join(tmp, "plan.sock")
            server = PlanServer(**server_kwargs)
            await server.start_unix(path)
            try:
                return await coro_fn(server, path)
            finally:
                await server.close()

    return asyncio.run(go())


# ---------------------------------------------------------------------------
# Protocol layer.
# ---------------------------------------------------------------------------
class TestEnvelope:
    def test_json_round_trip(self):
        env = Envelope(kind="hello", payload={"client": "a"}, seq=7)
        clone = Envelope.from_json(env.to_json())
        assert clone == env
        assert clone.version == 1

    def test_bytes_are_one_line(self):
        env = Envelope(kind="x", payload={"s": "multi\nline"})
        raw = env.to_bytes()
        assert raw.endswith(b"\n")
        assert raw.count(b"\n") == 1

    @pytest.mark.parametrize(
        "line",
        [
            "{not json",
            "[1, 2]",
            '{"payload": {}}',  # no kind
            '{"kind": 3}',
            '{"kind": "x", "v": "one"}',
            '{"kind": "x", "v": true}',
            '{"kind": "x", "seq": "a"}',
            '{"kind": "x", "payload": []}',
        ],
    )
    def test_malformed_envelopes_raise(self, line):
        with pytest.raises(ProtocolError):
            Envelope.from_json(line)

    def test_version_negotiation(self):
        assert negotiate_version(1) == 1
        with pytest.raises(ProtocolError) as excinfo:
            negotiate_version(99)
        assert excinfo.value.code == ERROR_UNSUPPORTED_VERSION


class TestWireFidelity:
    def test_response_round_trips_bit_exactly(self):
        """Wire serialisation must not lose a single bit of any float —
        awkward values (0.1+0.2, tiny subnormals, long descents) included."""
        steps = random_steps(np.random.default_rng(3), 5)
        response = fresh_service().plan(PlanRequest(steps=steps, scheme="PL"))
        # Make the payload deliberately awkward.
        response.ratios[0] = 0.1 + 0.2
        response.estimate.cpu_step_s[1] = 3.141592653589793e-17
        wire = json.loads(json.dumps(response_to_wire(response)))
        clone = response_from_wire(wire)
        assert clone.ratios == response.ratios
        assert clone.estimate.cpu_step_s == response.estimate.cpu_step_s
        assert clone.estimate.gpu_delay_s == response.estimate.gpu_delay_s
        assert clone.total_s == response.total_s
        assert clone.request_id == response.request_id
        assert clone.evaluations == response.evaluations

    def test_result_envelope_round_trip(self):
        steps = random_steps(np.random.default_rng(4), 3)
        response = fresh_service().plan(PlanRequest(steps=steps, scheme="DD"))
        result = PlanResult(response=response, queued_s=0.25, batch_size=8)
        clone = PlanResult.from_envelope(
            Envelope.from_json(result.envelope(seq=3).to_json())
        )
        assert clone.queued_s == 0.25
        assert clone.batch_size == 8
        assert clone.response.ratios == response.ratios
        assert clone.response.total_s == response.total_s

    def test_submit_envelope_round_trip(self):
        steps = random_steps(np.random.default_rng(5), 3)
        submit = PlanSubmit(
            request=PlanRequest(steps=steps, scheme="OL", request_id="s1"),
            timeout_s=0.5,
        )
        clone = PlanSubmit.from_envelope(
            Envelope.from_json(submit.envelope(seq=1).to_json())
        )
        assert clone.request == submit.request
        assert clone.timeout_s == 0.5

    def test_submit_rejects_bad_payloads(self):
        steps = random_steps(np.random.default_rng(6), 2)
        good = PlanRequest(steps=steps, scheme="PL").to_dict()
        for payload in (
            {},
            {"request": "nope"},
            {"request": {"scheme": "PL"}},  # WorkloadError -> ProtocolError
            {"request": good, "timeout_s": "fast"},
            {"request": good, "timeout_s": 0.0},
            {"request": good, "timeout_s": -1.0},
        ):
            with pytest.raises(ProtocolError):
                PlanSubmit.from_envelope(Envelope(kind="plan.submit", payload=payload))

    def test_error_reply_round_trip(self):
        error = ErrorReply(
            code=ERROR_DEADLINE,
            message="too slow",
            request_id="q1",
            detail={"queued_s": 1.5},
        )
        clone = ErrorReply.from_envelope(
            Envelope.from_json(error.envelope(seq=9).to_json())
        )
        assert clone == error

    def test_error_reply_rejects_bad_payloads(self):
        with pytest.raises(ProtocolError):
            ErrorReply.from_envelope(Envelope(kind=KIND_ERROR, payload={}))
        with pytest.raises(ProtocolError):
            ErrorReply.from_envelope(
                Envelope(kind=KIND_ERROR, payload={"code": "x", "detail": 3})
            )

    def test_result_parse_rejects_bad_payloads(self):
        for payload in (
            {},
            {"plan": 3},
            {"plan": {"ratios": "x", "estimate": {}}},
            {"plan": {"ratios": [0.5], "estimate": {"ratios": [0.5]}}},
        ):
            with pytest.raises(ProtocolError):
                PlanResult.from_envelope(
                    Envelope(kind=KIND_PLAN_RESULT, payload=payload)
                )


# ---------------------------------------------------------------------------
# Scheduler policies.
# ---------------------------------------------------------------------------
class TestTokenBucket:
    def test_burst_then_rejects(self):
        clock = lambda: 100.0  # frozen clock: no refill
        bucket = TokenBucket(rate=1.0, burst=3.0, clock=clock)
        assert all(bucket.try_acquire() for _ in range(3))
        assert not bucket.try_acquire()

    def test_refills_at_rate(self):
        now = [0.0]
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=lambda: now[0])
        assert bucket.try_acquire() and bucket.try_acquire()
        assert not bucket.try_acquire()
        now[0] = 0.5  # 1 token refilled
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_never_exceeds_capacity(self):
        now = [0.0]
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=lambda: now[0])
        now[0] = 100.0
        assert bucket.try_acquire() and bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_rejects_bad_parameters(self):
        for rate, burst in ((0.0, 1.0), (1.0, 0.0), (-1.0, 1.0)):
            with pytest.raises(ValueError):
                TokenBucket(rate=rate, burst=burst)


class TestSchedulerBatching:
    def test_window_coalesces_across_clients_into_one_plan_many(self):
        requests = mixed_requests(12, 3, seed=1)

        async def go(scheduler, service):
            results = await asyncio.gather(
                *(
                    scheduler.submit(r, client_id=f"c{i % 4}")
                    for i, r in enumerate(requests)
                )
            )
            return results

        results = run_with_scheduler(go, window_s=0.05, max_batch=64)
        assert all(r.batch_size == 12 for r in results)
        assert {r.response.request_id for r in results} == {
            r.request_id for r in requests
        }

    def test_batched_answers_bit_identical_to_direct_plan_many(self):
        requests = mixed_requests(16, 4, seed=2)

        async def go(scheduler, service):
            return await asyncio.gather(
                *(
                    scheduler.submit(r, client_id=f"c{i % 3}")
                    for i, r in enumerate(requests)
                )
            )

        results = run_with_scheduler(go, window_s=0.02)
        direct = fresh_service().plan_many(requests)
        by_id = {r.request_id: r for r in direct}
        for result in results:
            reference = by_id[result.response.request_id]
            assert result.response.ratios == reference.ratios
            assert result.response.total_s == reference.total_s
            assert result.response.estimate.cpu_step_s == reference.estimate.cpu_step_s
            assert result.response.estimate.gpu_delay_s == reference.estimate.gpu_delay_s

    def test_max_batch_splits_but_answers_everything(self):
        requests = mixed_requests(10, 2, seed=3)

        async def go(scheduler, service):
            return await asyncio.gather(
                *(scheduler.submit(r) for r in requests)
            )

        results = run_with_scheduler(go, window_s=0.02, max_batch=4)
        assert all(r.batch_size <= 4 for r in results)
        assert len(results) == 10

    def test_submit_before_start_is_structured_shutdown(self):
        async def go():
            scheduler = MicroBatchScheduler(fresh_service(), use_executor=False)
            with pytest.raises(SchedulerError) as excinfo:
                await scheduler.submit(mixed_requests(1, 1)[0])
            assert excinfo.value.code == ERROR_SHUTDOWN

        asyncio.run(go())

    def test_close_fails_queued_requests_structurally(self):
        request = mixed_requests(1, 1, seed=4)[0]

        async def go():
            scheduler = MicroBatchScheduler(
                fresh_service(), use_executor=False, window_s=10.0
            )
            await scheduler.start()
            pending = asyncio.get_running_loop().create_task(
                scheduler.submit(request)
            )
            await asyncio.sleep(0.01)  # queued, inside the 10s window
            await scheduler.close()
            with pytest.raises(SchedulerError) as excinfo:
                await pending
            assert excinfo.value.code == ERROR_SHUTDOWN

        asyncio.run(go())

    def test_close_mid_batch_fails_inflight_futures(self):
        """Closing while a batch is inside plan_many must fail that batch's
        awaiters with a structured shutdown error, not hang them forever
        (the futures are already off the queues, so the shutdown drain
        cannot reach them)."""
        request = mixed_requests(1, 1, seed=23)[0]

        async def go():
            service = fresh_service()
            slow_plan_many = service.plan_many

            def stalling_plan_many(batch):
                time.sleep(0.2)  # hold the executor mid-batch
                return slow_plan_many(batch)

            service.plan_many = stalling_plan_many
            scheduler = MicroBatchScheduler(service, window_s=0.0)
            await scheduler.start()
            pending = asyncio.get_running_loop().create_task(
                scheduler.submit(request)
            )
            await asyncio.sleep(0.05)  # batch formed, stuck in the executor
            await scheduler.close()
            with pytest.raises(SchedulerError) as excinfo:
                await asyncio.wait_for(pending, timeout=2.0)
            assert excinfo.value.code == ERROR_SHUTDOWN

        asyncio.run(go())

    def test_rejects_bad_knobs(self):
        service = fresh_service()
        with pytest.raises(ValueError):
            MicroBatchScheduler(service, window_s=-0.1)
        with pytest.raises(ValueError):
            MicroBatchScheduler(service, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatchScheduler(service, default_weight=0.0)
        with pytest.raises(ValueError):
            MicroBatchScheduler(service, admission_rate=-1.0)
        with pytest.raises(ValueError):
            MicroBatchScheduler(service, admission_rate=1.0, admission_burst=0.0)
        with pytest.raises(ValueError):
            MicroBatchScheduler(service, weights={"a": 0.0})
        scheduler = MicroBatchScheduler(service)
        with pytest.raises(ValueError):
            scheduler.set_weight("a", 0.0)


class TestSchedulerFairness:
    def test_weighted_share_within_a_backlogged_batch(self):
        """With both clients backlogged, a weight-4 client takes ~4 slots
        per weight-1 slot in every formed batch."""
        requests = mixed_requests(24, 2, seed=5)

        async def go(scheduler, service):
            jobs = []
            for i in range(12):
                jobs.append(scheduler.submit(requests[i], client_id="light"))
            for i in range(12, 24):
                jobs.append(scheduler.submit(requests[i], client_id="heavy"))
            await asyncio.gather(*jobs)
            return list(scheduler.batch_log)

        log = run_with_scheduler(
            go, window_s=0.05, max_batch=5, weights={"heavy": 4.0}
        )
        first = log[0]
        assert first["heavy"] >= 3 * max(first.get("light", 0), 1)

    def test_flooding_weight1_client_cannot_starve_weight4_client(self):
        """The satellite scenario: a slow weight-1 client floods the queue;
        a weight-4 client arriving later must be served while the flood
        still has backlog, not after it drains."""
        flood = mixed_requests(30, 3, seed=6)
        vip = [
            PlanRequest(steps=r.steps, scheme=r.scheme, request_id=f"vip-{i}")
            for i, r in enumerate(mixed_requests(4, 2, seed=7))
        ]

        async def go(scheduler, service):
            flood_jobs = [
                asyncio.get_running_loop().create_task(
                    scheduler.submit(r, client_id="flood")
                )
                for r in flood
            ]
            await asyncio.sleep(0.06)  # let at least one flood batch form
            vip_jobs = [
                asyncio.get_running_loop().create_task(
                    scheduler.submit(r, client_id="vip")
                )
                for r in vip
            ]
            await asyncio.gather(*flood_jobs, *vip_jobs)
            return list(scheduler.batch_log)

        log = run_with_scheduler(
            go, window_s=0.02, max_batch=4, weights={"vip": 4.0}
        )
        first_vip_batch = next(i for i, c in enumerate(log) if c.get("vip"))
        flood_after_vip = sum(
            c.get("flood", 0) for c in log[first_vip_batch + 1 :]
        )
        # The vip client overtook queued flood requests: flood work was still
        # being served in batches after the vip was answered.
        assert flood_after_vip > 0
        assert first_vip_batch < len(log) - 1

    def test_admission_rejects_flood_with_structured_error(self):
        requests = mixed_requests(6, 1, seed=8)

        async def go(scheduler, service):
            accepted, rejected = 0, 0
            for r in requests:
                try:
                    await scheduler.submit(r, client_id="greedy")
                    accepted += 1
                except SchedulerError as exc:
                    assert exc.code == ERROR_ADMISSION
                    rejected += 1
            return accepted, rejected, scheduler.requests_rejected

        accepted, rejected, counted = run_with_scheduler(
            go, window_s=0.01, admission_rate=0.001, admission_burst=2.0
        )
        assert accepted == 2
        assert rejected == 4
        assert counted == 4

    def test_admission_is_per_client(self):
        requests = mixed_requests(4, 1, seed=9)

        async def go(scheduler, service):
            a = asyncio.get_running_loop().create_task(
                scheduler.submit(requests[0], client_id="a")
            )
            b = asyncio.get_running_loop().create_task(
                scheduler.submit(requests[1], client_id="b")
            )
            await asyncio.gather(a, b)
            return scheduler.requests_rejected

        rejected = run_with_scheduler(
            go, window_s=0.01, admission_rate=0.001, admission_burst=1.0
        )
        assert rejected == 0


class TestSchedulerDeadlines:
    def test_expired_request_gets_structured_timeout(self):
        request = mixed_requests(1, 1, seed=10)[0]

        async def go(scheduler, service):
            with pytest.raises(SchedulerError) as excinfo:
                # The deadline (1 ms) expires inside the 50 ms window.
                await scheduler.submit(request, timeout_s=0.001)
            assert excinfo.value.code == ERROR_DEADLINE
            assert request.request_id in str(excinfo.value)
            return scheduler.requests_timed_out

        timed_out = run_with_scheduler(go, window_s=0.05)
        assert timed_out == 1

    def test_timeout_does_not_poison_shared_cache(self):
        """An expired request never reaches plan_many: the shared cache sees
        zero lookups and zero inserts, and the identical question asked
        again afterwards is answered correctly from a clean slate."""
        request = mixed_requests(1, 1, seed=11)[0]

        async def go(scheduler, service):
            cache = service.cache
            with pytest.raises(SchedulerError):
                await scheduler.submit(request, timeout_s=0.001)
            assert cache.hits == 0
            assert cache.misses == 0
            assert len(cache) == 0
            # The same question, now with time to answer.
            result = await scheduler.submit(request, timeout_s=30.0)
            reference = optimize_scheme(
                request.scheme, list(request.steps), request.delta
            )
            assert result.response.ratios == reference.ratios
            assert result.response.total_s == reference.total_s
            assert cache.misses > 0

        run_with_scheduler(go, window_s=0.05)

    def test_default_timeout_applies_when_submit_has_none(self):
        request = mixed_requests(1, 1, seed=12)[0]

        async def go(scheduler, service):
            with pytest.raises(SchedulerError) as excinfo:
                await scheduler.submit(request)
            assert excinfo.value.code == ERROR_DEADLINE

        run_with_scheduler(go, window_s=0.05, default_timeout_s=0.001)

    def test_mixed_expiry_answers_the_survivors(self):
        requests = mixed_requests(6, 2, seed=13)

        async def go(scheduler, service):
            doomed = [
                asyncio.get_running_loop().create_task(
                    scheduler.submit(r, timeout_s=0.001)
                )
                for r in requests[:3]
            ]
            alive = [
                asyncio.get_running_loop().create_task(scheduler.submit(r))
                for r in requests[3:]
            ]
            done = await asyncio.gather(*doomed, *alive, return_exceptions=True)
            return done

        done = run_with_scheduler(go, window_s=0.05)
        for outcome in done[:3]:
            assert isinstance(outcome, SchedulerError)
            assert outcome.code == ERROR_DEADLINE
        direct = fresh_service().plan_many(requests[3:])
        for outcome, reference in zip(done[3:], direct):
            assert isinstance(outcome, PlanResult)
            assert outcome.response.ratios == reference.ratios
            assert outcome.response.total_s == reference.total_s


# ---------------------------------------------------------------------------
# Injectable batch formation (the PlanService refactor behind the scheduler).
# ---------------------------------------------------------------------------
class TestBatchFormer:
    def test_default_is_dedup_tasks(self):
        service = fresh_service()
        assert service.batch_former is dedup_tasks

    def test_custom_former_observes_traffic_without_changing_answers(self):
        requests = mixed_requests(9, 2, seed=14)
        seen_batches = []

        def spying_former(batch):
            seen_batches.append(len(batch))
            return dedup_tasks(batch)

        service = PlanService(
            cache=SharedEstimateCache(), batch_former=spying_former
        )
        responses = service.plan_many(requests)
        reference = fresh_service().plan_many(requests)
        assert seen_batches == [9]
        for got, want in zip(responses, reference):
            assert got.ratios == want.ratios
            assert got.total_s == want.total_s

    def test_former_dropping_tasks_is_rejected(self):
        requests = mixed_requests(4, 2, seed=15)

        def lossy_former(batch):
            tasks = dedup_tasks(batch)
            tasks.popitem()
            return tasks

        service = PlanService(
            cache=SharedEstimateCache(), batch_former=lossy_former
        )
        with pytest.raises(WorkloadError):
            service.plan_many(requests)


# ---------------------------------------------------------------------------
# Server + client over real sockets.
# ---------------------------------------------------------------------------
class TestPlanServer:
    def test_concurrent_clients_bit_identical_to_serial_plan_many(self):
        """The acceptance property: N concurrent asyncio clients, answers
        byte-for-byte equal to one serial plan_many over the same workload."""
        requests = mixed_requests(24, 6, seed=16)

        async def go(server, path):
            clients = await asyncio.gather(
                *(
                    connect_plan_client(path, client_id=f"client-{k}")
                    for k in range(4)
                )
            )
            try:
                batches = await asyncio.gather(
                    *(
                        client.plan_many(requests[k * 6 : (k + 1) * 6])
                        for k, client in enumerate(clients)
                    )
                )
            finally:
                for client in clients:
                    await client.close()
            return [result for batch in batches for result in batch]

        results = run_with_server(
            go, service=fresh_service(), window_s=0.02, max_batch=64
        )
        direct = fresh_service().plan_many(requests)
        by_id = {r.request_id: r for r in direct}
        assert len(results) == len(requests)
        for result in results:
            reference = by_id[result.response.request_id]
            assert result.response.ratios == reference.ratios
            assert result.response.total_s == reference.total_s
            assert result.response.estimate.cpu_step_s == reference.estimate.cpu_step_s
            assert result.response.estimate.cpu_delay_s == reference.estimate.cpu_delay_s
            assert result.response.estimate.gpu_step_s == reference.estimate.gpu_step_s
            assert result.response.estimate.gpu_delay_s == reference.estimate.gpu_delay_s

    def test_cross_connection_coalescing(self):
        requests = mixed_requests(8, 2, seed=17)

        async def go(server, path):
            c1 = await connect_plan_client(path, client_id="a")
            c2 = await connect_plan_client(path, client_id="b")
            try:
                r1, r2 = await asyncio.gather(
                    c1.plan_many(requests[:4]), c2.plan_many(requests[4:])
                )
            finally:
                await c1.close()
                await c2.close()
            return r1 + r2

        results = run_with_server(go, service=fresh_service(), window_s=0.05)
        # All 8 requests from both connections landed in one micro-batch.
        assert all(r.batch_size == 8 for r in results)

    def test_deadline_over_the_wire(self):
        request = mixed_requests(1, 1, seed=18)[0]

        async def go(server, path):
            client = await connect_plan_client(path)
            try:
                with pytest.raises(PlanServerError) as excinfo:
                    await client.submit(request, timeout_s=0.001)
                assert excinfo.value.code == ERROR_DEADLINE
                assert excinfo.value.request_id == request.request_id
                # The connection survives and still answers.
                result = await client.submit(request)
                reference = optimize_scheme(
                    request.scheme, list(request.steps), request.delta
                )
                assert result.response.ratios == reference.ratios
            finally:
                await client.close()

        run_with_server(go, service=fresh_service(), window_s=0.03)

    def test_unsupported_version_is_structured_not_fatal(self):
        async def go(server, path):
            with pytest.raises(PlanServerError) as excinfo:
                await connect_plan_client(path, version=99)
            assert excinfo.value.code == ERROR_UNSUPPORTED_VERSION
            # A well-versioned client on the same server still works.
            client = await connect_plan_client(path)
            try:
                hello = await client.stats()
                assert "scheduler" in hello
            finally:
                await client.close()

        run_with_server(go, service=fresh_service(), window_s=0.0)

    def test_malformed_lines_get_error_replies_and_connection_survives(self):
        async def go(server, path):
            reader, writer = await asyncio.open_unix_connection(path)
            try:
                writer.write(b"this is not json\n")
                await writer.drain()
                reply = Envelope.from_json(await reader.readline())
                assert reply.kind == KIND_ERROR
                assert ErrorReply.from_envelope(reply).code == ERROR_INVALID

                writer.write(b'{"kind": "plan.submit", "seq": 4, "payload": {}}\n')
                await writer.drain()
                reply = Envelope.from_json(await reader.readline())
                assert reply.kind == KIND_ERROR
                assert reply.seq == 4

                writer.write(b'{"kind": "no.such.kind", "seq": 5, "payload": {}}\n')
                await writer.drain()
                reply = Envelope.from_json(await reader.readline())
                assert ErrorReply.from_envelope(reply).code == ERROR_INVALID

                writer.write(
                    Envelope(kind=KIND_HELLO, payload={"client": "x"}, seq=6).to_bytes()
                )
                await writer.drain()
                reply = Envelope.from_json(await reader.readline())
                assert reply.kind == KIND_HELLO_OK
                assert reply.seq == 6
                assert reply.payload["client"] == "x"
            finally:
                writer.close()
                await writer.wait_closed()

        run_with_server(go, service=fresh_service(), window_s=0.0)

    def test_hello_identity_feeds_fairness_weights(self):
        """Two connections announcing the same client id share one fairness
        identity — their submissions bill the same weight account."""
        requests = mixed_requests(8, 2, seed=19)

        async def go(server, path):
            c1 = await connect_plan_client(path, client_id="tenant")
            c2 = await connect_plan_client(path, client_id="tenant")
            try:
                await asyncio.gather(
                    c1.plan_many(requests[:4]), c2.plan_many(requests[4:])
                )
            finally:
                await c1.close()
                await c2.close()
            return list(server.scheduler.batch_log)

        log = run_with_server(go, service=fresh_service(), window_s=0.05)
        assert sum(counter.get("tenant", 0) for counter in log) == 8

    def test_tcp_transport(self):
        requests = mixed_requests(4, 2, seed=20)

        async def go():
            server = PlanServer(service=fresh_service(), window_s=0.01)
            await server.start_tcp("127.0.0.1", 0)
            assert server.tcp_address is not None
            host, port = server.tcp_address
            try:
                client = await connect_plan_client(
                    host=host, port=port, client_id="tcp"
                )
                try:
                    results = await client.plan_many(requests)
                finally:
                    await client.close()
            finally:
                await server.close()
            return results

        results = asyncio.run(go())
        direct = fresh_service().plan_many(requests)
        for result, reference in zip(results, direct):
            assert result.response.ratios == reference.ratios
            assert result.response.total_s == reference.total_s

    def test_stats_endpoint_reports_batching(self):
        requests = mixed_requests(6, 2, seed=21)

        async def go(server, path):
            client = await connect_plan_client(path, client_id="obs")
            try:
                await client.plan_many(requests)
                stats = await client.stats()
            finally:
                await client.close()
            return stats

        stats = run_with_server(go, service=fresh_service(), window_s=0.02)
        scheduler = stats["scheduler"]
        assert scheduler["requests_completed"] == 6
        assert scheduler["batches_formed"] >= 1
        assert scheduler["mean_batch_size"] > 1.0
        assert scheduler["service"]["requests_served"] == 6
        assert stats["connections_served"] == 1

    def test_admission_over_the_wire(self):
        requests = mixed_requests(4, 1, seed=22)

        async def go(server, path):
            client = await connect_plan_client(path, client_id="greedy")
            outcomes = []
            try:
                for request in requests:
                    try:
                        outcomes.append(await client.submit(request))
                    except PlanServerError as exc:
                        outcomes.append(exc)
            finally:
                await client.close()
            return outcomes

        outcomes = run_with_server(
            go,
            service=fresh_service(),
            window_s=0.0,
            admission_rate=0.001,
            admission_burst=2.0,
        )
        assert isinstance(outcomes[0], PlanResult)
        assert isinstance(outcomes[1], PlanResult)
        for outcome in outcomes[2:]:
            assert isinstance(outcome, PlanServerError)
            assert outcome.code == ERROR_ADMISSION

    def test_close_drops_active_connections(self):
        """A closed server must stop serving already-connected clients, not
        only refuse new ones."""

        async def go(server, path):
            client = await connect_plan_client(path, client_id="lingerer")
            await client.stats()  # alive before close
            await server.close()
            with pytest.raises((PlanServerError, ConnectionError, OSError)):
                await asyncio.wait_for(client.stats(), timeout=2.0)
            await client.close()

        run_with_server(go, service=fresh_service(), window_s=0.0)

    def test_client_submit_after_connection_loss_raises(self):
        """Once the read loop is dead, a new submit must raise immediately —
        a write on the half-open socket can still succeed, and a future
        registered after the loop exited would never resolve."""
        request = mixed_requests(1, 1, seed=24)[0]

        async def go(server, path):
            client = await connect_plan_client(path)
            await server.close()
            await asyncio.sleep(0.05)  # let the client observe the EOF
            with pytest.raises((PlanServerError, ConnectionError, OSError)):
                await asyncio.wait_for(client.submit(request), timeout=2.0)
            await client.close()

        run_with_server(go, service=fresh_service(), window_s=0.0)

    def test_idle_client_state_is_pruned(self):
        """Per-client queues/tags/buckets are caller-named and must not
        accumulate forever on a long-lived server."""
        requests = mixed_requests(12, 2, seed=25)

        async def go(scheduler, service):
            for i, request in enumerate(requests):
                await scheduler.submit(request, client_id=f"ephemeral-{i}")
            return (
                len(scheduler._queues),
                len(scheduler._finish_tags),
                len(scheduler._buckets),
            )

        queues, tags, buckets = run_with_scheduler(
            go, window_s=0.0, admission_rate=1e9, admission_burst=1e9
        )
        assert queues == 0
        assert tags == 0
        assert buckets == 0

    def test_nan_knobs_rejected(self):
        service = fresh_service()
        nan = float("nan")
        for kwargs in (
            {"window_s": nan},
            {"default_weight": nan},
            {"weights": {"a": nan}},
            {"admission_rate": nan},
            {"admission_rate": 1.0, "admission_burst": nan},
            {"admission_burst": 2.0},  # burst without rate
            {"default_timeout_s": nan},
        ):
            with pytest.raises(ValueError):
                MicroBatchScheduler(service, **kwargs)
        with pytest.raises(ProtocolError):
            PlanSubmit.from_envelope(
                Envelope(
                    kind="plan.submit",
                    payload={
                        "request": mixed_requests(1, 1)[0].to_dict(),
                        "timeout_s": nan,
                    },
                )
            )

    def test_server_rejects_conflicting_construction(self):
        scheduler = MicroBatchScheduler(fresh_service())
        with pytest.raises(ValueError):
            PlanServer(scheduler=scheduler, window_s=0.5)

    def test_connect_requires_exactly_one_endpoint(self):
        async def go():
            with pytest.raises(ValueError):
                await connect_plan_client()
            with pytest.raises(ValueError):
                await connect_plan_client("/tmp/x.sock", host="h", port=1)

        asyncio.run(go())


# ---------------------------------------------------------------------------
# Stale unix socket files (ISSUE 7 satellite: restart after crash).
# ---------------------------------------------------------------------------
class TestStaleUnixSocket:
    """A server killed with SIGKILL leaves its socket file behind; the next
    start on the same path must reclaim it — but never steal a live
    listener's socket, and never unlink a non-socket file."""

    def test_restart_after_crash_reclaims_the_socket(self):
        with tempfile.TemporaryDirectory(dir="/tmp") as tmp:
            path = os.path.join(tmp, "plan.sock")
            # Simulate the crash: bind, then die without unlinking.
            corpse = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            corpse.bind(path)
            corpse.close()
            assert os.path.exists(path)

            async def go():
                server = PlanServer(service=fresh_service())
                await server.start_unix(path)  # would EADDRINUSE before the fix
                try:
                    client = await connect_plan_client(path)
                    result = await client.submit(mixed_requests(1, 1, seed=31)[0])
                    await client.close()
                    return result
                finally:
                    await server.close()

            result = asyncio.run(go())
            assert result.response.request_id == "q00"
            assert not os.path.exists(path)  # close() unlinked it

    def test_probe_unlinks_only_dead_sockets(self):
        with tempfile.TemporaryDirectory(dir="/tmp") as tmp:
            path = os.path.join(tmp, "plan.sock")
            assert clear_stale_unix_socket(path) is False  # nothing there
            corpse = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            corpse.bind(path)
            corpse.close()
            assert clear_stale_unix_socket(path) is True
            assert not os.path.exists(path)

    def test_live_listener_is_not_stolen(self):
        with tempfile.TemporaryDirectory(dir="/tmp") as tmp:
            path = os.path.join(tmp, "plan.sock")

            async def go():
                server = PlanServer(service=fresh_service())
                await server.start_unix(path)
                try:
                    # The probe connects, sees a live server, leaves the
                    # file alone; a second bind still fails loudly.
                    assert clear_stale_unix_socket(path) is False
                    assert os.path.exists(path)
                    second = PlanServer(service=fresh_service())
                    with pytest.raises(OSError):
                        await second.start_unix(path)
                finally:
                    await server.close()

            asyncio.run(go())

    def test_non_socket_file_is_never_unlinked(self):
        with tempfile.TemporaryDirectory(dir="/tmp") as tmp:
            path = os.path.join(tmp, "plan.sock")
            with open(path, "w") as fh:
                fh.write("precious data, not a socket")
            assert clear_stale_unix_socket(path) is False
            assert os.path.exists(path)

            async def go():
                server = PlanServer(service=fresh_service())
                with pytest.raises(OSError):
                    await server.start_unix(path)

            asyncio.run(go())
            with open(path) as fh:
                assert fh.read() == "precious data, not a socket"
