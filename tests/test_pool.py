"""Pre-fork worker pool (ISSUE 7 tentpole): router, fd passing, shared state.

The pool runs here in thread mode (``fork=False``): the workers are daemon
threads executing the *identical* ``run_worker`` coroutine production forks
run, and accepted descriptors travel over the very same ``send_fds``
socketpair channels — so the router/worker protocol is exercised end to end
in one process.  (Real forked workers are driven by the subprocess tests in
``test_cli.py`` and the serving benchmarks.)

Pinned here:

* the multi-worker **bit-parity** gate: the same 64-request workload served
  through ``--workers 1``, ``--workers 4`` and a direct ``plan_many`` call
  yields byte-identical plans;
* a shared cache store carries hits across workers and across a pool
  restart;
* admission control debits one fleet-wide bucket, not one bucket per worker;
* a dead worker is respawned on the next routing attempt;
* stale unix socket files are reclaimed at bind and unlinked at shutdown.
"""

from __future__ import annotations

import asyncio
import os
import signal
import socket
import threading

import numpy as np
import pytest

from repro.costmodel import StepCost
from repro.costmodel.cachestore import EstimateCacheStore, PersistentEstimateCache
from repro.service import (
    ERROR_ADMISSION,
    PlanRequest,
    PlanServerError,
    PlanService,
    PoolConfig,
    SharedEstimateCache,
    WorkerPool,
    build_worker_server,
    connect_plan_client,
    run_worker,
)
from repro.service.pool import install_stop_signals


def random_steps(rng: np.random.Generator, n: int) -> tuple[StepCost, ...]:
    return tuple(
        StepCost(
            f"s{i}",
            int(rng.integers(10_000, 200_000)),
            cpu_unit_s=float(rng.uniform(1e-9, 5e-8)),
            gpu_unit_s=float(rng.uniform(1e-9, 5e-8)),
            intermediate_bytes_per_tuple=float(rng.uniform(0.0, 16.0)),
        )
        for i in range(n)
    )


def mixed_requests(n_requests: int, n_series: int, seed: int = 0) -> list[PlanRequest]:
    rng = np.random.default_rng(seed)
    series = [random_steps(rng, 4 + (k % 3)) for k in range(n_series)]
    schemes = ("PL", "OL", "DD")
    return [
        PlanRequest(
            steps=series[i % n_series],
            scheme=schemes[i % 3],
            request_id=f"q{i:02d}",
        )
        for i in range(n_requests)
    ]


def run_pool(config: PoolConfig, client_fn):
    """Run ``client_fn(pool)`` against a thread-mode pool; returns
    ``(client result, final router stats)``."""
    pool = WorkerPool(config, fork=False)
    ready = threading.Event()
    final: dict = {}

    def runner() -> None:
        final["stats"] = pool.run_forever(on_ready=lambda _p: ready.set())

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    assert ready.wait(timeout=10.0), "pool never became ready"
    try:
        result = client_fn(pool)
    finally:
        pool.stop()
        thread.join(timeout=20.0)
    assert not thread.is_alive(), "pool failed to stop"
    return result, final["stats"]


def serve_workload(
    config: PoolConfig, requests: list[PlanRequest], clients: int
):
    """Serve ``requests`` through a pool via ``clients`` concurrent
    connections; returns the flattened results."""
    per_client = len(requests) // clients

    def drive(pool: WorkerPool):
        async def go():
            conns = await asyncio.gather(
                *(
                    connect_plan_client(
                        path=pool.unix_path, client_id=f"client-{k}"
                    )
                    for k in range(clients)
                )
            )
            try:
                batches = await asyncio.gather(
                    *(
                        conn.plan_many(
                            requests[k * per_client : (k + 1) * per_client]
                        )
                        for k, conn in enumerate(conns)
                    )
                )
            finally:
                for conn in conns:
                    await conn.close()
            return [result for batch in batches for result in batch]

        return asyncio.run(go())

    return run_pool(config, drive)


def assert_plans_identical(results, reference_by_id) -> None:
    for result in results:
        ref = reference_by_id[result.response.request_id]
        assert result.response.ratios == ref.ratios
        assert result.response.total_s == ref.total_s
        assert result.response.estimate.cpu_step_s == ref.estimate.cpu_step_s
        assert result.response.estimate.gpu_step_s == ref.estimate.gpu_step_s
        assert result.response.estimate.cpu_delay_s == ref.estimate.cpu_delay_s
        assert result.response.estimate.gpu_delay_s == ref.estimate.gpu_delay_s


@pytest.fixture
def sock_path(tmp_path) -> str:
    # AF_UNIX paths are length-limited (~108 bytes); keep them short.
    return os.path.join(tmp_path, "pool.sock")


class TestWorkerPoolValidation:
    def test_needs_at_least_one_worker(self, sock_path):
        with pytest.raises(ValueError, match="at least one worker"):
            WorkerPool(PoolConfig(workers=0, unix_path=sock_path))

    def test_needs_an_endpoint(self):
        with pytest.raises(ValueError, match="unix path and/or a TCP port"):
            WorkerPool(PoolConfig(workers=2))


class TestWorkerPoolServing:
    def test_routes_connections_round_robin(self, sock_path):
        requests = mixed_requests(16, 4, seed=21)
        config = PoolConfig(workers=2, unix_path=sock_path, window_s=0.01)
        results, stats = serve_workload(config, requests, clients=4)
        assert len(results) == 16
        assert stats["connections_routed"] == 4
        assert stats["connections_dropped"] == 0
        assert stats["mode"] == "thread"

    def test_multi_worker_bit_parity_1_vs_4_vs_direct(self, sock_path):
        """The acceptance gate: one 64-request workload through --workers 1,
        --workers 4 and a direct plan_many — all byte-identical."""
        requests = mixed_requests(64, 8, seed=22)
        direct = PlanService(cache=SharedEstimateCache()).plan_many(requests)
        by_id = {r.request_id: r for r in direct}

        for workers in (1, 4):
            config = PoolConfig(
                workers=workers, unix_path=sock_path, window_s=0.005
            )
            results, _ = serve_workload(config, requests, clients=8)
            assert len(results) == 64
            assert_plans_identical(results, by_id)

    def test_tcp_endpoint_serves_too(self):
        requests = mixed_requests(4, 2, seed=23)
        config = PoolConfig(workers=1, tcp_port=0)  # 0 = ephemeral port

        def drive(pool: WorkerPool):
            host, port = pool.tcp_address

            async def go():
                client = await connect_plan_client(host=host, port=port)
                try:
                    return await client.plan_many(requests)
                finally:
                    await client.close()

            return asyncio.run(go())

        results, stats = run_pool(config, drive)
        assert len(results) == 4
        assert stats["connections_routed"] == 1

    def test_dead_worker_is_respawned(self, sock_path):
        requests = mixed_requests(2, 1, seed=24)
        config = PoolConfig(workers=2, unix_path=sock_path, window_s=0.01)

        def drive(pool: WorkerPool):
            # Kill worker 0 behind the router's back: its channel breaks,
            # the next route detects the corpse and respawns the slot.
            pool._workers[0].channel.close()

            async def go():
                out = []
                for k in range(3):  # round-robin crosses the dead slot
                    client = await connect_plan_client(
                        path=pool.unix_path, client_id=f"c{k}"
                    )
                    try:
                        out.extend(await client.plan_many(requests))
                    finally:
                        await client.close()
                return out

            return asyncio.run(go())

        results, stats = run_pool(config, drive)
        assert len(results) == 6  # every connection was served
        assert stats["workers_respawned"] >= 1
        assert stats["connections_dropped"] == 0


class TestSharedStateAcrossWorkers:
    def test_store_carries_hits_across_pool_restart(self, sock_path, tmp_path):
        store_path = os.path.join(tmp_path, "cache.db")
        requests = mixed_requests(24, 4, seed=25)
        config = PoolConfig(
            workers=2, unix_path=sock_path, cache_store=store_path, window_s=0.01
        )
        first, _ = serve_workload(config, requests, clients=4)
        assert len(first) == 24
        # The workers flushed their write-behind queues on drain.
        with EstimateCacheStore(store_path) as store:
            totals_rows, _ = store.count_rows()
        assert totals_rows > 0

        # "Restart": a fresh worker stack on the same store starts warm.
        server, service = build_worker_server(config)
        cache = service.cache
        assert isinstance(cache, PersistentEstimateCache)
        restarted = service.plan_many(requests)
        assert cache.store_hits > 0
        lookups = cache.hits + cache.misses
        assert cache.hits / lookups > 0.5  # the cold-start gate, in miniature
        by_id = {r.request_id: r for r in restarted}
        assert_plans_identical(first, by_id)
        service.close()

    def test_admission_is_fleet_wide_not_per_worker(self, sock_path, tmp_path):
        store_path = os.path.join(tmp_path, "cache.db")
        request = mixed_requests(1, 1, seed=26)[0]
        # burst=2 fleet-wide; a negligible refill rate keeps the arithmetic
        # exact over the test's runtime.  Per-worker buckets would admit 4
        # (2 workers x burst 2) — the shared store must admit exactly 2.
        config = PoolConfig(
            workers=2,
            unix_path=sock_path,
            cache_store=store_path,
            admission_rate=1e-6,
            admission_burst=2.0,
            window_s=0.01,
        )

        def drive(pool: WorkerPool):
            async def go():
                outcomes = []
                for k in range(4):  # 4 connections, round-robin over 2 workers
                    client = await connect_plan_client(
                        path=pool.unix_path, client_id="alice"
                    )
                    try:
                        await client.submit(request)
                        outcomes.append("admitted")
                    except PlanServerError as exc:
                        assert exc.code == ERROR_ADMISSION
                        outcomes.append("rejected")
                    finally:
                        await client.close()
                return outcomes

            return asyncio.run(go())

        outcomes, _ = run_pool(config, drive)
        assert outcomes == ["admitted", "admitted", "rejected", "rejected"]


class TestPoolSocketHygiene:
    def test_stale_socket_file_is_reclaimed(self, sock_path):
        # A crashed previous server left its socket file behind.
        corpse = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        corpse.bind(sock_path)
        corpse.close()  # closed without unlink: the bind would now fail
        assert os.path.exists(sock_path)

        requests = mixed_requests(2, 1, seed=27)
        config = PoolConfig(workers=1, unix_path=sock_path, window_s=0.01)
        results, _ = serve_workload(config, requests, clients=1)
        assert len(results) == 2

    def test_socket_unlinked_after_stop(self, sock_path):
        config = PoolConfig(workers=1, unix_path=sock_path)
        _, stats = run_pool(config, lambda pool: None)
        assert not os.path.exists(sock_path)
        assert stats["workers"] == 1


class TestStopSignals:
    """SIGTERM/SIGINT handling (ISSUE 7 satellite).  pytest runs on the main
    thread, so the ``loop.add_signal_handler`` path — skipped by thread-mode
    workers — is exercised directly here; the subprocess tests in
    ``test_cli.py`` cover the same path end to end."""

    def test_install_stop_signals_sets_the_event(self):
        async def go():
            loop = asyncio.get_running_loop()
            stop = asyncio.Event()
            installed = install_stop_signals(loop, stop)
            try:
                assert set(installed) == {signal.SIGTERM, signal.SIGINT}
                signal.raise_signal(signal.SIGTERM)
                await asyncio.wait_for(stop.wait(), timeout=5.0)
            finally:
                for signum in installed:
                    loop.remove_signal_handler(signum)

        asyncio.run(go())

    def test_install_skips_off_the_main_thread(self):
        outcome = {}

        def worker():
            async def go():
                loop = asyncio.get_running_loop()
                outcome["installed"] = install_stop_signals(loop, asyncio.Event())

            asyncio.run(go())

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join(timeout=10.0)
        assert outcome["installed"] == []

    def test_run_worker_drains_on_sigterm(self, sock_path):
        router_end, worker_end = socket.socketpair(
            socket.AF_UNIX, socket.SOCK_STREAM
        )
        config = PoolConfig(workers=1, unix_path=sock_path)

        async def go():
            task = asyncio.create_task(
                run_worker(worker_end, config, 0, install_signals=True)
            )
            await asyncio.sleep(0.05)  # let the worker install its handlers
            signal.raise_signal(signal.SIGTERM)
            return await asyncio.wait_for(task, timeout=10.0)

        stats = asyncio.run(go())
        router_end.close()
        assert stats["connections_served"] == 0  # drained before any traffic
        assert "scheduler" in stats
