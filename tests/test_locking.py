"""Tests for named locks and the runtime lock-order sanitizer (ISSUE 9).

The static ``lock-order`` pass and the sanitizer share one node namespace:
``make_lock(name)``.  These tests pin the registry, the off-by-default
behaviour, and the sanitizer's inversion/self-deadlock detection — the
dynamic half the CI ``sanitizer`` job runs the service tests under.
"""

from __future__ import annotations

import threading

import pytest

from repro.locking import (
    SANITIZER_ENV,
    LockOrderViolation,
    SanitizedLock,
    lock_order_edges,
    make_lock,
    registered_locks,
    reset_lock_order_state,
    sanitizer_enabled,
)


@pytest.fixture()
def sanitizer(monkeypatch):
    monkeypatch.setenv(SANITIZER_ENV, "1")
    reset_lock_order_state()
    yield
    reset_lock_order_state()


class TestRegistry:
    def test_named_lock_is_registered(self):
        make_lock("test-registry-alpha")
        assert registered_locks()["test-registry-alpha"] >= 1

    def test_anonymous_lock_gets_caller_site_name(self):
        before = set(registered_locks())
        make_lock()
        new = set(registered_locks()) - before
        (name,) = new
        assert "test_locking.py:" in name

    def test_repeated_names_count_creations(self):
        make_lock("test-registry-repeat")
        make_lock("test-registry-repeat")
        assert registered_locks()["test-registry-repeat"] >= 2


class TestSanitizerToggle:
    def test_disabled_by_default_returns_raw_lock(self, monkeypatch):
        monkeypatch.delenv(SANITIZER_ENV, raising=False)
        assert not sanitizer_enabled()
        lock = make_lock("test-toggle-off")
        assert not isinstance(lock, SanitizedLock)
        with lock:
            pass  # usable as a plain lock

    def test_enabled_returns_wrapper(self, sanitizer):
        lock = make_lock("test-toggle-on")
        assert isinstance(lock, SanitizedLock)
        assert "test-toggle-on" in repr(lock)


class TestSanitizer:
    def test_nested_acquisition_records_edge(self, sanitizer):
        a = make_lock("test-edge-a")
        b = make_lock("test-edge-b")
        with a:
            with b:
                pass
        assert ("test-edge-a", "test-edge-b") in lock_order_edges()

    def test_inversion_raises_with_witness_sites(self, sanitizer):
        a = make_lock("test-inv-a")
        b = make_lock("test-inv-b")
        with a:
            with b:
                pass
        with b:
            with pytest.raises(LockOrderViolation, match="test-inv-a"):
                with a:
                    pass  # pragma: no cover - never reached

    def test_inversion_detected_across_threads(self, sanitizer):
        # Thread 1 records a->b; the main thread's b->a attempt must raise
        # even though no actual deadlock happened on this interleaving.
        a = make_lock("test-xthread-a")
        b = make_lock("test-xthread-b")

        def order_ab():
            with a:
                with b:
                    pass

        t = threading.Thread(target=order_ab)
        t.start()
        t.join()
        with b:
            with pytest.raises(LockOrderViolation):
                with a:
                    pass  # pragma: no cover - never reached

    def test_reentrant_lock_reenters_quietly(self, sanitizer):
        lock = make_lock("test-reentrant", reentrant=True)
        with lock:
            with lock:
                pass
        # Self re-entry is not an order fact.
        assert ("test-reentrant", "test-reentrant") not in lock_order_edges()

    def test_non_reentrant_reentry_raises_instead_of_deadlocking(self, sanitizer):
        lock = make_lock("test-self-deadlock")
        with lock:
            with pytest.raises(LockOrderViolation, match="deadlock"):
                lock.acquire()

    def test_acquire_release_protocol(self, sanitizer):
        lock = make_lock("test-protocol")
        assert lock.acquire() is True
        assert lock.locked()
        lock.release()
        assert not lock.locked()

    def test_reset_clears_observed_edges(self, sanitizer):
        a = make_lock("test-reset-a")
        b = make_lock("test-reset-b")
        with a:
            with b:
                pass
        reset_lock_order_state()
        # With history gone, the opposite order is recordable again.
        with b:
            with a:
                pass
        assert ("test-reset-b", "test-reset-a") in lock_order_edges()

    def test_distinct_locks_same_name_do_not_self_trip(self, sanitizer):
        # Two instances under one name (e.g. cachestore-db per store) held
        # together would look like a self-edge; the sanitizer must skip
        # same-name pairs rather than fabricate an inversion.
        first = make_lock("test-same-name")
        second = make_lock("test-same-name")
        with first:
            with second:
                pass
        assert ("test-same-name", "test-same-name") not in lock_order_edges()
