"""Tests for the abstract cost model, calibration, optimiser and Monte Carlo."""

from __future__ import annotations

import pytest

from repro.costmodel import (
    CalibrationTable,
    CostModelError,
    StepCost,
    dd_sweep,
    estimate_phases,
    estimate_series,
    intermediate_result_bytes,
    optimize_dd,
    optimize_ol,
    optimize_pl,
    optimize_scheme,
    pipeline_delays,
    ratio_grid,
    run_monte_carlo,
    sample_ratio_vectors,
    total_elapsed,
)
from repro.hardware import coupled_machine
from repro.hashjoin import HashJoinConfig, SimpleHashJoin


def make_steps() -> list[StepCost]:
    """A build-phase-like series: one GPU-friendly step, three mixed steps."""
    return [
        StepCost("b1", 10_000, cpu_unit_s=15e-9, gpu_unit_s=1e-9),
        StepCost("b2", 10_000, cpu_unit_s=5e-9, gpu_unit_s=5e-9),
        StepCost("b3", 10_000, cpu_unit_s=10e-9, gpu_unit_s=9e-9),
        StepCost("b4", 10_000, cpu_unit_s=6e-9, gpu_unit_s=5e-9),
    ]


class TestStepCost:
    def test_device_time_splits_by_ratio(self):
        step = StepCost("s", 1_000, cpu_unit_s=2e-9, gpu_unit_s=1e-9)
        assert step.device_time("cpu", 0.25) == pytest.approx(0.25 * 1_000 * 2e-9)
        assert step.device_time("gpu", 0.25) == pytest.approx(0.75 * 1_000 * 1e-9)

    def test_invalid_inputs(self):
        with pytest.raises(CostModelError):
            StepCost("s", -1, 1e-9, 1e-9)
        step = StepCost("s", 10, 1e-9, 1e-9)
        with pytest.raises(CostModelError):
            step.device_time("cpu", 1.5)
        with pytest.raises(CostModelError):
            step.device_time("npu", 0.5)


class TestEstimateSeries:
    def test_cpu_only_and_gpu_only(self):
        steps = make_steps()
        cpu_only = estimate_series(steps, [1.0] * 4)
        gpu_only = estimate_series(steps, [0.0] * 4)
        assert cpu_only.gpu_total_s == 0.0
        assert gpu_only.cpu_total_s == 0.0
        assert cpu_only.total_s == pytest.approx(sum(s.cpu_unit_s * s.n_tuples for s in steps))

    def test_total_is_max_of_devices(self):
        steps = make_steps()
        estimate = estimate_series(steps, [0.5] * 4)
        assert estimate.total_s == pytest.approx(
            max(estimate.cpu_total_s, estimate.gpu_total_s)
        )

    def test_equal_ratios_have_no_delays(self):
        steps = make_steps()
        estimate = estimate_series(steps, [0.3] * 4)
        assert sum(estimate.cpu_delay_s) == 0.0
        assert sum(estimate.gpu_delay_s) == 0.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(CostModelError):
            estimate_series(make_steps(), [0.5, 0.5])

    def test_out_of_range_ratio_rejected(self):
        with pytest.raises(CostModelError):
            estimate_series(make_steps(), [0.5, 0.5, 0.5, 1.5])

    def test_phases_and_total(self):
        steps = make_steps()
        estimates = estimate_phases(
            {"build": steps, "probe": steps}, {"build": [0.5] * 4, "probe": [0.0] * 4}
        )
        assert set(estimates) == {"build", "probe"}
        assert total_elapsed(estimates) == pytest.approx(
            estimates["build"].total_s + estimates["probe"].total_s
        )
        with pytest.raises(CostModelError):
            estimate_phases({"build": steps}, {})


class TestPipelineDelays:
    def test_increasing_cpu_ratio_may_stall_cpu(self):
        # Step 2 assigns much more work to the CPU than step 1 did, so the CPU
        # may wait for GPU output of step 1.
        cpu = [0.0, 10.0]
        gpu = [50.0, 1.0]
        cpu_delay, gpu_delay = pipeline_delays(cpu, gpu, [0.0, 0.9])
        assert cpu_delay[1] > 0.0
        assert gpu_delay[1] == 0.0

    def test_decreasing_cpu_ratio_may_stall_gpu(self):
        cpu = [50.0, 1.0]
        gpu = [0.0, 10.0]
        cpu_delay, gpu_delay = pipeline_delays(cpu, gpu, [0.9, 0.0])
        assert gpu_delay[1] > 0.0
        assert cpu_delay[1] == 0.0

    def test_delays_never_negative(self):
        cpu_delay, gpu_delay = pipeline_delays([1.0, 1.0], [1.0, 1.0], [0.2, 0.8])
        assert all(d >= 0.0 for d in cpu_delay + gpu_delay)

    def test_length_validation(self):
        with pytest.raises(CostModelError):
            pipeline_delays([1.0], [1.0, 2.0], [0.5, 0.5])


class TestIntermediateResults:
    def test_no_change_no_bytes(self):
        assert intermediate_result_bytes(make_steps(), [0.5] * 4) == 0.0

    def test_changes_accumulate(self):
        steps = make_steps()
        volume = intermediate_result_bytes(steps, [0.0, 0.5, 0.5, 1.0])
        expected = 0.5 * 10_000 * 8.0 + 0.5 * 10_000 * 8.0
        assert volume == pytest.approx(expected)


class TestOptimizers:
    def test_ratio_grid_includes_bounds(self):
        grid = ratio_grid(0.02)
        assert grid[0] == 0.0 and grid[-1] == 1.0
        assert len(grid) == 51

    def test_ratio_grid_rejects_bad_delta(self):
        with pytest.raises(Exception):
            ratio_grid(0.0)

    def test_dd_beats_single_device(self):
        steps = make_steps()
        dd = optimize_dd(steps, delta=0.02)
        cpu_only = estimate_series(steps, [1.0] * 4).total_s
        gpu_only = estimate_series(steps, [0.0] * 4).total_s
        assert dd.total_s <= min(cpu_only, gpu_only) + 1e-15
        assert len(set(dd.ratios)) == 1

    def test_ol_assigns_each_step_to_faster_device(self):
        steps = make_steps()
        ol = optimize_ol(steps)
        assert all(r in (0.0, 1.0) for r in ol.ratios)
        # b1 is overwhelmingly GPU friendly.
        assert ol.ratios[0] == 0.0

    def test_pl_at_least_as_good_as_dd_and_ol(self):
        steps = make_steps()
        pl = optimize_pl(steps, delta=0.02)
        dd = optimize_dd(steps, delta=0.02)
        ol = optimize_ol(steps)
        assert pl.total_s <= dd.total_s + 1e-15
        assert pl.total_s <= ol.total_s + 1e-15

    def test_pl_offloads_hash_step_to_gpu(self):
        pl = optimize_pl(make_steps(), delta=0.02)
        assert pl.ratios[0] <= 0.1

    def test_dd_sweep_covers_grid(self):
        sweep = dd_sweep(make_steps(), delta=0.25)
        assert [r for r, _ in sweep] == [0.0, 0.25, 0.5, 0.75, 1.0]
        assert all(t > 0 for _, t in sweep)

    def test_optimize_scheme_dispatch(self):
        steps = make_steps()
        assert optimize_scheme("CPU", steps).ratios == [1.0] * 4
        assert optimize_scheme("GPU", steps).ratios == [0.0] * 4
        assert optimize_scheme("dd", steps).scheme == "DD"
        assert optimize_scheme("PL", steps).scheme == "PL"
        with pytest.raises(Exception):
            optimize_scheme("magic", steps)

    def test_empty_series_rejected(self):
        with pytest.raises(Exception):
            optimize_pl([])


class TestCalibration:
    def test_calibration_from_executed_shj(self, small_workload):
        machine = coupled_machine()
        run = SimpleHashJoin(HashJoinConfig()).run(small_workload.build, small_workload.probe)
        table = CalibrationTable.from_series([run.build.series, run.probe.series], machine)
        assert len(table) == 8
        names = [s.name for s in table.steps]
        assert names == ["b1", "b2", "b3", "b4", "p1", "p2", "p3", "p4"]

    def test_hash_steps_prefer_gpu(self, small_workload):
        machine = coupled_machine()
        run = SimpleHashJoin(HashJoinConfig()).run(small_workload.build, small_workload.probe)
        table = CalibrationTable.from_series([run.build.series, run.probe.series], machine)
        preference = table.device_preference()
        assert preference["b1"] == "gpu"
        assert preference["p1"] == "gpu"
        assert table.by_name("b1").gpu_speedup > 5.0

    def test_unit_cost_rows_have_both_devices(self, small_workload):
        machine = coupled_machine()
        run = SimpleHashJoin(HashJoinConfig()).run(small_workload.build, small_workload.probe)
        table = CalibrationTable.from_series([run.build.series], machine)
        for row in table.unit_cost_rows():
            assert row["cpu_ns_per_tuple"] > 0
            assert row["gpu_ns_per_tuple"] > 0

    def test_by_name_missing(self, small_workload):
        machine = coupled_machine()
        run = SimpleHashJoin(HashJoinConfig()).run(small_workload.build, small_workload.probe)
        table = CalibrationTable.from_series([run.build.series], machine)
        with pytest.raises(KeyError):
            table.by_name("z9")

    def test_step_costs_filter_by_phase(self, small_workload):
        machine = coupled_machine()
        run = SimpleHashJoin(HashJoinConfig()).run(small_workload.build, small_workload.probe)
        table = CalibrationTable.from_series([run.build.series, run.probe.series], machine)
        assert len(table.step_costs("build")) == 4
        assert len(table.step_costs()) == 8


class TestMonteCarlo:
    def test_sample_vectors_shape_and_range(self):
        vectors = sample_ratio_vectors(4, 50, seed=1)
        assert len(vectors) == 50
        assert all(len(v) == 4 for v in vectors)
        assert all(0.0 <= r <= 1.0 for v in vectors for r in v)

    def test_sampling_deterministic(self):
        assert sample_ratio_vectors(3, 5, seed=9) == sample_ratio_vectors(3, 5, seed=9)

    def test_study_summary(self):
        steps = make_steps()

        def measure(ratios):
            return estimate_series(steps, list(ratios)).total_s * 1.05

        chosen = optimize_pl(steps, delta=0.1).ratios
        study = run_monte_carlo(steps, measure, chosen, n_samples=60, seed=3)
        assert len(study.samples) == 60
        assert study.best_measured_s <= study.worst_measured_s
        assert study.chosen_measured_s <= study.worst_measured_s
        assert 0.0 <= study.chosen_percentile() <= 1.0
        assert study.error_quantile(0.9) == pytest.approx(0.05 / 1.05, rel=1e-6)
        cdf = study.cdf(n_points=10)
        assert cdf[0][1] <= cdf[-1][1]
        assert cdf[-1][1] == pytest.approx(1.0)
