"""Tests for the OpenCL-style abstraction: NDRange, wavefronts, atomics,
allocators, logical memory and the kernel launcher."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware import WorkStats
from repro.opencl import (
    AMD_WAVEFRONT_WIDTH,
    Arena,
    ArenaExhaustedError,
    AtomicCounter,
    BasicAllocator,
    BlockAllocator,
    GlobalBuffer,
    Kernel,
    Latch,
    LatchTable,
    LocalBuffer,
    LocalMemoryExceededError,
    NDRange,
    NDRangeError,
    WorkItemId,
    WorkItemReport,
    concurrent_hardware_threads,
    contention_ratio,
    divergence_factor,
    grouped_divergence,
    make_allocator,
    wavefront_divergence,
)


class TestNDRange:
    def test_work_group_count(self):
        ndrange = NDRange(global_size=1000, local_size=256)
        assert ndrange.n_work_groups == 4

    def test_work_groups_cover_range(self):
        ndrange = NDRange(global_size=10, local_size=4)
        ids = [i for group in ndrange.work_groups() for i in group]
        assert ids == list(range(10))

    def test_wavefronts_do_not_span_groups(self):
        ndrange = NDRange(global_size=100, local_size=48)
        sizes = [len(w) for w in ndrange.wavefronts(width=64)]
        assert sizes == [48, 48, 4]

    def test_for_device_defaults(self):
        assert NDRange.for_device(100, "cpu").local_size == 1
        assert NDRange.for_device(100, "gpu").local_size == 256
        with pytest.raises(NDRangeError):
            NDRange.for_device(10, "fpga")

    def test_work_item_id(self):
        ndrange = NDRange(global_size=100, local_size=32)
        item = WorkItemId.from_global(70, ndrange)
        assert item.group_id == 2
        assert item.local_id == 6

    def test_invalid_sizes(self):
        with pytest.raises(NDRangeError):
            NDRange(global_size=-1, local_size=4)
        with pytest.raises(NDRangeError):
            NDRange(global_size=4, local_size=0)


class TestWavefrontDivergence:
    def test_uniform_work_has_no_divergence(self):
        report = wavefront_divergence(np.ones(256))
        assert report.divergence == pytest.approx(0.0)

    def test_single_hot_item_creates_divergence(self):
        workloads = np.ones(64)
        workloads[0] = 64.0
        report = wavefront_divergence(workloads)
        assert report.divergence > 0.9

    def test_grouping_reduces_divergence(self):
        rng = np.random.default_rng(1)
        workloads = rng.choice([1.0, 50.0], size=4096, p=[0.9, 0.1])
        ungrouped = wavefront_divergence(workloads).divergence
        grouped, order = grouped_divergence(workloads, n_groups=32)
        assert grouped.divergence < ungrouped
        assert sorted(order.tolist()) == list(range(4096))

    def test_divergence_factor_wrapper(self):
        workloads = np.concatenate([np.ones(512), np.full(64, 30.0)])
        assert divergence_factor(workloads, grouped=True) <= divergence_factor(workloads)

    def test_empty_input(self):
        assert wavefront_divergence(np.array([])).divergence == 0.0

    def test_slowdown_at_least_one(self):
        report = wavefront_divergence(np.arange(1, 200, dtype=float))
        assert report.slowdown >= 1.0


class TestAtomics:
    def test_atomic_counter_returns_previous(self):
        counter = AtomicCounter(5)
        assert counter.add(3) == 5
        assert counter.load() == 8
        assert counter.stats.global_ops == 1

    def test_latch_context_manager(self):
        latch = Latch()
        with latch:
            assert latch.held
        assert not latch.held
        assert latch.acquisitions == 1

    def test_latch_misuse(self):
        latch = Latch()
        with pytest.raises(RuntimeError):
            latch.release()

    def test_latch_table_uniform_low_conflict(self):
        table = LatchTable(n_latches=1024)
        for i in range(1024):
            table.acquire_release(i)
        assert table.conflict_ratio(256) < 0.3

    def test_latch_table_hot_latch_high_conflict(self):
        table = LatchTable(n_latches=1024)
        for _ in range(1024):
            table.acquire_release(7)
        assert table.conflict_ratio(8192) > 0.9

    def test_contention_ratio_monotone_in_threads(self):
        low = contention_ratio(2, 1)
        high = contention_ratio(8192, 1)
        assert high > low
        assert 0.0 <= low <= 1.0 and 0.0 <= high <= 1.0

    def test_contention_ratio_monotone_in_targets(self):
        few = contention_ratio(1000, 1)
        many = contention_ratio(1000, 100_000)
        assert few > many

    def test_single_thread_no_contention(self):
        assert contention_ratio(1, 1) == 0.0

    def test_concurrent_hardware_threads(self):
        assert concurrent_hardware_threads("gpu") > concurrent_hardware_threads("cpu")
        with pytest.raises(ValueError):
            concurrent_hardware_threads("dsp")


class TestAllocators:
    def test_basic_allocator_one_global_atomic_per_request(self):
        allocator = BasicAllocator(Arena(1 << 20))
        for _ in range(10):
            allocator.allocate(16)
        assert allocator.stats.requests == 10
        assert allocator.stats.global_atomics == 10
        assert allocator.stats.local_atomics == 0

    def test_block_allocator_amortises_global_atomics(self):
        allocator = BlockAllocator(Arena(1 << 20), block_bytes=256)
        for i in range(64):
            allocator.allocate(16, group_id=0)
        # 64 requests of 16 bytes = 1024 bytes = 4 blocks of 256.
        assert allocator.stats.global_atomics == 4
        assert allocator.stats.local_atomics == 64

    def test_block_allocator_separate_groups_use_separate_blocks(self):
        allocator = BlockAllocator(Arena(1 << 20), block_bytes=256)
        allocator.allocate(16, group_id=0)
        allocator.allocate(16, group_id=1)
        assert allocator.stats.blocks_grabbed == 2

    def test_oversized_request_bypasses_block(self):
        allocator = BlockAllocator(Arena(1 << 20), block_bytes=64)
        offset = allocator.allocate(1024, group_id=0)
        assert offset == 0
        assert allocator.stats.global_atomics == 1

    def test_allocations_do_not_overlap(self):
        allocator = BlockAllocator(Arena(1 << 16), block_bytes=128)
        seen = set()
        for i in range(100):
            offset = allocator.allocate(8, group_id=i % 4)
            assert offset not in seen
            seen.add(offset)

    def test_arena_exhaustion(self):
        allocator = BasicAllocator(Arena(64))
        allocator.allocate(48)
        with pytest.raises(ArenaExhaustedError):
            allocator.allocate(32)

    def test_bulk_allocate_matches_per_request_accounting(self):
        per_request = BlockAllocator(Arena(1 << 20), block_bytes=2048)
        for _ in range(256):
            per_request.allocate(8, group_id=0)
        bulk = BlockAllocator(Arena(1 << 20), block_bytes=2048)
        bulk.bulk_allocate(256, 8, n_groups=1)
        assert bulk.stats.requests == per_request.stats.requests
        assert bulk.stats.local_atomics == per_request.stats.local_atomics
        assert abs(bulk.stats.global_atomics - per_request.stats.global_atomics) <= 1

    def test_conflict_ratio_falls_with_block_size(self):
        small = make_allocator("block", block_bytes=8)
        large = make_allocator("block", block_bytes=32768)
        assert large.conflict_ratio("gpu", 8) < small.conflict_ratio("gpu", 8)

    def test_basic_has_higher_conflict_than_block(self):
        basic = make_allocator("basic")
        block = make_allocator("block", block_bytes=2048)
        assert basic.conflict_ratio("gpu", 8) > block.conflict_ratio("gpu", 8)

    def test_make_allocator_unknown_kind(self):
        with pytest.raises(ValueError):
            make_allocator("slab")


class TestLogicalMemory:
    def test_global_buffer_read_write(self):
        buffer = GlobalBuffer(16)
        buffer.write(3, 42)
        assert buffer.read(3) == 42
        assert buffer.counters.total == 2

    def test_global_buffer_bulk_ops(self):
        buffer = GlobalBuffer(8)
        buffer.bulk_write(np.array([0, 1]), np.array([7, 9]))
        assert buffer.bulk_read(np.array([0, 1])).tolist() == [7, 9]

    def test_local_buffer_capacity_enforced(self):
        with pytest.raises(LocalMemoryExceededError):
            LocalBuffer(n_items=10_000, item_bytes=8, capacity_bytes=32 * 1024)
        ok = LocalBuffer(n_items=128)
        ok.write(0, 5)
        assert ok.read(0) == 5


class TestKernel:
    def test_launch_aggregates_stats(self):
        def body(item: WorkItemId, args: dict) -> WorkItemReport:
            return WorkItemReport(instructions=10.0, random_accesses=1.0)

        kernel = Kernel("uniform", body)
        launch = kernel.launch(NDRange(global_size=100, local_size=32))
        assert launch.stats.tuples == 100
        assert launch.stats.instructions == pytest.approx(1000.0)
        assert launch.stats.random_accesses == pytest.approx(100.0)
        assert launch.stats.divergence == pytest.approx(0.0)

    def test_launch_detects_divergence(self):
        def body(item: WorkItemId, args: dict) -> WorkItemReport:
            heavy = item.global_id % 64 == 0
            return WorkItemReport(instructions=100.0 if heavy else 1.0)

        kernel = Kernel("divergent", body)
        launch = kernel.launch(NDRange(global_size=640, local_size=256))
        assert launch.stats.divergence > 0.5

    def test_keep_reports(self):
        kernel = Kernel("noop", lambda item, args: WorkItemReport())
        launch = kernel.launch(NDRange(global_size=5, local_size=5), keep_reports=True)
        assert len(launch.reports) == 5
