"""Unit tests for the deterministic fault-injection plane (ISSUE 10).

The chaos suite (``test_chaos.py``) trusts this module for one thing:
*determinism*.  Same plan, same event order, same faults — so everything
about spec validation, trigger windows, selector matching, JSON transport
and the env-var activation path is pinned here, without any serving stack.
"""

from __future__ import annotations

import pytest

from repro import faults
from repro.faults import (
    FAULT_PLAN_ENV,
    FaultError,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)


@pytest.fixture(autouse=True)
def no_leaked_plan():
    faults.clear_plan()
    yield
    faults.clear_plan()


# ---------------------------------------------------------------------------
# Spec validation
# ---------------------------------------------------------------------------
class TestFaultSpecValidation:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec(site="router.teleport")

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultSpec(site="pool.route", action="explode")

    @pytest.mark.parametrize("after", [-1, 0.5, "3"])
    def test_bad_after_rejected(self, after):
        with pytest.raises(ValueError, match="after"):
            FaultSpec(site="pool.route", after=after)

    @pytest.mark.parametrize("count", [0, -2, 1.5])
    def test_bad_count_rejected(self, count):
        with pytest.raises(ValueError, match="count"):
            FaultSpec(site="pool.route", count=count)

    def test_negative_selector_rejected(self):
        with pytest.raises(ValueError, match="worker selector"):
            FaultSpec(site="pool.route", worker=-1)

    @pytest.mark.parametrize("latency_s", [-0.1, float("nan"), float("inf")])
    def test_bad_latency_rejected(self, latency_s):
        with pytest.raises(ValueError, match="latency_s"):
            FaultSpec(site="scheduler.dispatch", latency_s=latency_s)

    def test_latency_action_requires_positive_delay(self):
        with pytest.raises(ValueError, match="latency action requires"):
            FaultSpec(site="scheduler.dispatch", action="latency")

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown fault spec fields"):
            FaultSpec.from_dict({"site": "pool.route", "sight": "typo"})

    def test_from_dict_requires_site(self):
        with pytest.raises(ValueError, match="requires a site"):
            FaultSpec.from_dict({"action": "kill"})

    def test_selector_matching(self):
        spec = FaultSpec(site="pool.route", action="kill", worker=1)
        assert spec.matches({"worker": 1})
        assert not spec.matches({"worker": 0})
        # A selector the call site did not pass never matches: sites
        # always pass the selectors they support.
        assert not spec.matches({})
        assert FaultSpec(site="pool.route").matches({"worker": 7})


# ---------------------------------------------------------------------------
# Plan transport: JSON, files, the environment variable
# ---------------------------------------------------------------------------
class TestFaultPlanTransport:
    def plan(self) -> FaultPlan:
        return FaultPlan(
            faults=(
                FaultSpec(site="pool.route", action="kill", worker=1, after=3),
                FaultSpec(site="cachestore.write", count=2, message="blip"),
                FaultSpec(
                    site="scheduler.dispatch", action="latency", latency_s=0.25
                ),
            ),
            seed=77,
        )

    def test_json_round_trip(self):
        plan = self.plan()
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(self.plan().to_json(), encoding="utf-8")
        assert FaultPlan.from_file(path) == self.plan()

    @pytest.mark.parametrize(
        "text, match",
        [
            ("not json", "not valid JSON"),
            ("[]", "must be a JSON object"),
            ('{"faults": "kill"}', "must be a list"),
            ('{"faults": [], "seed": "x"}', "seed must be an int"),
        ],
    )
    def test_bad_json_rejected(self, text, match):
        with pytest.raises(ValueError, match=match):
            FaultPlan.from_json(text)

    def test_install_from_env_unset_is_noop(self):
        assert faults.install_from_env({}) is None
        assert faults.active_plan() is None

    def test_install_from_env_inline_json(self):
        plan = self.plan()
        injector = faults.install_from_env({FAULT_PLAN_ENV: plan.to_json()})
        assert injector is not None
        assert faults.active_plan() == plan

    def test_install_from_env_path(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(self.plan().to_json(), encoding="utf-8")
        faults.install_from_env({FAULT_PLAN_ENV: str(path)})
        assert faults.active_plan() == self.plan()

    def test_install_from_env_broken_plan_fails_loudly(self, tmp_path):
        with pytest.raises(ValueError):
            faults.install_from_env({FAULT_PLAN_ENV: '{"faults": "nope"}'})
        with pytest.raises(OSError):
            faults.install_from_env({FAULT_PLAN_ENV: str(tmp_path / "missing")})


# ---------------------------------------------------------------------------
# Trigger windows and the module-level hooks
# ---------------------------------------------------------------------------
class TestInjector:
    def test_after_count_window(self):
        spec = FaultSpec(site="cachestore.write", after=2, count=2)
        injector = FaultInjector(FaultPlan(faults=(spec,)))
        armed = [bool(injector.fire("cachestore.write")) for _ in range(6)]
        assert armed == [False, False, True, True, False, False]
        assert injector.stats()["fired"] == {"cachestore.write": 2}

    def test_selector_scopes_the_event_count(self):
        spec = FaultSpec(site="pool.route", action="kill", worker=1, after=1)
        injector = FaultInjector(FaultPlan(faults=(spec,)))
        # Events on worker 0 do not advance worker 1's window.
        assert injector.fire("pool.route", worker=0) == []
        assert injector.fire("pool.route", worker=1) == []
        assert injector.fire("pool.route", worker=0) == []
        assert injector.fire("pool.route", worker=1) == [spec]

    def test_reset_restarts_the_windows(self):
        spec = FaultSpec(site="cachestore.write")
        injector = FaultInjector(FaultPlan(faults=(spec,)))
        assert injector.fire("cachestore.write") == [spec]
        assert injector.fire("cachestore.write") == []
        injector.reset()
        assert injector.fire("cachestore.write") == [spec]

    def test_module_hooks_are_noops_without_a_plan(self):
        assert faults.fire("pool.route", worker=0) == []
        faults.check("cachestore.write")  # does not raise
        assert faults.latency("scheduler.dispatch") == 0.0

    def test_check_raises_fault_error_for_raise_specs_only(self):
        plan = FaultPlan(
            faults=(
                FaultSpec(site="cachestore.write", message="disk blip"),
                FaultSpec(site="pool.route", action="kill"),
            )
        )
        with faults.inject(plan):
            with pytest.raises(FaultError, match="disk blip"):
                faults.check("cachestore.write")
            faults.check("pool.route", worker=0)  # kill is the caller's job

    def test_fault_error_is_an_os_error(self):
        # Production recovery paths catch OSError; the injected fault must
        # take exactly those paths.
        assert issubclass(FaultError, OSError)

    def test_latency_sums_concurrent_specs(self):
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    site="scheduler.dispatch", action="latency", latency_s=0.2
                ),
                FaultSpec(
                    site="scheduler.dispatch", action="latency", latency_s=0.05
                ),
                FaultSpec(site="scheduler.dispatch", action="raise"),
            )
        )
        with faults.inject(plan):
            # The raise spec is armed too, but latency() only sums delays.
            assert faults.latency("scheduler.dispatch") == pytest.approx(0.25)

    def test_inject_uninstalls_on_exit(self):
        plan = FaultPlan(faults=(FaultSpec(site="cachestore.write"),))
        with faults.inject(plan) as injector:
            assert faults.active_injector() is injector
        assert faults.active_plan() is None

    def test_install_plan_replaces_previous(self):
        first = FaultPlan(faults=(FaultSpec(site="cachestore.write"),))
        second = FaultPlan(faults=(FaultSpec(site="pool.route"),))
        faults.install_plan(first)
        faults.install_plan(second)
        assert faults.active_plan() == second


# ---------------------------------------------------------------------------
# Seeded random plans: the chaos suite's foundation
# ---------------------------------------------------------------------------
class TestRandomPlans:
    def test_same_seed_same_plan(self):
        for seed in range(40):
            assert FaultPlan.random(seed) == FaultPlan.random(seed)

    def test_plans_vary_across_seeds(self):
        plans = {FaultPlan.random(seed).to_json() for seed in range(40)}
        assert len(plans) > 1

    def test_random_plans_are_valid_and_bounded(self):
        for seed in range(40):
            plan = FaultPlan.random(seed, workers=3, events=10, max_faults=5)
            assert 1 <= len(plan.faults) <= 5
            assert plan.seed == seed
            for spec in plan.faults:
                assert spec.site in faults.SITES
                assert spec.action in faults.ACTIONS
                if spec.worker is not None:
                    assert 0 <= spec.worker < 3
            # And the plan survives the wire.
            assert FaultPlan.from_json(plan.to_json()) == plan
