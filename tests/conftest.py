"""Shared fixtures for the test suite.

Relation sizes are kept small so the whole suite runs in well under a minute;
the behaviour under test (correct join results, step accounting, cost-model
properties) does not depend on scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import JoinWorkload
from repro.hardware import coupled_machine, discrete_machine


@pytest.fixture(scope="session")
def small_workload() -> JoinWorkload:
    """A 4k x 6k uniform workload used by most operator tests."""
    return JoinWorkload.uniform(4_000, 6_000, seed=7)


@pytest.fixture(scope="session")
def skewed_workload() -> JoinWorkload:
    """A high-skew workload (25% duplicated keys)."""
    return JoinWorkload.skewed("high-skew", 4_000, 6_000, seed=11)


@pytest.fixture(scope="session")
def selective_workload() -> JoinWorkload:
    """A workload where only half of the probe tuples find a match."""
    return JoinWorkload.with_selectivity(0.5, 4_000, 6_000, seed=13)


@pytest.fixture()
def coupled():
    """A fresh coupled-architecture machine."""
    return coupled_machine()


@pytest.fixture()
def discrete():
    """A fresh emulated discrete-architecture machine."""
    return discrete_machine()


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
