"""Chaos suite: end-to-end failure recovery under injected faults (ISSUE 10).

Every test here runs a *deterministic* drill from ``repro.faults``: seeded
random schedules against thread-mode pools, SIGKILLed forked workers behind
``repro serve`` subprocesses, cache-store flushes failing mid-write-behind
and process-pool workers dying mid-chunk.  The invariants are always the
same three:

* **exactly one reply per request** — retried requests are neither lost nor
  duplicated in the client's result set;
* **bit-identical plans** — a recovered answer equals the fault-free
  reference byte for byte (planning is deterministic, so failover must be
  invisible);
* **bounded recovery work** — respawns stay within the crash-loop breaker's
  budget no matter how fast crashes arrive.
"""

from __future__ import annotations

import asyncio
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

import pytest

import repro
from repro import faults
from repro.costmodel.cachestore import EstimateCacheStore
from repro.faults import FaultPlan, FaultSpec
from repro.hashjoin import PartitionedHashJoin
from repro.hashjoin.parallel import shared_pair_pool
from repro.service import (
    PlanService,
    PoolConfig,
    RetryPolicy,
    SharedEstimateCache,
    connect_plan_client,
    connect_retrying_client,
)

from test_pool import assert_plans_identical, mixed_requests, run_pool
from test_parallel_join import assert_series_lists_equal, relation_pair

#: The acceptance criterion asks for >= 20 seeded schedules.
CHAOS_SEEDS = tuple(range(1000, 1021))
N_REQUESTS = 24
N_CLIENTS = 6


@pytest.fixture(autouse=True)
def no_leaked_plan():
    faults.clear_plan()
    yield
    faults.clear_plan()


@pytest.fixture
def sock_path(tmp_path) -> str:
    # AF_UNIX paths are length-limited (~108 bytes); keep them short.
    return os.path.join(tmp_path, "chaos.sock")


def direct_reference(requests):
    direct = PlanService(cache=SharedEstimateCache()).plan_many(requests)
    return {response.request_id: response for response in direct}


# ---------------------------------------------------------------------------
# Seeded chaos schedules against thread-mode pools
# ---------------------------------------------------------------------------
class TestSeededChaosSchedules:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_one_reply_per_request_and_bit_identical(self, seed, sock_path):
        requests = mixed_requests(N_REQUESTS, 4, seed=seed)
        by_id = direct_reference(requests)
        plan = FaultPlan.random(seed, workers=2, events=6)
        config = PoolConfig(
            workers=2,
            unix_path=sock_path,
            window_s=0.005,
            respawn_backoff_s=0.01,
            respawn_backoff_cap_s=0.1,
        )
        per_client = N_REQUESTS // N_CLIENTS

        def drive(pool):
            async def go():
                clients = [
                    connect_retrying_client(
                        path=pool.unix_path,
                        client_id=f"chaos-{k}",
                        policy=RetryPolicy(
                            max_attempts=8,
                            base_s=0.005,
                            cap_s=0.05,
                            seed=seed * 100 + k,
                        ),
                    )
                    for k in range(N_CLIENTS)
                ]
                try:
                    batches = await asyncio.gather(
                        *(
                            client.plan_many(
                                requests[k * per_client : (k + 1) * per_client]
                            )
                            for k, client in enumerate(clients)
                        )
                    )
                finally:
                    for client in clients:
                        await client.close()
                results = [result for batch in batches for result in batch]
                retries = sum(client.stats()["retries"] for client in clients)
                return results, retries

            return asyncio.run(go())

        with faults.inject(plan):
            (results, _retries), stats = run_pool(config, drive)

        # Exactly one reply per request: nothing lost, nothing duplicated.
        assert sorted(r.response.request_id for r in results) == sorted(
            q.request_id for q in requests
        )
        # Recovered plans are bit-identical to the fault-free reference.
        assert_plans_identical(results, by_id)
        # Bounded respawn budget: each kill costs at most one respawn plus
        # one revive; nothing else in a schedule may fork-spin.
        kills = sum(1 for spec in plan.faults if spec.action == "kill")
        assert stats["workers_respawned"] <= 2 * kills + 2
        assert stats["connections_routed"] >= N_CLIENTS

    def test_same_seed_same_schedule(self):
        # The suite's determinism rests on plans being pure functions of
        # the seed.
        for seed in CHAOS_SEEDS:
            assert FaultPlan.random(seed, workers=2, events=6) == FaultPlan.random(
                seed, workers=2, events=6
            )


# ---------------------------------------------------------------------------
# Crash-loop breaker: a worker that always dies must not fork-spin
# ---------------------------------------------------------------------------
class TestCrashLoopBreaker:
    def test_respawns_are_bounded_and_backoff_engages(self, sock_path):
        attempts = 50
        plan = FaultPlan(
            faults=(FaultSpec(site="worker.start", action="raise", count=1000),)
        )
        config = PoolConfig(
            workers=2,
            unix_path=sock_path,
            window_s=0.005,
            respawn_backoff_s=0.05,
            respawn_backoff_cap_s=0.5,
        )

        def drive(pool):
            for _ in range(attempts):
                try:
                    conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                    conn.settimeout(1.0)
                    conn.connect(pool.unix_path)
                    conn.close()
                except OSError:
                    pass
                time.sleep(0.01)
            return None

        with faults.inject(plan):
            _, stats = run_pool(config, drive)

        # The regression this pins: before the breaker, every routing
        # attempt against a crash-at-start worker respawned it — ~one fork
        # per connection.  With doubling backoff the budget stays a small
        # fraction of the attempts.
        assert stats["workers_respawned"] <= 20, stats
        assert stats["respawns_suppressed"] >= 1, stats
        assert stats["max_consecutive_crashes"] >= 2, stats
        # With every slot degraded the pool sheds load instead of spinning.
        assert stats["connections_dropped"] >= 1, stats


# ---------------------------------------------------------------------------
# Real forked workers behind `repro serve` subprocesses
# ---------------------------------------------------------------------------
def spawn_serve(sock_path: str, plan: FaultPlan | None, *extra: str):
    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(faults.FAULT_PLAN_ENV, None)
    if plan is not None:
        env[faults.FAULT_PLAN_ENV] = plan.to_json()
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--unix", sock_path, "--workers", "2", "--window-ms", "2",
            *extra,
        ],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
    )


def await_socket(proc, sock_path: str, timeout_s: float = 30.0) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if os.path.exists(sock_path):
            return
        if proc.poll() is not None:
            raise AssertionError(
                f"serve subprocess died during startup: {proc.stderr.read()}"
            )
        time.sleep(0.05)
    proc.kill()
    raise AssertionError("serve subprocess never bound its socket")


def worker_pids(proc) -> list[int]:
    """The forked workers: direct children of the router process."""
    children = Path(f"/proc/{proc.pid}/task/{proc.pid}/children")
    try:
        return [int(pid) for pid in children.read_text().split()]
    except OSError:  # pragma: no cover - /proc layout varies off-Linux
        return []


@pytest.mark.skipif(
    not hasattr(os, "fork"), reason="fork-mode pool needs POSIX fork"
)
class TestForkedWorkerFailover:
    def test_sigkilled_worker_mid_request_is_retried_bit_identical(self, sock_path):
        requests = mixed_requests(6, 3, seed=31)
        by_id = direct_reference(requests)
        # The router SIGKILLs worker 0 the moment the first connection is
        # routed to it; the dispatch latency keeps those requests in flight
        # when the worker dies, so recovery must re-submit them.
        plan = FaultPlan(
            faults=(
                FaultSpec(site="pool.route", action="kill", worker=0, after=0),
                FaultSpec(
                    site="scheduler.dispatch",
                    action="latency",
                    latency_s=0.15,
                    count=50,
                ),
            )
        )
        proc = spawn_serve(sock_path, plan)
        try:
            await_socket(proc, sock_path)

            async def go():
                client = connect_retrying_client(
                    path=sock_path,
                    client_id="failover",
                    policy=RetryPolicy(
                        max_attempts=8, base_s=0.02, cap_s=0.2, seed=31
                    ),
                )
                try:
                    results = await client.plan_many(requests)
                finally:
                    await client.close()
                return results, client.stats()

            results, stats = asyncio.run(go())
            proc.send_signal(signal.SIGTERM)
            _, err = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, f"serve exited {proc.returncode}: {err}"
        # Every request answered exactly once, identical to the fault-free
        # reference, and the failover really happened.
        assert sorted(r.response.request_id for r in results) == sorted(
            q.request_id for q in requests
        )
        assert_plans_identical(results, by_id)
        assert stats["retries"] >= 1, stats

    def test_sigkill_during_sigterm_drain_does_not_hang_shutdown(self, sock_path):
        requests = mixed_requests(4, 2, seed=32)
        proc = spawn_serve(sock_path, None)
        try:
            await_socket(proc, sock_path)

            async def go():
                client = await connect_plan_client(sock_path, client_id="drain")
                try:
                    return await client.plan_many(requests)
                finally:
                    await client.close()

            results = asyncio.run(go())
            assert len(results) == 4
            pids = worker_pids(proc)
            assert pids, "no forked workers visible under /proc"
            # Start the SIGTERM drain, then SIGKILL a worker mid-drain: the
            # router must reap the corpse and still exit 0 in bounded time.
            proc.send_signal(signal.SIGTERM)
            os.kill(pids[0], signal.SIGKILL)
            _, err = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, f"serve exited {proc.returncode}: {err}"


# ---------------------------------------------------------------------------
# Cache store: write-behind flushes under injected I/O errors
# ---------------------------------------------------------------------------
class TestCacheStoreFlushFaults:
    def rows(self, n: int):
        return [(f"q{i}".encode(), f"x{i}".encode(), float(i)) for i in range(n)]

    def test_transient_flush_faults_heal_without_losing_rows(self, tmp_path):
        path = tmp_path / "cache.db"
        plan = FaultPlan(
            faults=(FaultSpec(site="cachestore.write", count=2, message="blip"),)
        )
        with faults.inject(plan):
            with EstimateCacheStore(
                path,
                flush_interval_s=30.0,
                write_retry_attempts=3,
                write_retry_backoff_s=0.001,
                write_retry_backoff_cap_s=0.01,
            ) as store:
                store.enqueue_totals(b"fp", self.rows(8))
                assert store.flush() == 8
                assert store.retried_writes == 2
                assert store.failed_writes == 0
                assert not store.dead
        # The verified rows landed byte-exact despite the blips.
        with EstimateCacheStore(path) as reopened:
            totals_rows, estimate_rows = reopened.count_rows()
        assert (totals_rows, estimate_rows) == (8, 0)

    def test_flusher_thread_survives_mid_write_behind_fault(self, tmp_path):
        path = tmp_path / "cache.db"
        plan = FaultPlan(faults=(FaultSpec(site="cachestore.write", count=1),))
        with faults.inject(plan):
            store = EstimateCacheStore(
                path,
                flush_interval_s=0.01,
                flush_batch=1,
                write_retry_attempts=3,
                write_retry_backoff_s=0.001,
                write_retry_backoff_cap_s=0.01,
            )
            try:
                store.enqueue_totals(b"fp", self.rows(4))
                deadline = time.monotonic() + 10.0
                while store.rows_flushed < 4 and time.monotonic() < deadline:
                    time.sleep(0.01)
                # The injected OSError hit the background flusher, which
                # retried instead of dying: the rows still landed.
                assert store.rows_flushed == 4
                assert store.retried_writes >= 1
                assert not store.dead
            finally:
                store.close()
        with EstimateCacheStore(path) as reopened:
            assert reopened.count_rows() == (4, 0)

    def test_exhausted_retry_budget_degrades_gracefully(self, tmp_path):
        path = tmp_path / "cache.db"
        plan = FaultPlan(faults=(FaultSpec(site="cachestore.write", count=50),))
        with faults.inject(plan):
            with EstimateCacheStore(
                path,
                flush_interval_s=30.0,
                write_retry_attempts=2,
                write_retry_backoff_s=0.001,
                write_retry_backoff_cap_s=0.01,
            ) as store:
                store.enqueue_totals(b"fp", self.rows(3))
                assert store.flush() == 0
                assert store.dead
                assert store.failed_writes == 1
                assert store.retried_writes == 2
                # Dead store: later traffic is dropped, nothing raises.
                store.enqueue_totals(b"fp", self.rows(2))
                assert store.flush() == 0
        with EstimateCacheStore(path) as reopened:
            assert reopened.count_rows() == (0, 0)


# ---------------------------------------------------------------------------
# Parallel join: a pool worker SIGKILLed mid-chunk
# ---------------------------------------------------------------------------
@pytest.mark.skipif(
    not hasattr(os, "fork"), reason="process-pool chaos needs POSIX fork"
)
class TestParallelJoinChaos:
    def test_sigkilled_pool_worker_recovers_bit_identical(self):
        build, probe = relation_pair(5, 4000, 8000, 1000)
        serial = PartitionedHashJoin(
            target_partition_tuples=500, parallel=False
        ).run(build, probe)
        pool = shared_pair_pool(2)
        breaks_before = pool.pool_breaks
        plan = FaultPlan(
            faults=(FaultSpec(site="parallel.chunk", action="kill", chunk=0),)
        )
        with faults.inject(plan):
            pooled = PartitionedHashJoin(
                target_partition_tuples=500, parallel=True, n_workers=2
            ).run(build, probe)
        # The lost chunks re-ran serially: bit-identical result and series.
        assert serial.result.equals(pooled.result)
        assert_series_lists_equal(serial.step_series, pooled.step_series)
        assert pool.pool_breaks == breaks_before + 1
        assert pool.chunks_recovered >= 1

        # The broken executor was invalidated, not cached: the next join
        # rebuilds a healthy pool and stays bit-identical.
        again = PartitionedHashJoin(
            target_partition_tuples=500, parallel=True, n_workers=2
        ).run(build, probe)
        assert serial.result.equals(again.result)
        assert_series_lists_equal(serial.step_series, again.step_series)
        assert pool.pool_breaks == breaks_before + 1  # no new breaks
