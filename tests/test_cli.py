"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parses_run(self):
        args = build_parser().parse_args(["run", "fig04", "--tuples", "1000"])
        assert args.experiment == "fig04"
        assert args.tuples == 1000

    def test_parses_join_defaults(self):
        args = build_parser().parse_args(["join"])
        assert args.algorithm == "PHJ"
        assert args.scheme == "PL"
        assert args.architecture == "coupled"


class TestCommands:
    def test_list_outputs_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig03", "fig13", "headline", "table3"):
            assert name in out

    def test_run_unknown_experiment_fails(self, capsys):
        assert main(["run", "fig99"]) == 2

    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "# Cores" in out

    def test_run_with_tuples_and_markdown(self, capsys):
        assert main(["run", "fig04", "--tuples", "8000", "--format", "markdown"]) == 0
        out = capsys.readouterr().out
        assert out.lstrip().startswith("### Figure 4")
        assert "| step |" in out

    def test_join_command(self, capsys):
        assert main(["join", "--algorithm", "SHJ", "--scheme", "DD",
                     "--tuples", "5000"]) == 0
        out = capsys.readouterr().out
        assert "SHJ-DD" in out
        assert "matches      : 5000" in out

    def test_join_discrete_architecture(self, capsys):
        assert main(["join", "--tuples", "4000", "--architecture", "discrete"]) == 0
        assert "(discrete)" in capsys.readouterr().out

    def test_report_subset_to_file(self, tmp_path, capsys):
        output = tmp_path / "report.md"
        assert main(["report", "--tuples", "6000", "--only", "table1", "fig04",
                     "--output", str(output)]) == 0
        text = output.read_text()
        assert "# Reproduction report" in text
        assert "Figure 4" in text
        assert "Table 1" in text
