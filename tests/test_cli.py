"""Tests for the command-line interface."""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.costmodel import StepCost, estimate_series, optimize_scheme


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parses_run(self):
        args = build_parser().parse_args(["run", "fig04", "--tuples", "1000"])
        assert args.experiment == "fig04"
        assert args.tuples == 1000

    def test_parses_join_defaults(self):
        args = build_parser().parse_args(["join"])
        assert args.algorithm == "PHJ"
        assert args.scheme == "PL"
        assert args.architecture == "coupled"


class TestCommands:
    def test_list_outputs_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig03", "fig13", "headline", "table3"):
            assert name in out

    def test_run_unknown_experiment_fails(self, capsys):
        assert main(["run", "fig99"]) == 2

    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "# Cores" in out

    def test_run_with_tuples_and_markdown(self, capsys):
        assert main(["run", "fig04", "--tuples", "8000", "--format", "markdown"]) == 0
        out = capsys.readouterr().out
        assert out.lstrip().startswith("### Figure 4")
        assert "| step |" in out

    def test_join_command(self, capsys):
        assert main(["join", "--algorithm", "SHJ", "--scheme", "DD",
                     "--tuples", "5000"]) == 0
        out = capsys.readouterr().out
        assert "SHJ-DD" in out
        assert "matches      : 5000" in out

    def test_join_discrete_architecture(self, capsys):
        assert main(["join", "--tuples", "4000", "--architecture", "discrete"]) == 0
        assert "(discrete)" in capsys.readouterr().out

    def test_report_subset_to_file(self, tmp_path, capsys):
        output = tmp_path / "report.md"
        assert main(["report", "--tuples", "6000", "--only", "table1", "fig04",
                     "--output", str(output)]) == 0
        text = output.read_text()
        assert "# Reproduction report" in text
        assert "Figure 4" in text
        assert "Table 1" in text


def _steps_payload():
    return [
        {"name": "build", "n_tuples": 80_000, "cpu_unit_s": 1.2e-8,
         "gpu_unit_s": 6e-9},
        {"name": "probe", "n_tuples": 120_000, "cpu_unit_s": 9e-9,
         "gpu_unit_s": 1.1e-8},
    ]


def _steps():
    return [
        StepCost(s["name"], s["n_tuples"], cpu_unit_s=s["cpu_unit_s"],
                 gpu_unit_s=s["gpu_unit_s"])
        for s in _steps_payload()
    ]


def _workload(tmp_path, payload) -> str:
    path = tmp_path / "workload.json"
    path.write_text(json.dumps(payload))
    return str(path)


class TestPlanCommand:
    def test_json_round_trip_matches_optimizers(self, tmp_path, capsys):
        """JSON workload in -> JSON plans out, equal to per-request answers."""
        workload = _workload(tmp_path, {
            "requests": [
                {"id": "q-pl", "scheme": "PL", "steps": _steps_payload()},
                {"id": "q-dd", "scheme": "DD", "steps": _steps_payload()},
                {"id": "q-wi", "scheme": "WHAT-IF", "ratios": [0.5, 0.25],
                 "steps": _steps_payload()},
            ]
        })
        assert main(["plan", workload, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        plans = {p["id"]: p for p in payload["plans"]}
        assert set(plans) == {"q-pl", "q-dd", "q-wi"}

        for scheme, plan_id in (("PL", "q-pl"), ("DD", "q-dd")):
            reference = optimize_scheme(scheme, _steps())
            assert plans[plan_id]["ratios"] == pytest.approx(reference.ratios)
            assert plans[plan_id]["total_s"] == pytest.approx(reference.total_s)
        what_if = estimate_series(_steps(), [0.5, 0.25])
        assert plans["q-wi"]["total_s"] == pytest.approx(what_if.total_s)
        assert payload["stats"]["requests_served"] == 3

    def test_output_file_and_delta_default(self, tmp_path, capsys):
        workload = _workload(tmp_path, {
            "delta": 0.25,
            "requests": [{"id": "a", "scheme": "DD", "steps": _steps_payload()}],
        })
        output = tmp_path / "plans.json"
        assert main(["plan", workload, "--format", "json",
                     "--output", str(output)]) == 0
        assert "wrote" in capsys.readouterr().err
        plan = json.loads(output.read_text())["plans"][0]
        reference = optimize_scheme("DD", _steps(), 0.25)
        assert plan["ratios"] == pytest.approx(reference.ratios)

    def test_text_and_markdown_format_parity(self, tmp_path, capsys):
        """--format accepts the run/report choices and renders every plan."""
        workload = _workload(tmp_path, {
            "requests": [
                {"id": "q0", "scheme": "OL", "steps": _steps_payload()},
                {"id": "q1", "scheme": "GPU", "steps": _steps_payload()},
            ]
        })
        assert main(["plan", workload]) == 0
        text = capsys.readouterr().out
        assert "q0" in text and "q1" in text
        assert "scheme=OL" in text
        assert "cache:" in text

        assert main(["plan", workload, "--format", "markdown"]) == 0
        markdown = capsys.readouterr().out
        assert markdown.lstrip().startswith("### Batch plan")
        assert "| id | scheme |" in markdown
        assert "| q0 | OL |" in markdown

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["plan", str(tmp_path / "nope.json")]) == 2
        assert "cannot read workload" in capsys.readouterr().err

    def test_invalid_json_exits_2(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert main(["plan", str(path)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_malformed_workloads_exit_2(self, tmp_path, capsys):
        for payload in (
            {},  # missing 'requests'
            {"requests": []},  # empty workload
            {"requests": [{"scheme": "PL"}]},  # request without steps
            {"requests": [{"scheme": "TURBO", "steps": _steps_payload()}]},
            {"requests": [{"scheme": "WHAT-IF", "steps": _steps_payload()}]},
            {"requests": [{"scheme": "PL", "delta": 0,
                           "steps": _steps_payload()}]},
            {"requests": [{"scheme": "PL", "steps": [
                {"name": "bad", "n_tuples": 10, "cpu_unit_s": -1,
                 "gpu_unit_s": 1e-9}]}]},
        ):
            assert main(["plan", _workload(tmp_path, payload)]) == 2, payload
            assert "invalid workload" in capsys.readouterr().err

    def test_parses_plan_defaults(self):
        args = build_parser().parse_args(["plan", "w.json"])
        assert args.format == "text"
        assert args.output is None
        assert not args.shared_cache


class TestPlanCommandErrorPaths:
    """Every failure mode exits 2 with a diagnostic on stderr (and prints
    nothing on stdout) — the contract scripted callers rely on."""

    def test_malformed_json_diagnostic_names_the_problem(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text('{"requests": [{]}')
        assert main(["plan", str(path)]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "not valid JSON" in captured.err

    def test_workload_path_is_a_directory(self, tmp_path, capsys):
        assert main(["plan", str(tmp_path)]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "cannot read workload" in captured.err

    def test_unknown_scheme_diagnostic_names_the_scheme(self, tmp_path, capsys):
        workload = _workload(tmp_path, {
            "requests": [{"scheme": "TURBO", "steps": _steps_payload()}],
        })
        assert main(["plan", workload]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "invalid workload" in captured.err
        assert "TURBO" in captured.err

    def test_empty_request_list_variants(self, tmp_path, capsys):
        for payload in ([], {"requests": []}):
            assert main(["plan", _workload(tmp_path, payload)]) == 2, payload
            captured = capsys.readouterr()
            assert captured.out == ""
            assert "no requests" in captured.err

    def test_top_level_scalar_workload(self, tmp_path, capsys):
        assert main(["plan", _workload(tmp_path, 42)]) == 2
        assert "invalid workload" in capsys.readouterr().err

    def test_requests_not_a_list(self, tmp_path, capsys):
        assert main(["plan", _workload(tmp_path, {"requests": "q0"})]) == 2
        assert "invalid workload" in capsys.readouterr().err

    def test_bad_top_level_delta(self, tmp_path, capsys):
        workload = _workload(tmp_path, {
            "delta": "fast",
            "requests": [{"scheme": "DD", "steps": _steps_payload()}],
        })
        assert main(["plan", workload]) == 2
        assert "delta" in capsys.readouterr().err

    def test_non_numeric_ratios(self, tmp_path, capsys):
        workload = _workload(tmp_path, {
            "requests": [{"scheme": "WHAT-IF", "ratios": ["half", 0.5],
                          "steps": _steps_payload()}],
        })
        assert main(["plan", workload]) == 2
        assert "invalid workload" in capsys.readouterr().err

    def test_diagnostic_carries_request_position(self, tmp_path, capsys):
        workload = _workload(tmp_path, {
            "requests": [
                {"scheme": "DD", "steps": _steps_payload()},
                {"scheme": "PL"},  # second entry is the broken one
            ],
        })
        assert main(["plan", workload]) == 2
        assert "request #1" in capsys.readouterr().err

    def test_unwritable_output_exits_2(self, tmp_path, capsys):
        workload = _workload(tmp_path, {
            "requests": [{"scheme": "DD", "steps": _steps_payload()}],
        })
        output = tmp_path / "missing-dir" / "plans.json"
        assert main(["plan", workload, "--output", str(output)]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "cannot write plans" in captured.err


class TestPlanStdin:
    """`repro plan -` reads the workload from stdin (scripted pipelines)."""

    def _feed(self, monkeypatch, text: str) -> None:
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(text))

    def test_stdin_workload_matches_file_workload(self, tmp_path, monkeypatch, capsys):
        payload = {"requests": [
            {"id": "q0", "scheme": "DD", "steps": _steps_payload()},
        ]}
        assert main(["plan", _workload(tmp_path, payload), "--format", "json"]) == 0
        from_file = json.loads(capsys.readouterr().out)

        self._feed(monkeypatch, json.dumps(payload))
        assert main(["plan", "-", "--format", "json"]) == 0
        from_stdin = json.loads(capsys.readouterr().out)
        assert from_stdin["plans"] == from_file["plans"]

    def test_stdin_invalid_json_exits_2(self, monkeypatch, capsys):
        self._feed(monkeypatch, "{broken")
        assert main(["plan", "-"]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "not valid JSON" in captured.err

    def test_stdin_malformed_workload_exits_2(self, monkeypatch, capsys):
        self._feed(monkeypatch, json.dumps({"requests": []}))
        assert main(["plan", "-"]) == 2
        assert "no requests" in capsys.readouterr().err


class TestDuplicateRequestIds:
    """load_workload rejects duplicate ids instead of letting two payloads
    silently collapse under one answer key."""

    def test_duplicate_ids_distinct_payloads_rejected(self, tmp_path, capsys):
        workload = _workload(tmp_path, {
            "requests": [
                {"id": "q", "scheme": "PL", "steps": _steps_payload()},
                {"id": "q", "scheme": "DD", "steps": _steps_payload()},
            ],
        })
        assert main(["plan", workload]) == 2
        err = capsys.readouterr().err
        assert "duplicate request id 'q'" in err
        assert "request #1" in err
        assert "request #0" in err
        assert "a different question" in err

    def test_duplicate_ids_identical_payloads_rejected_too(self, tmp_path, capsys):
        entry = {"id": "q", "scheme": "PL", "steps": _steps_payload()}
        workload = _workload(tmp_path, {"requests": [entry, dict(entry)]})
        assert main(["plan", workload]) == 2
        assert "the same question" in capsys.readouterr().err

    def test_unique_ids_still_load(self, tmp_path, capsys):
        workload = _workload(tmp_path, {
            "requests": [
                {"id": "a", "scheme": "PL", "steps": _steps_payload()},
                {"id": "b", "scheme": "PL", "steps": _steps_payload()},
            ],
        })
        assert main(["plan", workload, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        # Identical questions under distinct ids still share one solve.
        assert {p["id"] for p in payload["plans"]} == {"a", "b"}
        assert payload["stats"]["requests_deduplicated"] == 1

    def test_load_workload_names_duplicate_directly(self):
        from repro.service import WorkloadError, load_workload

        steps = [{"name": "s", "n_tuples": 10, "cpu_unit_s": 1e-9,
                  "gpu_unit_s": 1e-9}]
        with pytest.raises(WorkloadError, match="duplicate request id"):
            load_workload([
                {"id": "x", "scheme": "PL", "steps": steps},
                {"id": "x", "scheme": "OL", "steps": steps},
            ])


class TestServeCommand:
    def test_parses_serve_defaults(self):
        args = build_parser().parse_args(["serve", "--unix", "/tmp/p.sock"])
        assert args.unix == "/tmp/p.sock"
        assert args.port == 0
        assert args.window_ms == 2.0
        assert args.max_batch == 64
        assert args.rate is None
        assert args.weight is None

    def test_parses_serve_full_flags(self):
        args = build_parser().parse_args([
            "serve", "--port", "9999", "--host", "0.0.0.0",
            "--window-ms", "5", "--max-batch", "32",
            "--weight", "alpha=4", "--weight", "beta=1.5",
            "--rate", "100", "--burst", "200", "--default-timeout", "2.5",
        ])
        assert args.port == 9999
        assert args.weight == ["alpha=4", "beta=1.5"]
        assert args.default_timeout == 2.5

    def test_serve_without_endpoint_exits_2(self, capsys):
        assert main(["serve"]) == 2
        assert "--unix" in capsys.readouterr().err

    def test_serve_bad_weight_exits_2(self, capsys):
        for weight in ("alpha", "alpha=", "=4", "alpha=zero", "alpha=-1"):
            assert main(["serve", "--unix", "/tmp/p.sock",
                         "--weight", weight]) == 2, weight
            assert "invalid --weight" in capsys.readouterr().err

    def test_serve_bad_rate_exits_2(self, capsys):
        assert main(["serve", "--unix", "/tmp/p.sock", "--rate", "0"]) == 2
        assert "--rate" in capsys.readouterr().err

    def test_serve_bad_burst_exits_2(self, capsys):
        assert main(["serve", "--unix", "/tmp/p.sock", "--rate", "10",
                     "--burst", "-5"]) == 2
        assert "--burst" in capsys.readouterr().err

    def test_serve_burst_without_rate_exits_2(self, capsys):
        assert main(["serve", "--unix", "/tmp/p.sock", "--burst", "10"]) == 2
        assert "requires --rate" in capsys.readouterr().err

    def test_serve_nan_flags_exit_2(self, capsys):
        assert main(["serve", "--unix", "/tmp/p.sock",
                     "--weight", "a=nan"]) == 2
        assert "invalid --weight" in capsys.readouterr().err
        assert main(["serve", "--unix", "/tmp/p.sock", "--rate", "nan"]) == 2
        assert "invalid serve configuration" in capsys.readouterr().err

    def test_serve_bad_scheduler_knobs_exit_2(self, capsys):
        """Misconfiguration is a startup diagnostic, not a traceback (and
        never a per-request internal-error on a server that booted)."""
        assert main(["serve", "--unix", "/tmp/p.sock",
                     "--window-ms", "-1"]) == 2
        assert "invalid serve configuration" in capsys.readouterr().err
        assert main(["serve", "--unix", "/tmp/p.sock",
                     "--max-batch", "0"]) == 2
        assert "invalid serve configuration" in capsys.readouterr().err


class TestServePoolFlags:
    def test_parses_workers_and_cache_store(self):
        args = build_parser().parse_args(
            ["serve", "--unix", "/tmp/p.sock", "--workers", "4",
             "--cache-store", "/tmp/c.db"]
        )
        assert args.workers == 4
        assert args.cache_store == "/tmp/c.db"

    def test_workers_default_to_single_process(self):
        args = build_parser().parse_args(["serve", "--unix", "/tmp/p.sock"])
        assert args.workers == 1
        assert args.cache_store is None

    def test_zero_workers_exit_2(self, capsys):
        assert main(["serve", "--unix", "/tmp/p.sock", "--workers", "0"]) == 2
        assert "--workers must be at least 1" in capsys.readouterr().err

    def test_shared_cache_conflicts_with_cache_store(self, tmp_path, capsys):
        assert main(
            ["serve", "--unix", "/tmp/p.sock", "--shared-cache",
             "--cache-store", str(tmp_path / "c.db")]
        ) == 2
        assert "mutually exclusive" in capsys.readouterr().err


class TestServeSigterm:
    """ISSUE 7 satellite: a supervisor's SIGTERM must drain the server —
    clean exit 0, 'plan server stopped' on stderr, socket file unlinked —
    not an abrupt death mid-batch."""

    @staticmethod
    def _spawn(sock_path, *extra):
        import repro

        src_dir = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--unix", sock_path,
             *extra],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
        )

    @staticmethod
    def _await_socket(proc, sock_path, timeout_s=20.0):
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if os.path.exists(sock_path):
                return
            if proc.poll() is not None:
                raise AssertionError(
                    f"server died during startup: {proc.stderr.read()}"
                )
            time.sleep(0.05)
        proc.kill()
        raise AssertionError("server never bound its unix socket")

    def test_sigterm_drains_single_process_server(self, tmp_path):
        sock_path = os.path.join(tmp_path, "serve.sock")
        proc = self._spawn(sock_path)
        try:
            self._await_socket(proc, sock_path)
            proc.send_signal(signal.SIGTERM)
            _, err = proc.communicate(timeout=20)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == 0
        assert "plan server stopped" in err
        assert not os.path.exists(sock_path)  # unlinked on close

    def test_sigterm_drains_worker_pool_after_serving(self, tmp_path):
        sock_path = os.path.join(tmp_path, "pool.sock")
        proc = self._spawn(sock_path, "--workers", "2")
        try:
            self._await_socket(proc, sock_path)

            # Prove the pool actually serves before it is told to die.
            async def drive():
                from repro.service import PlanRequest, connect_plan_client
                from repro.costmodel import StepCost

                client = await connect_plan_client(path=sock_path)
                try:
                    steps = (StepCost("s0", 50_000, cpu_unit_s=2e-8,
                                      gpu_unit_s=1e-8),
                             StepCost("s1", 80_000, cpu_unit_s=1e-8,
                                      gpu_unit_s=3e-8))
                    result = await client.submit(
                        PlanRequest(steps=steps, scheme="PL", request_id="q0")
                    )
                    return result.response.request_id
                finally:
                    await client.close()

            assert asyncio.run(drive()) == "q0"
            proc.send_signal(signal.SIGTERM)
            _, err = proc.communicate(timeout=20)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == 0
        assert "(2 workers)" in err
        assert "plan server stopped" in err
        assert not os.path.exists(sock_path)
