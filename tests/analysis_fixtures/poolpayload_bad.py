"""Seeded pool-payload violations (see tests/test_analysis.py).

Expected findings:

  * ``run_direct`` submits a lambda,
  * ``run_nested`` maps a nested function,
  * ``Dispatcher.run`` maps a bound method through the pool-owning class,
  * ``run_payload`` ships a lambda inside the payload arguments,
  * ``run_wrapped`` passes a lambda into ``Dispatcher.launch`` — caught by
    chasing the ``fn`` parameter one level up the call graph.
"""

from concurrent.futures import ProcessPoolExecutor


def run_direct(items):
    pool = ProcessPoolExecutor(max_workers=2)
    return list(pool.map(lambda x: x + 1, items))  # SEED: lambda callable


def run_nested(items):
    def helper(x):  # SEED target: nested def
        return x * 2

    pool = ProcessPoolExecutor(max_workers=2)
    return list(pool.map(helper, items))


def scale(x):
    return x * 3


class Dispatcher:
    def __init__(self):
        self._executor = ProcessPoolExecutor(max_workers=2)

    def _grow(self, x):
        return x + 1

    def run(self, items):
        return list(self._executor.map(self._grow, items))  # SEED: bound method

    def launch(self, fn, items):
        return list(self._executor.map(fn, items))


def run_payload(items):
    pool = ProcessPoolExecutor(max_workers=2)
    return pool.submit(scale, lambda: items)  # SEED: lambda in payload


def run_wrapped(dispatcher: Dispatcher, items):
    return dispatcher.launch(lambda x: x - 1, items)  # SEED: via parameter
