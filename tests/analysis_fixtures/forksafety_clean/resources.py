"""Clean twin of forksafety_src: every resource has a re-init path.

The module registers an ``os.register_at_fork`` handler that re-arms the
module-level state, which also vouches for the classes defined here (the
handler is this module's re-init story).
"""

import sqlite3
import threading
from concurrent.futures import ProcessPoolExecutor

GUARD = threading.Lock()
DB = sqlite3.connect(":memory:")

POOLS = {}


def get_pool(n):
    pool = ProcessPoolExecutor(max_workers=n)
    POOLS[n] = pool
    return pool


class StoreLike:
    def __init__(self, path):
        self._conn = sqlite3.connect(path)
        self._worker = threading.Thread(target=self.run)

    def run(self):
        pass


def _reset_after_fork():
    # Fresh lock (never acquire an inherited one here), fresh connection,
    # dropped executors: first use in the child rebuilds everything.
    global GUARD, DB
    GUARD = threading.Lock()
    DB = sqlite3.connect(":memory:")
    POOLS.clear()


import os  # placed late to mirror real modules registering at import tail

os.register_at_fork(after_in_child=_reset_after_fork)
