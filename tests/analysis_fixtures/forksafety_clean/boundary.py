"""Fork boundary of the clean twin: child-branch touches are not findings.

The socket listener is closed inside the recognised ``pid == 0`` child
branch — exactly the right post-fork move — so it must not be flagged even
though no at-fork handler mentions it.
"""

import os
import socket

LISTENER = socket.socket()

from . import resources


def serve():
    pid = os.fork()
    if pid == 0:
        LISTENER.close()
        resources.get_pool(2)
    return pid
