"""The fork boundary of the seeded fork-safety fixture project.

Forks via ``os.fork`` and touches nothing in the child branch, so every
resource in the imported ``resources`` module counts as crossing the
boundary un-reinitialised.
"""

import os

from . import resources


def serve():
    pid = os.fork()
    if pid == 0:
        resources.get_pool(2)
    return pid
