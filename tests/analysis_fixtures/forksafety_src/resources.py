"""Seeded fork-safety violations: process-global resources, no re-init path.

Imported by ``boundary.py`` (the fork module), so everything here is
reachable across the fork boundary.  Expected findings:

  * module-level lock ``GUARD`` (no ``os.register_at_fork``),
  * module-level connection ``DB``,
  * class ``StoreLike`` storing a SQLite connection and a thread on self,
  * module-level registry ``POOLS`` filled with executors by ``get_pool``.
"""

import sqlite3
import threading
from concurrent.futures import ProcessPoolExecutor

GUARD = threading.Lock()  # SEED: inherited, possibly held, never re-armed
DB = sqlite3.connect(":memory:")  # SEED: cross-fork connection reuse

POOLS = {}


def get_pool(n):
    pool = ProcessPoolExecutor(max_workers=n)
    POOLS[n] = pool  # SEED: executor parked in module state pre-fork
    return pool


class StoreLike:
    def __init__(self, path):
        self._conn = sqlite3.connect(path)  # SEED: connection on self
        self._worker = threading.Thread(target=self.run)  # SEED: dead thread

    def run(self):
        pass
