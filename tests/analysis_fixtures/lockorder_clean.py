"""Clean twin of lockorder_bad.py: one global order, reentrancy declared.

Both multi-lock paths take ``fixture-c1`` before ``fixture-c2`` (no cycle),
and the re-entered lock is constructed ``reentrant=True`` so its self-edge
is legitimate.
"""

from repro.locking import make_lock

LOCK_1 = make_lock("fixture-c1")
LOCK_2 = make_lock("fixture-c2")
LOCK_RE = make_lock("fixture-re", reentrant=True)


def transfer():
    with LOCK_1:
        with LOCK_2:
            pass


def grab_two():
    with LOCK_2:
        pass


def audit():
    with LOCK_1:
        grab_two()  # same order as transfer: 1 -> 2


def recount():
    with LOCK_RE:
        with LOCK_RE:  # fine: declared reentrant
            pass
