"""Clean twin of hygiene_bad.py: same work, kernel-idiomatic spelling."""

# repro: kernel
import numpy as np


def sum_rows(n):
    matrix = np.ones((n, 4))
    return float(matrix[:, 0].sum())


def sum_rows_scalar(n):
    matrix = np.ones((n, 4))
    total = 0.0
    # .tolist() untaints: deliberate scalar iteration is the sanctioned idiom.
    for row in matrix.tolist():
        total += row[0]
    return total


def concat_parts(parts, workspace):
    for _ in range(3):
        np.concatenate(parts, out=workspace)  # out= satisfies the checker
    return workspace


def stays_narrow(n):
    column = np.zeros(n, dtype=np.float32)
    return column * np.float32(2.5)


def hoisted_alloc(parts):
    out = np.concatenate(parts)  # not in a loop: fine
    for _ in range(3):
        out += 1
    return out
