"""Seeded NumPy hygiene violations in a kernel-marked module.

Expected findings:
  * ``sum_rows`` loops Python-side over an array.
  * ``concat_parts`` allocates with ``np.concatenate`` inside a loop.
  * ``widen`` multiplies a float32 array by a float literal.
"""

# repro: kernel
import numpy as np


def sum_rows(n):
    matrix = np.ones((n, 4))
    total = 0.0
    for row in matrix:  # SEED: loop-over-array
        total += row[0]
    return total


def concat_parts(parts):
    out = None
    for _ in range(3):
        out = np.concatenate(parts)  # SEED: alloc-in-loop
    return out


def widen(n):
    column = np.zeros(n, dtype=np.float32)
    return column * 2.5  # SEED: dtype-widening float literal


def reference_sum(n):  # repro: reference
    # Marked reference implementation: scalar loops here are the point.
    matrix = np.ones((n, 4))
    total = 0.0
    for row in matrix:
        total += row[0]
    return total
