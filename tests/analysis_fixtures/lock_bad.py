"""Seeded lock-discipline violations (see tests/test_analysis.py).

Expected findings:
  * ``Counter.read_unlocked`` reads ``self.count`` outside the lock.
  * ``Counter.__repr__`` reads ``self.count`` outside the lock.
  * ``SafeBase.peek`` (inherited, not overridden by ``SharedChild``) reads
    ``self.value`` outside the lock.
  * Both ``__init__`` methods construct raw ``threading.Lock()`` instead of
    ``make_lock(name)`` (ISSUE 9 rule: unnamed locks are invisible to the
    lock-order pass and the runtime sanitizer).
"""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()  # SEED: raw construction
        self.count = 0

    def bump(self):
        with self._lock:
            self.count += 1

    def read_unlocked(self):
        return self.count  # SEED: guarded attr outside the lock

    def read_locked(self):
        with self._lock:
            return self.count

    def _helper(self):
        # Private: caller-holds-lock convention, must NOT be flagged.
        return self.count

    def __repr__(self):
        return f"Counter({self.count})"  # SEED: dunder outside the lock


class SafeBase:
    def peek(self):
        return self.value  # SEED via inheritance by SharedChild


class SharedChild(SafeBase):
    def __init__(self):
        self._lock = threading.Lock()  # SEED: raw construction
        self.value = 0

    def set(self, v):
        with self._lock:
            self.value = v
