"""Clean twin of lock_bad.py: every guarded access is under the lock."""

from repro.locking import make_lock


class Counter:
    def __init__(self):
        self._lock = make_lock("fixture-counter")
        self.count = 0

    def bump(self):
        with self._lock:
            self.count += 1

    def read_locked(self):
        with self._lock:
            return self.count

    def _helper(self):
        # Private helper: caller holds the lock.
        return self.count

    def __repr__(self):
        with self._lock:
            return f"Counter({self.count})"


class SafeBase:
    def peek(self):
        with self._lock:
            return self.value


class SharedChild(SafeBase):
    def __init__(self):
        # make_lock must count as lock ownership for the checker.
        self._lock = make_lock("fixture-shared-child")
        self.value = 0

    def set(self, v):
        with self._lock:
            self.value = v


class Unlocked:
    """No lock at all: the checker must skip this class entirely."""

    def __init__(self):
        self.count = 0

    def bump(self):
        self.count += 1
