"""Seeded violations: a protocol whose error tables drifted apart."""

ERROR_BAD = "bad-request"
ERROR_LOST = "peer-lost"  # advertised below but never classified

ERROR_CODES = (
    ERROR_BAD,
    ERROR_LOST,
)

#: ``peer-lost`` is missing, and ``bad-request``'s value is computed.
ERROR_TAXONOMY: dict[str, bool] = {
    ERROR_BAD: bool(0),
}


class ErrorReply:
    def __init__(self, code: str, message: str) -> None:
        self.code = code
        self.message = message
